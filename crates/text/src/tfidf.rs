//! Incremental TF-IDF weighting.
//!
//! Description terms are weighted by how characteristic they are:
//! frequent within the snippet (TF) but rare across the corpus (IDF).
//! [`CorpusStats`] maintains document frequencies *incrementally* — the
//! dynamic pipeline (paper §2.4) adds and removes documents at any time,
//! so the statistics must support both directions.

use std::collections::HashMap;

use storypivot_types::sparse::SparseVec;
use storypivot_types::TermId;

/// Incremental document-frequency statistics.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    doc_count: u64,
    doc_freq: HashMap<TermId, u64>,
}

impl CorpusStats {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents folded in.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Document frequency of `term`.
    pub fn doc_freq(&self, term: TermId) -> u64 {
        self.doc_freq.get(&term).copied().unwrap_or(0)
    }

    /// Number of distinct terms seen.
    pub fn vocabulary_size(&self) -> usize {
        self.doc_freq.len()
    }

    /// Fold in one document given its *distinct* terms.
    pub fn add_document<I: IntoIterator<Item = TermId>>(&mut self, distinct_terms: I) {
        self.doc_count += 1;
        for t in distinct_terms {
            *self.doc_freq.entry(t).or_insert(0) += 1;
        }
    }

    /// Remove a previously added document given the same distinct terms.
    ///
    /// Callers must pass exactly the distinct-term set used at add time;
    /// counts saturate at zero to stay safe under misuse.
    pub fn remove_document<I: IntoIterator<Item = TermId>>(&mut self, distinct_terms: I) {
        self.doc_count = self.doc_count.saturating_sub(1);
        for t in distinct_terms {
            if let Some(df) = self.doc_freq.get_mut(&t) {
                *df = df.saturating_sub(1);
                if *df == 0 {
                    self.doc_freq.remove(&t);
                }
            }
        }
    }

    /// Smoothed inverse document frequency:
    /// `idf(t) = ln((N + 1) / (df(t) + 1)) + 1`.
    ///
    /// Always ≥ 1 for unseen terms and > 0 for ubiquitous ones, so no
    /// term's weight collapses to exactly zero.
    pub fn idf(&self, term: TermId) -> f64 {
        let n = self.doc_count as f64;
        let df = self.doc_freq(term) as f64;
        ((n + 1.0) / (df + 1.0)).ln() + 1.0
    }
}

/// TF-IDF weigher over a [`CorpusStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfIdf {
    /// Whether to L2-normalize the produced vectors (recommended: makes
    /// cosine similarity a plain dot product).
    pub l2_normalize: bool,
    /// Whether to dampen term frequency as `1 + ln(tf)`.
    pub sublinear_tf: bool,
}

impl Default for TfIdf {
    fn default() -> Self {
        TfIdf {
            l2_normalize: true,
            sublinear_tf: true,
        }
    }
}

impl TfIdf {
    /// Weigh a document's raw term counts into a sparse TF-IDF vector.
    pub fn weigh(&self, counts: &[(TermId, u32)], stats: &CorpusStats) -> SparseVec<TermId> {
        let mut pairs: Vec<(TermId, f32)> = counts
            .iter()
            .filter(|&&(_, c)| c > 0)
            .map(|&(t, c)| {
                let tf = if self.sublinear_tf {
                    1.0 + (c as f64).ln()
                } else {
                    c as f64
                };
                (t, (tf * stats.idf(t)) as f32)
            })
            .collect();
        if self.l2_normalize {
            let norm = pairs.iter().map(|&(_, w)| (w as f64).powi(2)).sum::<f64>().sqrt();
            if norm > 0.0 {
                for (_, w) in &mut pairs {
                    *w = (*w as f64 / norm) as f32;
                }
            }
        }
        SparseVec::from_pairs(pairs)
    }
}

/// Count raw term occurrences into `(term, count)` pairs.
pub fn count_terms<I: IntoIterator<Item = TermId>>(terms: I) -> Vec<(TermId, u32)> {
    let mut counts: HashMap<TermId, u32> = HashMap::new();
    for t in terms {
        *counts.entry(t).or_insert(0) += 1;
    }
    let mut v: Vec<(TermId, u32)> = counts.into_iter().collect();
    v.sort_unstable_by_key(|&(t, _)| t);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId::new(i)
    }

    #[test]
    fn add_remove_round_trip() {
        let mut s = CorpusStats::new();
        s.add_document([t(1), t(2)]);
        s.add_document([t(2), t(3)]);
        assert_eq!(s.doc_count(), 2);
        assert_eq!(s.doc_freq(t(2)), 2);
        assert_eq!(s.vocabulary_size(), 3);

        s.remove_document([t(2), t(3)]);
        assert_eq!(s.doc_count(), 1);
        assert_eq!(s.doc_freq(t(2)), 1);
        assert_eq!(s.doc_freq(t(3)), 0);
        assert_eq!(s.vocabulary_size(), 2);

        s.remove_document([t(1), t(2)]);
        assert_eq!(s.doc_count(), 0);
        assert_eq!(s.vocabulary_size(), 0);
    }

    #[test]
    fn removal_saturates_under_misuse() {
        let mut s = CorpusStats::new();
        s.remove_document([t(9)]);
        assert_eq!(s.doc_count(), 0);
        assert_eq!(s.doc_freq(t(9)), 0);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let mut s = CorpusStats::new();
        // "crash" in 1 of 10 docs; "plane" in 9 of 10.
        for i in 0..10u32 {
            let mut terms = vec![t(100 + i)];
            if i == 0 {
                terms.push(t(1)); // crash
            }
            if i < 9 {
                terms.push(t(2)); // plane
            }
            s.add_document(terms);
        }
        assert!(s.idf(t(1)) > s.idf(t(2)));
        assert!(s.idf(t(2)) > 0.0);
    }

    #[test]
    fn unseen_term_idf_is_maximal() {
        let mut s = CorpusStats::new();
        s.add_document([t(1)]);
        s.add_document([t(1)]);
        assert!(s.idf(t(999)) > s.idf(t(1)));
    }

    #[test]
    fn weigh_produces_normalized_vector() {
        let mut s = CorpusStats::new();
        s.add_document([t(1), t(2)]);
        s.add_document([t(1)]);
        let v = TfIdf::default().weigh(&[(t(1), 3), (t(2), 1)], &s);
        assert_eq!(v.len(), 2);
        assert!((v.norm() - 1.0).abs() < 1e-6, "norm = {}", v.norm());
        // t2 is rarer, but t1 has tf 3; with sublinear tf and these idfs
        // the rarer term still dominates.
        assert!(v.get(&t(2)).unwrap() > 0.0);
    }

    #[test]
    fn weigh_without_normalization() {
        let s = CorpusStats::new();
        let cfg = TfIdf {
            l2_normalize: false,
            sublinear_tf: false,
        };
        let v = cfg.weigh(&[(t(1), 2)], &s);
        // N=0, df=0 → idf = ln(1) + 1 = 1; tf = 2 → weight 2.
        assert!((v.get(&t(1)).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_counts_are_skipped() {
        let s = CorpusStats::new();
        let v = TfIdf::default().weigh(&[(t(1), 0)], &s);
        assert!(v.is_empty());
    }

    #[test]
    fn count_terms_aggregates() {
        let counts = count_terms([t(3), t(1), t(3), t(3)]);
        assert_eq!(counts, vec![(t(1), 1), (t(3), 3)]);
        assert!(count_terms(std::iter::empty()).is_empty());
    }
}
