//! The similarity model shared by identification, alignment, and
//! refinement.
//!
//! Paper §2.2: *"If a snippet is sufficiently similar to any other
//! candidate snippets they may be part of the same story."* Similarity
//! combines three signals — shared entities, shared description terms,
//! and event-type affinity — with configurable weights.

use storypivot_types::{kernel, EntityId, Error, EventType, Result, Snippet, SnippetContent, TermId};

/// Weights of the similarity components. They need not sum to one; the
/// score is normalized by the weight total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimWeights {
    /// Weight of entity overlap (weighted Jaccard).
    pub entity: f64,
    /// Weight of description-term similarity (cosine over TF-IDF).
    pub term: f64,
    /// Weight of event-type affinity.
    pub event: f64,
}

impl Default for SimWeights {
    fn default() -> Self {
        SimWeights {
            entity: 0.45,
            term: 0.45,
            event: 0.10,
        }
    }
}

impl SimWeights {
    /// Validate the weights: non-negative, not all zero.
    pub fn validate(&self) -> Result<()> {
        if self.entity < 0.0 || self.term < 0.0 || self.event < 0.0 {
            return Err(Error::InvalidConfig("similarity weights must be non-negative".into()));
        }
        if self.total() == 0.0 {
            return Err(Error::InvalidConfig("similarity weights must not all be zero".into()));
        }
        Ok(())
    }

    /// Sum of the weights.
    pub fn total(&self) -> f64 {
        self.entity + self.term + self.event
    }

    /// Similarity of two snippet contents in `[0,1]`.
    pub fn content_sim(&self, a: &SnippetContent, b: &SnippetContent) -> f64 {
        self.probe(a).score(b)
    }

    /// Similarity of two snippets (delegates to the contents).
    #[inline]
    pub fn snippet_sim(&self, a: &Snippet, b: &Snippet) -> f64 {
        self.content_sim(&a.content, &b.content)
    }

    /// Bind one probe content for repeated scoring against many
    /// counterparts. The probe-side slices, term norm, and weight total
    /// are derived once instead of per comparison.
    pub fn probe<'a>(&self, a: &'a SnippetContent) -> ProbeScorer<'a> {
        ProbeScorer {
            entity_w: self.entity,
            term_w: self.term,
            event_w: self.event,
            total: self.total(),
            entities: a.entities.as_slice(),
            terms: a.terms.as_slice(),
            term_norm: a.terms.norm(),
            event_type: a.event_type,
        }
    }
}

/// One probe snippet's content, pre-bound for scoring against many
/// candidates ([`SimWeights::probe`]).
///
/// `score` evaluates exactly the same expression as
/// [`SimWeights::content_sim`] — same kernels, same term order — so a
/// loop over candidates through a `ProbeScorer` is bit-identical to
/// calling `content_sim` per pair, just without re-deriving the
/// probe-side state every iteration.
#[derive(Debug, Clone, Copy)]
pub struct ProbeScorer<'a> {
    entity_w: f64,
    term_w: f64,
    event_w: f64,
    total: f64,
    entities: &'a [(EntityId, f32)],
    terms: &'a [(TermId, f32)],
    term_norm: f64,
    event_type: EventType,
}

impl ProbeScorer<'_> {
    /// Similarity of the bound probe against `b` in `[0,1]`.
    pub fn score(&self, b: &SnippetContent) -> f64 {
        let e = kernel::weighted_jaccard(self.entities, b.entities.as_slice());
        let t = kernel::cosine(self.terms, self.term_norm, b.terms.as_slice(), b.terms.norm());
        let ev = self.event_type.affinity(b.event_type);
        (self.entity_w * e + self.term_w * t + self.event_w * ev) / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, EventType, SnippetId, SourceId, TermId, Timestamp};

    fn snip(entities: &[u32], terms: &[u32], ty: EventType) -> Snippet {
        let mut b = Snippet::builder(SnippetId::new(0), SourceId::new(0), Timestamp::EPOCH)
            .event_type(ty);
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        b.build()
    }

    #[test]
    fn identical_snippets_score_one() {
        let a = snip(&[1, 2], &[10, 11], EventType::Accident);
        let b = snip(&[1, 2], &[10, 11], EventType::Accident);
        let s = SimWeights::default().snippet_sim(&a, &b);
        assert!((s - 1.0).abs() < 1e-9, "score {s}");
    }

    #[test]
    fn disjoint_snippets_score_zero() {
        let a = snip(&[1], &[10], EventType::Accident);
        let b = snip(&[2], &[11], EventType::Sports);
        assert_eq!(SimWeights::default().snippet_sim(&a, &b), 0.0);
    }

    #[test]
    fn partial_overlap_lands_between() {
        let a = snip(&[1, 2, 3], &[10, 11], EventType::Accident);
        let b = snip(&[1, 2, 9], &[10, 12], EventType::Accident);
        let s = SimWeights::default().snippet_sim(&a, &b);
        assert!(s > 0.3 && s < 1.0, "score {s}");
    }

    #[test]
    fn weights_steer_the_score() {
        let a = snip(&[1], &[10], EventType::Accident);
        let b = snip(&[1], &[11], EventType::Accident);
        // Entity-only weighting: full entity overlap ⇒ high score.
        let entity_only = SimWeights { entity: 1.0, term: 0.0, event: 0.0 };
        assert!((entity_only.snippet_sim(&a, &b) - 1.0).abs() < 1e-9);
        // Term-only weighting: no term overlap ⇒ zero.
        let term_only = SimWeights { entity: 0.0, term: 1.0, event: 0.0 };
        assert_eq!(term_only.snippet_sim(&a, &b), 0.0);
    }

    #[test]
    fn event_affinity_contributes() {
        let a = snip(&[], &[], EventType::Conflict);
        let b = snip(&[], &[], EventType::Protest);
        let w = SimWeights { entity: 0.0, term: 0.0, event: 1.0 };
        assert_eq!(w.snippet_sim(&a, &b), 0.5);
    }

    #[test]
    fn score_is_symmetric() {
        let a = snip(&[1, 2], &[10], EventType::Accident);
        let b = snip(&[2, 3], &[10, 11], EventType::Diplomacy);
        let w = SimWeights::default();
        assert_eq!(w.snippet_sim(&a, &b), w.snippet_sim(&b, &a));
    }

    #[test]
    fn probe_scorer_matches_content_sim_bitwise() {
        let a = snip(&[1, 2, 3], &[10, 11], EventType::Accident);
        let b = snip(&[2, 9], &[10, 12], EventType::Protest);
        let w = SimWeights::default();
        let p = w.probe(&a.content);
        assert_eq!(
            p.score(&b.content).to_bits(),
            w.content_sim(&a.content, &b.content).to_bits()
        );
    }

    #[test]
    fn validation_rejects_bad_weights() {
        assert!(SimWeights { entity: -0.1, term: 0.5, event: 0.1 }.validate().is_err());
        assert!(SimWeights { entity: 0.0, term: 0.0, event: 0.0 }.validate().is_err());
        assert!(SimWeights::default().validate().is_ok());
    }
}
