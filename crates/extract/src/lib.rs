//! Document-to-snippet extraction.
//!
//! Paper §2.1: *"our extraction pipeline works as follows: It first
//! collects textual excerpts from documents found on EventRegistry,
//! i.e., it extracts the documents and breaks their text down based on
//! paragraphs, title, etc. These excerpts are then forwarded to Open
//! Calais [...] This tool provides additional information if available,
//! for example on entities or keywords associated with the excerpt."*
//!
//! EventRegistry and OpenCalais are closed services; this crate is the
//! functional stand-in built on the `storypivot-text` substrate:
//!
//! * [`Document`] — a fetched article (source, url, title, body,
//!   publication time);
//! * [`Annotator`] — gazetteer NER for entities, stemmed + stopword-
//!   filtered TF-IDF keywords, and a rule-based event-type tagger;
//! * [`ExtractionPipeline`] — documents in, [`storypivot_types::Snippet`]s out, with
//!   incremental corpus statistics that also *unlearn* on document
//!   removal (the demo's add/remove interaction, §4.2.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod document;
pub mod pipeline;
pub mod tuples;

pub use annotate::{Annotation, Annotator};
pub use document::Document;
pub use pipeline::{ExtractionPipeline, PipelineConfig};
pub use tuples::{write_tsv, TupleCatalog, TupleReader};
