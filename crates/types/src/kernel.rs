//! Flat similarity kernels over contiguous `(key, weight)` slices.
//!
//! These are the hot-path primitives behind [`crate::SparseVec`]'s
//! similarity methods. They operate directly on the sorted entry slices
//! so callers that already hold raw slices (the identification scoring
//! loop, the alignment counterpart scan) can skip the wrapper entirely,
//! and so one probe can be scored against N candidates without
//! re-deriving anything probe-side per candidate ([`cosine_batch`]).
//!
//! The merge loops are branch-light: cursor advancement is computed
//! arithmetically from the key comparison instead of a three-way
//! `match`, which the optimizer turns into conditional moves. Each
//! kernel accumulates its `f64` sums in exactly the same term order as
//! the historical `SparseVec` implementations, so results are
//! bit-identical to the pre-kernel code — the cache-equivalence
//! guarantees in `storypivot-core` rely on that.

use std::fmt::Debug;

/// Euclidean (L2) norm of an entry slice.
///
/// This is the *defining* computation for [`crate::SparseVec`]'s cached
/// norm: every mutation recomputes the cache with this exact function,
/// so equal entry lists always carry bit-equal norms.
#[inline]
pub fn norm<K>(entries: &[(K, f32)]) -> f64 {
    if entries.is_empty() {
        // The empty sum is `-0.0` (f64's Sum identity) and `sqrt(-0.0)`
        // is `-0.0`; canonicalize to `+0.0` so empty vectors always
        // carry bit-equal norms no matter how they were produced.
        return 0.0;
    }
    entries
        .iter()
        .map(|&(_, w)| (w as f64) * (w as f64))
        .sum::<f64>()
        .sqrt()
}

/// Dot product of two sorted entry slices (linear merge).
#[inline]
pub fn dot<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        let (ka, wa) = a[i];
        let (kb, wb) = b[j];
        if ka == kb {
            acc += wa as f64 * wb as f64;
        }
        i += (ka <= kb) as usize;
        j += (kb <= ka) as usize;
    }
    acc
}

/// Cosine similarity in `[0,1]` given precomputed norms; 0 when either
/// norm is 0.
#[inline]
pub fn cosine<K: Copy + Ord>(a: &[(K, f32)], norm_a: f64, b: &[(K, f32)], norm_b: f64) -> f64 {
    let denom = norm_a * norm_b;
    if denom == 0.0 {
        0.0
    } else {
        (dot(a, b) / denom).clamp(0.0, 1.0)
    }
}

/// Set Jaccard over the key sets, ignoring weights. Both empty ⇒ 0.
#[inline]
pub fn jaccard<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> f64 {
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let ka = a[i].0;
        let kb = b[j].0;
        inter += (ka == kb) as usize;
        i += (ka <= kb) as usize;
        j += (kb <= ka) as usize;
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Weighted Jaccard: `Σ min(a,b) / Σ max(a,b)`. Both empty ⇒ 0.
#[inline]
pub fn weighted_jaccard<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut num, mut den) = (0f64, 0f64);
    while i < a.len() && j < b.len() {
        let (ka, wa) = a[i];
        let (kb, wb) = b[j];
        let le = ka <= kb;
        let ge = kb <= ka;
        if le && ge {
            num += wa.min(wb) as f64;
            den += wa.max(wb) as f64;
        } else if le {
            den += wa as f64;
        } else {
            den += wb as f64;
        }
        i += le as usize;
        j += ge as usize;
    }
    den += a[i..].iter().map(|&(_, w)| w as f64).sum::<f64>();
    den += b[j..].iter().map(|&(_, w)| w as f64).sum::<f64>();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Batch entry point: cosine of one probe against N candidate slices.
///
/// The probe-side norm and empty check are hoisted out of the loop;
/// scores are appended to `out` in candidate order (one per candidate,
/// including zeros). `out` is cleared first so callers can reuse one
/// scratch buffer across probes.
pub fn cosine_batch<'a, K, I>(probe: &[(K, f32)], probe_norm: f64, candidates: I, out: &mut Vec<f64>)
where
    K: Copy + Ord + Debug + 'a,
    I: IntoIterator<Item = (&'a [(K, f32)], f64)>,
{
    out.clear();
    if probe_norm == 0.0 {
        out.extend(candidates.into_iter().map(|_| 0.0));
        return;
    }
    for (cand, cand_norm) in candidates {
        out.push(cosine(probe, probe_norm, cand, cand_norm));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(pairs: &[(u32, f32)]) -> Vec<(u32, f32)> {
        pairs.to_vec()
    }

    #[test]
    fn dot_matches_dense() {
        let a = e(&[(1, 1.0), (2, 2.0), (5, 3.0)]);
        let b = e(&[(2, 4.0), (5, 1.0), (9, 7.0)]);
        assert!((dot(&a, &b) - 11.0).abs() < 1e-12);
        assert_eq!(dot(&a, &[]), 0.0);
    }

    #[test]
    fn norm_is_l2() {
        let a = e(&[(1, 3.0), (2, 4.0)]);
        assert!((norm(&a) - 5.0).abs() < 1e-12);
        assert_eq!(norm::<u32>(&[]).to_bits(), 0.0f64.to_bits(), "must be +0.0");
    }

    #[test]
    fn cosine_identity_orthogonal_empty() {
        let a = e(&[(1, 3.0), (2, 4.0)]);
        let na = norm(&a);
        assert!((cosine(&a, na, &a, na) - 1.0).abs() < 1e-12);
        let b = e(&[(7, 1.0)]);
        assert_eq!(cosine(&a, na, &b, norm(&b)), 0.0);
        assert_eq!(cosine(&a, na, &[], 0.0), 0.0);
    }

    #[test]
    fn jaccard_counts_keys() {
        let a = e(&[(1, 10.0), (2, 1.0)]);
        let b = e(&[(2, 99.0), (3, 1.0)]);
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jaccard::<u32>(&[], &[]), 0.0);
    }

    #[test]
    fn weighted_jaccard_known_value() {
        let a = e(&[(1, 2.0), (2, 1.0)]);
        let b = e(&[(1, 1.0), (3, 1.0)]);
        assert!((weighted_jaccard(&a, &b) - 0.25).abs() < 1e-12);
        assert_eq!(weighted_jaccard::<u32>(&[], &[]), 0.0);
    }

    #[test]
    fn batch_scores_every_candidate_in_order() {
        let probe = e(&[(1, 1.0), (2, 1.0)]);
        let pn = norm(&probe);
        let c1 = e(&[(1, 1.0), (2, 1.0)]);
        let c2 = e(&[(9, 1.0)]);
        let mut out = vec![99.0];
        cosine_batch(
            &probe,
            pn,
            [(c1.as_slice(), norm(&c1)), (c2.as_slice(), norm(&c2))],
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn batch_with_empty_probe_is_all_zero() {
        let c = e(&[(1, 1.0)]);
        let mut out = Vec::new();
        cosine_batch(&[], 0.0, [(c.as_slice(), norm(&c))], &mut out);
        assert_eq!(out, vec![0.0]);
    }
}
