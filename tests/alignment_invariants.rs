//! Alignment outcome invariants under randomized corpora, plus the
//! engine's own invariant checker exercised through realistic lifecycles.

use storypivot::core::config::PivotConfig;
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::prelude::*;
use storypivot::substrate::prop;
use storypivot::substrate::rng::{RngExt, StdRng};
use storypivot::types::DAY;

fn arb_small_config(rng: &mut StdRng) -> GenConfig {
    GenConfig {
        seed: rng.random(),
        sources: rng.random_range(2u32..5),
        stories: rng.random_range(3u32..10),
        entities: 60,
        terms: 200,
        events_per_story: 6.0,
        drift: rng.random_range(0.0f64..0.4),
        ..GenConfig::default()
    }
}

fn build_pivot(corpus: &storypivot::gen::Corpus) -> StoryPivot {
    let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &corpus.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &corpus.snippets {
        pivot.ingest(s.clone()).unwrap();
    }
    pivot
}

#[test]
fn alignment_outcome_invariants_hold() {
    prop::run(16, |rng| {
        let cfg = arb_small_config(rng);
        let corpus = CorpusBuilder::new(cfg).build();
        let mut pivot = build_pivot(&corpus);
        pivot.align();
        pivot.check_invariants().unwrap();

        let outcome = pivot.alignment().unwrap();
        // Accepted pairs connect stories from different sources.
        for &(a, b) in &outcome.accepted_pairs {
            let sa = storypivot::core::refine::story_source(a);
            let sb = storypivot::core::refine::story_source(b);
            assert_ne!(sa, sb, "same-source pair {} {}", a, b);
        }
        // snippet_to_global agrees with the member lists.
        for g in &outcome.global_stories {
            for &(m, _) in &g.members {
                assert_eq!(outcome.snippet_to_global.get(&m), Some(&g.id));
            }
            // Sources recorded match the members' sources.
            for &(m, _) in &g.members {
                let src = pivot.store().get(m).unwrap().source;
                assert!(g.sources.contains(&src));
            }
            // Lifespan covers every member.
            for &(m, _) in &g.members {
                let t = pivot.store().get(m).unwrap().timestamp;
                assert!(g.lifespan.contains(t));
            }
        }
        // story_to_global covers every live story exactly once.
        let live: usize = pivot.story_count();
        assert_eq!(outcome.story_to_global.len(), live);
    });
}

#[test]
fn invariants_survive_a_full_lifecycle() {
    prop::run(16, |rng| {
        let cfg = arb_small_config(rng);
        let corpus = CorpusBuilder::new(cfg).build();
        let mut pivot = build_pivot(&corpus);
        pivot.check_invariants().unwrap();
        pivot.align();
        pivot.check_invariants().unwrap();
        pivot.refine();
        pivot.check_invariants().unwrap();

        // Remove a handful of documents, realign.
        for d in 0..5u32.min(corpus.len() as u32) {
            let _ = pivot.remove_document(DocId::new(d));
        }
        pivot.align_incremental();
        pivot.check_invariants().unwrap();

        // Drop one source entirely.
        if corpus.sources.len() > 1 {
            pivot.remove_source(corpus.sources[0].id).unwrap();
            pivot.align_incremental();
            pivot.check_invariants().unwrap();
        }
    });
}
