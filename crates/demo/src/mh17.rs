//! The paper's running example as a curated corpus.
//!
//! Twelve articles from two newspaper-style sources covering July–
//! September 2014, mirroring the documents visible in the paper's
//! Figures 3–6: the downing of Malaysia Airlines Flight 17 and its
//! investigation (the main cross-source story), expanded sanctions, a
//! same-window Israel/UN investigation story (the paper's confusable
//! `v¹₄`), a medical-shortage story, and the unrelated Google/Yelp
//! complaint that appears in Figure 3's selection list.

use storypivot_core::config::{MatchMode, PivotConfig};
use storypivot_core::pivot::StoryPivot;
use storypivot_extract::{Annotator, Document, ExtractionPipeline, PipelineConfig};
use storypivot_text::GazetteerBuilder;
use storypivot_types::{
    DocId, Result, SnippetId, SourceId, SourceKind, Timestamp, DAY,
};

/// Entity ids of the curated gazetteer.
pub mod entities {
    use storypivot_types::EntityId;
    /// Ukraine.
    pub const UKRAINE: EntityId = EntityId(0);
    /// Russia.
    pub const RUSSIA: EntityId = EntityId(1);
    /// Malaysia Airlines (Flight 17).
    pub const MALAYSIA_AIRLINES: EntityId = EntityId(2);
    /// United Nations.
    pub const UNITED_NATIONS: EntityId = EntityId(3);
    /// Netherlands.
    pub const NETHERLANDS: EntityId = EntityId(4);
    /// European Union.
    pub const EUROPEAN_UNION: EntityId = EntityId(5);
    /// United States.
    pub const UNITED_STATES: EntityId = EntityId(6);
    /// Israel.
    pub const ISRAEL: EntityId = EntityId(7);
    /// Palestine.
    pub const PALESTINE: EntityId = EntityId(8);
    /// Google Inc.
    pub const GOOGLE: EntityId = EntityId(9);
    /// Yelp Inc.
    pub const YELP: EntityId = EntityId(10);
    /// Boeing.
    pub const BOEING: EntityId = EntityId(11);
}

/// Build the curated gazetteer (canonical names + aliases).
pub fn gazetteer() -> storypivot_text::Gazetteer {
    use entities::*;
    let mut b = GazetteerBuilder::new();
    b.add_entity(UKRAINE, "Ukraine", &["UKR", "Ukrainian government"]);
    b.add_entity(RUSSIA, "Russia", &["RUS", "Russian Federation", "pro-Russia"]);
    b.add_entity(
        MALAYSIA_AIRLINES,
        "Malaysia Airlines",
        &["MH17", "Flight 17", "Malaysia Airlines Flight 17", "Malaysian airplane"],
    );
    b.add_entity(UNITED_NATIONS, "United Nations", &["UN", "U.N."]);
    b.add_entity(NETHERLANDS, "Netherlands", &["NTH", "Dutch", "Amsterdam"]);
    b.add_entity(EUROPEAN_UNION, "European Union", &["EU", "E.U."]);
    b.add_entity(UNITED_STATES, "United States", &["US", "U.S.", "United States government"]);
    b.add_entity(ISRAEL, "Israel", &["ISL", "Israeli"]);
    b.add_entity(PALESTINE, "Palestine", &["PAL", "Gaza"]);
    b.add_entity(GOOGLE, "Google", &["Google Inc"]);
    b.add_entity(YELP, "Yelp", &["Yelp Inc"]);
    b.add_entity(BOEING, "Boeing", &["Boeing 777"]);
    b.build()
}

/// One curated article: `(source index, url, title, body, date)`.
type RawDoc = (usize, &'static str, &'static str, &'static str, (i32, u32, u32));

const RAW_DOCS: &[RawDoc] = &[
    // ---- the MH17 story, New York Times perspective -------------------
    (0, "http://nytimes.com/doc0.html",
     "Jetliner Explodes Over Ukraine",
     "A Malaysian airplane with 298 people aboard exploded, crashed and burned over eastern \
      Ukraine on Thursday. The plane was flying over territory controlled by pro-Russia \
      separatists when it was blown out of the sky, apparently shot down by a missile. \
      Investigators said the crash of the plane would be investigated with Ukraine.",
     (2014, 7, 17)),
    (0, "http://nytimes.com/doc1.html",
     "Ukraine Asks U.N. to Help Crash Investigation",
     "Ukraine asked the United Nations civil aviation authority to support the investigation \
      into the crash of the Malaysian airplane. Investigators said the plane was likely shot \
      down by a missile, and access to the crash site remained difficult. The plane crashed \
      over territory held by pro-Russia separatists.",
     (2014, 7, 18)),
    (0, "http://nytimes.com/doc2.html",
     "Evidence of Russian Links to Jet's Downing",
     "The investigation into the crash of Flight 17 turned up evidence linking the missile \
      that shot down the plane to Russia. Investigators for Ukraine said the plane crashed \
      after the missile exploded, and asked the United Nations to review the crash findings.",
     (2014, 7, 22)),
    (0, "http://nytimes.com/doc3.html",
     "Expanded Sanctions Against Russia Announced",
     "The European Union and the United States announced expanded sanctions against Russia \
      over the conflict in Ukraine. Officials said the sanctions target finance, energy and \
      exports, and that further sanctions against Russia remain possible.",
     (2014, 7, 29)),
    (0, "http://nytimes.com/doc4.html",
     "Preliminary Report on Flight 17 Released",
     "Dutch investigators released a preliminary report on the crash of Malaysia Airlines \
      Flight 17, concluding the plane broke up in the air after being shot, consistent with \
      a missile. The investigation report, published in Amsterdam, said the plane crashed \
      over Ukraine and the crash investigation continues.",
     (2014, 9, 12)),
    // ---- the confusable same-window story (Figure 5's v¹₄) -------------
    (0, "http://nytimes.com/doc5.html",
     "U.N. Calls for Investigation in Gaza",
     "The United Nations called for an investigation into strikes in Gaza as the conflict \
      between Israel and Palestine escalated. Human rights officials said possible war \
      crimes by Israel and Palestine must be examined, and hostilities in Gaza continued.",
     (2014, 7, 20)),
    // ---- medical shortage story (Figure 4's c'3) ------------------------
    (0, "http://nytimes.com/doc11.html",
     "Doctors Warn of Medical Shortage in Eastern Ukraine",
     "Doctors in eastern Ukraine warned of a growing medical shortage as hospitals ran low \
      on supplies. Aid groups from the Netherlands said the shortage of medicine was acute \
      and that doctors and hospitals needed medical supplies urgently.",
     (2014, 8, 2)),
    // ---- the MH17 story, Wall Street Journal perspective ------------------
    (1, "http://online.wsj.com/doc6.html",
     "Malaysia Airlines Jet Crashes in Ukraine",
     "A Malaysia Airlines plane with 298 people aboard exploded, crashed and burned over \
      eastern Ukraine. United States officials said the plane was shot down by a missile \
      fired from territory held by pro-Russia separatists, and investigators would examine \
      the crash.",
     (2014, 7, 17)),
    (1, "http://online.wsj.com/doc7.html",
     "Criminal Investigation Into Crash of Flight 17",
     "Officials leading the criminal investigation into the crash of Malaysia Airlines \
      Flight 17 said Friday that the plane was shot down by a missile. Investigators from \
      the Netherlands and Ukraine said the plane crashed over separatist territory and the \
      investigation continues.",
     (2014, 7, 19)),
    (1, "http://online.wsj.com/doc8.html",
     "Sanctions on Russia Widen",
     "The European Union and the United States widened sanctions on Russia, citing the \
      continuing conflict in Ukraine. The sanctions target finance, energy and exports, \
      officials said, and Russia denounced the expanded sanctions.",
     (2014, 7, 30)),
    (1, "http://online.wsj.com/doc9.html",
     "Dutch Report: Jet Broke Up After Being Hit",
     "Investigators in the Netherlands reported that Malaysia Airlines Flight 17 broke up \
      in the air after being shot, consistent with a missile. The investigation report said \
      the plane crashed over Ukraine; investigators will continue the crash investigation \
      of the plane with international partners.",
     (2014, 9, 12)),
    // ---- unrelated business story (Figure 3's last row) --------------------
    (1, "http://online.wsj.com/doc10.html",
     "Google Battles Yelp Complaint Over Search",
     "Google Inc rival Yelp Inc says the search giant is promoting its own content at the \
      expense of users, as Google battles antitrust complaints in the European Union. Yelp \
      filed its complaint over search results and ranking practices.",
     (2014, 7, 24)),
];

/// The assembled demo: a pivot, the extraction pipeline, and the curated
/// documents, with add/remove interaction (paper §4.2.1).
pub struct Mh17Demo {
    /// The story detection engine.
    pub pivot: StoryPivot,
    /// The extraction pipeline (documents → snippets).
    pub pipeline: ExtractionPipeline,
    /// All curated documents (ingested or not).
    pub documents: Vec<Document>,
    /// Snippets produced per document index (empty when not ingested).
    pub extracted: Vec<Vec<SnippetId>>,
    /// The New York Times-like source.
    pub nyt: SourceId,
    /// The Wall Street Journal-like source.
    pub wsj: SourceId,
}

impl Mh17Demo {
    /// Demo-specific configuration: a wide window (60 days) so the
    /// September investigation report chains onto the July story, as in
    /// the paper's Figure 6 (story c'₁ spans July 17 – Sep 12).
    pub fn config() -> PivotConfig {
        let mut cfg = PivotConfig::default();
        cfg.identify.mode = MatchMode::Temporal { omega: 60 * DAY };
        cfg.identify.match_threshold = 0.30;
        cfg.align.counterpart_lag = 5 * DAY;
        cfg
    }

    /// Set up sources, pipeline, and documents without ingesting.
    pub fn new() -> Self {
        let mut pivot = StoryPivot::new(Self::config());
        let nyt = pivot.add_source("New York Times", SourceKind::Newspaper);
        let wsj = pivot.add_source("Wall Street Journal", SourceKind::Newspaper);
        let sources = [nyt, wsj];
        let documents: Vec<Document> = RAW_DOCS
            .iter()
            .enumerate()
            .map(|(i, &(src, url, title, body, (y, m, d)))| {
                Document::new(
                    DocId::new(i as u32),
                    sources[src],
                    url,
                    title,
                    body,
                    Timestamp::from_ymd(y, m, d),
                )
            })
            .collect();
        let extracted = vec![Vec::new(); documents.len()];
        Mh17Demo {
            pivot,
            pipeline: ExtractionPipeline::new(Annotator::new(gazetteer()), PipelineConfig::default()),
            documents,
            extracted,
            nyt,
            wsj,
        }
    }

    /// Number of curated documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the demo has no documents (never true).
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Ingest one curated document by index (extract → identify).
    pub fn add_document(&mut self, index: usize) -> Result<()> {
        let doc = self.documents[index].clone();
        let snippets = self.pipeline.extract(&doc)?;
        let mut ids = Vec::with_capacity(snippets.len());
        for s in snippets {
            ids.push(s.id);
            self.pivot.ingest(s)?;
        }
        self.extracted[index] = ids;
        Ok(())
    }

    /// Remove a previously ingested document (§4.2.1: users can remove
    /// documents "to explore how missing information affects the
    /// displayed stories").
    pub fn remove_document(&mut self, index: usize) -> Result<()> {
        let doc_id = self.documents[index].id;
        self.pipeline.retract(doc_id)?;
        self.pivot.remove_document(doc_id)?;
        self.extracted[index].clear();
        Ok(())
    }

    /// Ingest every curated document, align, and refine.
    pub fn build() -> Self {
        let mut demo = Self::new();
        for i in 0..demo.len() {
            demo.add_document(i).expect("curated docs are valid");
        }
        demo.pivot.align();
        demo.pivot.refine();
        demo
    }

    /// Re-align and refine after interactive changes.
    pub fn recompute(&mut self) {
        self.pivot.align_incremental();
        self.pivot.refine();
    }

    /// The first snippet extracted from document `index`, if ingested.
    pub fn snippet_of_doc(&self, index: usize) -> Option<SnippetId> {
        self.extracted[index].first().copied()
    }

    /// Convenience: id of the crash snippet in the NYT (document 0).
    pub fn crash_snippet(&self) -> Option<SnippetId> {
        self.snippet_of_doc(0)
    }
}

impl Default for Mh17Demo {
    fn default() -> Self {
        Self::new()
    }
}

/// The entity id catalog size (for tests).
pub const ENTITY_COUNT: u32 = 12;

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::SnippetRole;

    #[test]
    fn full_demo_builds_and_aligns_the_crash_story() {
        let demo = Mh17Demo::build();
        // Crash snippets of both sources share one global story.
        let nyt_crash = demo.snippet_of_doc(0).unwrap();
        let wsj_crash = demo.snippet_of_doc(7).unwrap();
        let g_nyt = demo.pivot.global_of(nyt_crash).unwrap();
        let g_wsj = demo.pivot.global_of(wsj_crash).unwrap();
        assert_eq!(g_nyt, g_wsj, "the MH17 story must align across sources");
        let g = demo
            .pivot
            .alignment()
            .unwrap()
            .global_story(g_nyt)
            .unwrap()
            .clone();
        assert!(g.is_cross_source());
        // The story spans the crash through the September report (Fig 6).
        let report = demo.snippet_of_doc(4).unwrap();
        assert_eq!(demo.pivot.global_of(report), Some(g_nyt), "Sep report joins the story");
        assert_eq!(g.lifespan.start, Timestamp::from_ymd(2014, 7, 17));
        assert_eq!(g.lifespan.end, Timestamp::from_ymd(2014, 9, 12));
    }

    #[test]
    fn google_yelp_story_stays_single_source() {
        let demo = Mh17Demo::build();
        let yelp = demo.snippet_of_doc(11).unwrap();
        let g = demo.pivot.global_of(yelp).unwrap();
        let crash_g = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
        assert_ne!(g, crash_g, "business story must not join the crash story");
        let gs = demo.pivot.alignment().unwrap().global_story(g).unwrap();
        assert!(!gs.is_cross_source());
        assert_eq!(gs.role_of(yelp), Some(SnippetRole::Enriching));
    }

    #[test]
    fn israel_story_is_separate_despite_shared_window_and_un() {
        let demo = Mh17Demo::build();
        let gaza = demo.snippet_of_doc(5).unwrap();
        let crash = demo.crash_snippet().unwrap();
        assert_ne!(
            demo.pivot.global_of(gaza),
            demo.pivot.global_of(crash),
            "the Gaza investigation story must stay separate (the v¹₄ trap)"
        );
    }

    #[test]
    fn crash_snippets_align_as_counterparts() {
        let demo = Mh17Demo::build();
        let crash = demo.crash_snippet().unwrap();
        let g = demo.pivot.global_of(crash).unwrap();
        let gs = demo.pivot.alignment().unwrap().global_story(g).unwrap();
        assert_eq!(
            gs.role_of(crash),
            Some(SnippetRole::Aligning),
            "same-day cross-source crash reports are counterparts"
        );
    }

    #[test]
    fn entities_are_recognized_in_the_crash_doc() {
        let demo = Mh17Demo::build();
        let crash = demo.pivot.store().get(demo.crash_snippet().unwrap()).unwrap();
        assert!(crash.entities().contains(&entities::UKRAINE));
        assert!(crash.entities().contains(&entities::MALAYSIA_AIRLINES));
        assert!(crash.entities().contains(&entities::RUSSIA));
        assert_eq!(crash.content.event_type, storypivot_types::EventType::Accident);
    }

    #[test]
    fn document_removal_and_readdition_round_trips() {
        let mut demo = Mh17Demo::build();
        let before = demo.pivot.global_stories().len();
        demo.remove_document(11).unwrap(); // Google/Yelp
        demo.recompute();
        assert_eq!(demo.pivot.global_stories().len(), before - 1);
        demo.add_document(11).unwrap();
        demo.recompute();
        assert_eq!(demo.pivot.global_stories().len(), before);
    }

    #[test]
    fn incremental_build_preserves_the_key_story_structure() {
        // Add documents one by one with recomputes in between. Exact
        // partitions may differ from the batch build (refinement is
        // order-dependent), but the demo's semantic structure must hold.
        let mut inc = Mh17Demo::new();
        for i in 0..inc.len() {
            inc.add_document(i).unwrap();
            inc.recompute();
        }
        // Crash snippets of both sources share one global story.
        let crash_nyt = inc.snippet_of_doc(0).unwrap();
        let crash_wsj = inc.snippet_of_doc(7).unwrap();
        assert_eq!(inc.pivot.global_of(crash_nyt), inc.pivot.global_of(crash_wsj));
        // The sanctions stories align across sources.
        assert_eq!(
            inc.pivot.global_of(inc.snippet_of_doc(3).unwrap()),
            inc.pivot.global_of(inc.snippet_of_doc(9).unwrap())
        );
        // Gaza and Google stay out of the crash story.
        for other in [5usize, 11] {
            assert_ne!(
                inc.pivot.global_of(inc.snippet_of_doc(other).unwrap()),
                inc.pivot.global_of(crash_nyt),
                "doc {other} must not join the crash story"
            );
        }
    }
}
