//! Functional reproduction of the demo UI modules (Figures 3–6) over
//! the curated MH17 corpus.

use storypivot::demo::mh17::{entities, Mh17Demo};
use storypivot::demo::modules;
use storypivot::demo::names::{NameSource, PipelineNames};
use storypivot::types::{SnippetRole, Timestamp};

#[test]
fn figure3_document_selection_renders_both_sources() {
    let demo = Mh17Demo::build();
    let ingested = vec![true; demo.len()];
    let view = modules::document_selection(&demo.pivot, &demo.documents, &ingested);
    assert!(view.contains("New York Times"));
    assert!(view.contains("Wall Street Journal"));
    assert!(view.contains("2014-07-17"));
    // All twelve curated documents appear.
    for i in 0..demo.len() {
        assert!(view.contains(&format!("#{i}")), "missing doc {i}:\n{view}");
    }
}

#[test]
fn figure4_story_overview_matches_paper_structure() {
    let demo = Mh17Demo::build();
    let names = PipelineNames(&demo.pipeline);
    let view = modules::story_overview(&demo.pivot, &names);
    // The crash story row is cross-source and UKR-heavy, as in Figure 4.
    assert!(view.contains("New York Times, Wall Street Journal"));
    assert!(view.contains("{UKR,"));
    // There are exactly five integrated stories in the curated corpus:
    // crash+investigation, sanctions, Gaza, medical, Google/Yelp.
    assert_eq!(demo.pivot.global_stories().len(), 5, "{view}");
}

#[test]
fn figure4_story_information_panel() {
    let demo = Mh17Demo::build();
    let names = PipelineNames(&demo.pipeline);
    let g = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
    let view = modules::story_information(&demo.pivot, g, &names);
    // Dates from Figure 6: July 17th 2014 through Sep 12th 2014.
    assert!(view.contains("Start Date  2014-07-17"), "{view}");
    assert!(view.contains("End Date    2014-09-12"), "{view}");
    assert!(view.contains("Sources     New York Times, Wall Street Journal"));
}

#[test]
fn figure5_stories_per_source_separates_the_gaza_trap() {
    let demo = Mh17Demo::build();
    let names = PipelineNames(&demo.pipeline);
    let view = modules::stories_per_source(&demo.pivot, demo.nyt, &names);
    // NYT has four stories: crash, sanctions, Gaza, medical.
    assert_eq!(demo.pivot.stories_of_source(demo.nyt).len(), 4, "{view}");
    assert!(view.contains("Jetliner Explodes Over Ukraine"));
    assert!(view.contains("U.N. Calls for Investigation in Gaza"));
}

#[test]
fn figure5_snippet_information_shows_extraction_record() {
    let demo = Mh17Demo::build();
    let names = PipelineNames(&demo.pipeline);
    let crash = demo.crash_snippet().unwrap();
    let view = modules::snippet_information(&demo.pivot, crash, &names);
    assert!(view.contains("Event Type  accident"));
    assert!(view.contains("UKR"));
    assert!(view.contains("MA"));
    assert!(view.contains("Global"));
}

#[test]
fn figure6_snippets_per_story_shows_aligned_lanes() {
    let demo = Mh17Demo::build();
    let names = PipelineNames(&demo.pipeline);
    let g = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
    let view = modules::snippets_per_story(&demo.pivot, g, &names);
    assert!(view.contains("New York Times:"));
    assert!(view.contains("Wall Street Journal:"));
    assert!(view.contains("align"));
    // The September report appears in the story's timeline (Figure 6
    // shows v₅ⁿ dated Sep 12th 2014).
    assert!(view.contains("2014-09-12"));
}

#[test]
fn crash_story_roles_match_the_papers_reading() {
    let demo = Mh17Demo::build();
    let g_id = demo.pivot.global_of(demo.crash_snippet().unwrap()).unwrap();
    let g = demo.pivot.alignment().unwrap().global_story(g_id).unwrap();
    // The two same-day crash reports are counterparts (aligning).
    assert_eq!(g.role_of(demo.snippet_of_doc(0).unwrap()), Some(SnippetRole::Aligning));
    assert_eq!(g.role_of(demo.snippet_of_doc(7).unwrap()), Some(SnippetRole::Aligning));
    assert_eq!(g.lifespan.start, Timestamp::from_ymd(2014, 7, 17));
}

#[test]
fn entity_codes_render_like_the_paper() {
    let demo = Mh17Demo::build();
    let names = PipelineNames(&demo.pipeline);
    assert_eq!(names.entity_code(entities::UKRAINE), "UKR");
    assert_eq!(names.entity_code(entities::RUSSIA), "RUS");
    assert_eq!(names.entity_code(entities::MALAYSIA_AIRLINES), "MA");
    assert_eq!(names.entity_code(entities::UNITED_NATIONS), "UN");
    assert_eq!(names.entity_code(entities::UNITED_STATES), "US");
    assert_eq!(names.entity_code(entities::NETHERLANDS), "NET");
    assert_eq!(names.entity_name(entities::UNITED_NATIONS), "United Nations");
}

#[test]
fn removing_a_document_changes_the_rendered_overview() {
    let mut demo = Mh17Demo::build();
    let names_before = {
        let names = PipelineNames(&demo.pipeline);
        modules::story_overview(&demo.pivot, &names)
    };
    demo.remove_document(11).unwrap(); // the Google/Yelp article
    demo.recompute();
    let names_after = {
        let names = PipelineNames(&demo.pipeline);
        modules::story_overview(&demo.pivot, &names)
    };
    assert_ne!(names_before, names_after);
    assert_eq!(demo.pivot.global_stories().len(), 4);
}
