//! Strongly-typed identifiers.
//!
//! Every id is a thin newtype over an unsigned integer. Using distinct
//! types (instead of bare `u32`s) prevents the classic bug of indexing a
//! story table with a snippet id, at zero runtime cost.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index backing this id.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The raw index as `usize`, for direct table indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies an information snippet (`v` in the paper).
    SnippetId,
    "v"
);
define_id!(
    /// Identifies a per-source story (`c` in the paper).
    StoryId,
    "c"
);
define_id!(
    /// Identifies an integrated cross-source story (`c'` in the paper).
    GlobalStoryId,
    "c'"
);
define_id!(
    /// Identifies a data source (`s` in the paper).
    SourceId,
    "s"
);
define_id!(
    /// Identifies an interned entity (e.g. `UKR`, `Malaysia Airlines`).
    EntityId,
    "e"
);
define_id!(
    /// Identifies an interned description term (e.g. `crash`, `plane`).
    TermId,
    "t"
);
define_id!(
    /// Identifies a source document (article, blog post, report).
    DocId,
    "d"
);

/// A monotonically increasing id allocator for one id type.
///
/// ```
/// use storypivot_types::ids::{IdGen, SnippetId};
/// let mut gen = IdGen::<SnippetId>::new();
/// assert_eq!(gen.next_id(), SnippetId::new(0));
/// assert_eq!(gen.next_id(), SnippetId::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct IdGen<T> {
    next: u32,
    _marker: std::marker::PhantomData<T>,
}

impl<T: From<u32>> IdGen<T> {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self {
            next: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// A generator starting at `first`.
    pub fn starting_at(first: u32) -> Self {
        Self {
            next: first,
            _marker: std::marker::PhantomData,
        }
    }

    /// Allocate the next id.
    pub fn next_id(&mut self) -> T {
        let id = T::from(self.next);
        self.next += 1;
        id
    }

    /// How many ids have been allocated so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

impl<T: From<u32>> Default for IdGen<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_prefixes() {
        assert_eq!(SnippetId::new(4).to_string(), "v4");
        assert_eq!(StoryId::new(1).to_string(), "c1");
        assert_eq!(GlobalStoryId::new(3).to_string(), "c'3");
        assert_eq!(SourceId::new(0).to_string(), "s0");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(SnippetId::new(1) < SnippetId::new(2));
        let mut v = vec![StoryId::new(5), StoryId::new(1), StoryId::new(3)];
        v.sort();
        assert_eq!(v, vec![StoryId::new(1), StoryId::new(3), StoryId::new(5)]);
    }

    #[test]
    fn round_trip_through_u32() {
        let id = EntityId::from(17u32);
        assert_eq!(u32::from(id), 17);
        assert_eq!(id.index(), 17usize);
    }

    #[test]
    fn idgen_is_monotonic() {
        let mut g = IdGen::<DocId>::starting_at(10);
        assert_eq!(g.next_id(), DocId::new(10));
        assert_eq!(g.next_id(), DocId::new(11));
        assert_eq!(g.allocated(), 12);
    }
}
