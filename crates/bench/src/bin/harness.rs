//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p storypivot-bench --release --bin harness -- all
//! cargo run -p storypivot-bench --release --bin harness -- e1 e3 --quick
//! ```
//!
//! Experiments (see DESIGN.md §4):
//!   e1  per-event identification cost vs #events   (Fig 7, performance)
//!   e2  F-measure vs #events per SI/SA method      (Fig 7, quality)
//!   e3  sliding-window size ω sweep                (§2.2)
//!   e4  sketch vs exact alignment ablation         (§2.4)
//!   e5  out-of-order delivery robustness           (§2.4)
//!   e6  incremental source onboarding              (§2.1)
//!   e7  refinement error-correction                (§2.3, Fig 1d)
//!   e8  scaling with the number of sources         (Fig 7 inset)
//!   e9  document add/remove latency                (§4.2.1)
//!   e10 identification scoring ablation            (design choice)
//!   wal (e12) journal fsync cost + recovery replay (durability)
//!   metrics (e13) instrumentation overhead         (observability)
//!   conns (e14) many-connection serving memory/rtt (serving runtime)
//!   replica (e15) read fan-out across followers + snapshot staleness
//!   chaos (e16) adversarial scenario quality under load  (robustness)
//!   hotpath (e17) similarity inner-loop before/after: flat kernels,
//!                 allocation-free scoring, hot-story cache

use std::time::{Duration, Instant};

use storypivot_bench::{corpus_constant_density, corpus_fixed_period, ingest_all, pivot_for, OMEGA};
use storypivot_substrate::metrics::Registry;
use storypivot_substrate::rng::{RngExt, StdRng};
use storypivot_substrate::wal::{self, SyncPolicy, Wal};
use storypivot_core::config::PivotConfig;
use storypivot_core::metrics::EngineMetrics;
use storypivot_core::oplog::{replay_op, ReplayOp};
use storypivot_core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot_eval::run::{alignment_scores, identification_scores, run, RunOptions};
use storypivot_eval::Table;
use storypivot_gen::{CorpusBuilder, GenConfig};
use storypivot_types::{SnippetId, DAY, HOUR};

struct Scale {
    e1_sizes: Vec<usize>,
    e2_sizes: Vec<usize>,
    mid: usize,
    e8_sources: Vec<u32>,
    per_source: usize,
    conn_tiers: Vec<usize>,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            e1_sizes: vec![500, 1_000, 2_000],
            e2_sizes: vec![500, 1_000, 2_000],
            mid: 1_200,
            e8_sources: vec![2, 5, 10],
            per_source: 60,
            conn_tiers: vec![200, 500],
        }
    }

    fn full() -> Self {
        Scale {
            e1_sizes: vec![1_000, 2_000, 4_000, 8_000, 16_000],
            e2_sizes: vec![1_000, 2_000, 4_000, 8_000, 16_000],
            mid: 4_000,
            e8_sources: vec![2, 5, 10, 20, 50],
            per_source: 120,
            conn_tiers: vec![1_000, 5_000, 10_000],
        }
    }
}

fn ms(nanos: f64) -> String {
    format!("{:.4}", nanos / 1e6)
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

fn main() {
    let mut quick = false;
    let mut csv_dir: Option<String> = None;
    let mut json_dir: Option<String> = None;
    let mut seed: u64 = 0;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--csv" => {
                csv_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }))
            }
            "--json" => {
                json_dir = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a directory");
                    std::process::exit(2);
                }))
            }
            "--seed" => {
                let raw = args.next().unwrap_or_else(|| {
                    eprintln!("--seed needs a u64 value");
                    std::process::exit(2);
                });
                seed = raw.parse().unwrap_or_else(|_| {
                    eprintln!("--seed must be a u64, got {raw:?}");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown flag {other:?} (flags: --quick, --seed <u64>, --csv <dir>, --json <dir>)"
                );
                std::process::exit(2);
            }
            other => wanted.push(other.to_string()),
        }
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "wal", "metrics", "conns",
            "replica", "chaos", "hotpath",
        ]
        .map(String::from)
        .to_vec();
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create --csv directory");
    }
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create --json directory");
    }
    println!("seed: {seed} (corpora and injections are fully determined by it)");
    for exp in &wanted {
        let table = match exp.as_str() {
            "e1" => e1(&scale, seed),
            "e2" => e2(&scale, seed),
            "e3" => e3(&scale, seed),
            "e4" => e4(&scale, seed),
            "e5" => e5(&scale, seed),
            "e6" => e6(&scale, seed),
            "e7" => e7(&scale, seed),
            "e8" => e8(&scale, seed),
            "e9" => e9(seed),
            "e10" => e10(&scale, seed),
            "wal" | "e12" => e12_wal(&scale, seed),
            "metrics" | "e13" => e13_metrics(&scale, seed),
            "conns" | "e14" => e14_conns(&scale),
            "replica" | "e15" => e15_replica(&scale, seed),
            "chaos" | "e16" => e16_chaos(&scale, seed),
            "hotpath" | "e17" => e17_hotpath(&scale, seed),
            other => {
                eprintln!(
                    "unknown experiment {other:?} (use e1..e10, wal, metrics, conns, replica, \
                     chaos, hotpath, or all)"
                );
                continue;
            }
        };
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{exp}.csv");
            std::fs::write(&path, table.to_csv()).expect("write CSV");
            eprintln!("wrote {path}");
        }
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/BENCH_{exp}.json");
            std::fs::write(&path, table.to_json()).expect("write JSON");
            eprintln!("wrote {path}");
        }
    }
}

/// E1 — Figure 7, performance panel: per-event identification time as
/// the number of events grows, at constant event density.
fn e1(scale: &Scale, seed: u64) -> Table {
    println!("\n## E1 — identification cost vs #events (Fig 7, performance)\n");
    let mut table = Table::new([
        "events", "SI method", "ms/event", "p50 ms", "p95 ms", "comparisons", "stories",
    ]);
    for &n in &scale.e1_sizes {
        let corpus = corpus_constant_density(n, 10, seed ^ 7);
        for (name, cfg) in [
            ("temporal", PivotConfig::temporal(OMEGA)),
            ("complete", PivotConfig::complete()),
        ] {
            let r = run(
                &corpus,
                cfg,
                RunOptions {
                    align: false,
                    refine: false,
                    delivery_order: true,
                },
            );
            table.row([
                corpus.len().to_string(),
                name.to_string(),
                ms(r.per_event_nanos),
                ms(r.p50_nanos as f64),
                ms(r.p95_nanos as f64),
                r.comparisons.to_string(),
                r.stories.to_string(),
            ]);
        }
    }
    print!("{}", table.to_markdown());
    table
}

/// E2 — Figure 7, quality panel: F-measure vs #events for each SI
/// method, with and without alignment/refinement.
fn e2(scale: &Scale, seed: u64) -> Table {
    println!("\n## E2 — F-measure vs #events (Fig 7, quality)\n");
    let mut table = Table::new(["events", "SI method", "SI F1", "SA F1", "SA NMI", "SA+refine F1"]);
    for &n in &scale.e2_sizes {
        let corpus = corpus_fixed_period(n, 10, seed ^ 11);
        for (name, cfg) in [
            ("temporal", PivotConfig::temporal(OMEGA)),
            ("complete", PivotConfig::complete()),
        ] {
            let base = run(&corpus, cfg.clone(), RunOptions::default());
            // NMI over the same aligned clustering (extra metric beside
            // the paper's F-measure).
            let mut pivot = ingest_all(&corpus, cfg.clone());
            pivot.align();
            let (pred, truth) = storypivot_eval::run::alignment_clusterings(&pivot, &corpus);
            let nmi = storypivot_eval::nmi(&pred, &truth);
            let refined = run(
                &corpus,
                cfg,
                RunOptions {
                    refine: true,
                    ..RunOptions::default()
                },
            );
            table.row([
                corpus.len().to_string(),
                name.to_string(),
                f3(base.si_f1()),
                f3(base.sa_f1()),
                f3(nmi),
                f3(refined.sa_f1()),
            ]);
        }
    }
    print!("{}", table.to_markdown());
    table
}

/// E3 — sliding-window sweep: runtime and quality as ω varies; the
/// complete mode is the ω → ∞ limit.
fn e3(scale: &Scale, seed: u64) -> Table {
    println!("\n## E3 — window size ω sweep (§2.2)\n");
    let corpus = corpus_fixed_period(scale.mid, 10, seed ^ 13);
    let mut table = Table::new(["omega", "ms/event", "comparisons", "SI F1", "SA F1"]);
    for days in [1i64, 3, 7, 14, 30, 90] {
        let r = run(&corpus, PivotConfig::temporal(days * DAY), RunOptions::default());
        table.row([
            format!("{days}d"),
            ms(r.per_event_nanos),
            r.comparisons.to_string(),
            f3(r.si_f1()),
            f3(r.sa_f1()),
        ]);
    }
    let r = run(&corpus, PivotConfig::complete(), RunOptions::default());
    table.row([
        "inf (complete)".to_string(),
        ms(r.per_event_nanos),
        r.comparisons.to_string(),
        f3(r.si_f1()),
        f3(r.sa_f1()),
    ]);
    print!("{}", table.to_markdown());
    table
}

/// E4 — sketch ablation: exact centroid comparison vs MinHash sketches
/// of several sizes during alignment.
fn e4(scale: &Scale, seed: u64) -> Table {
    println!("\n## E4 — sketch vs exact story comparison (§2.4)\n");
    let corpus = corpus_fixed_period(scale.mid, 20, seed ^ 17);
    let mut table = Table::new(["comparison", "align ms", "pairs scored", "SA F1"]);
    let mut configs = vec![("exact".to_string(), false, 128usize)];
    for k in [32usize, 64, 128, 256] {
        configs.push((format!("minhash k={k}"), true, k));
    }
    for (name, use_sketches, k) in configs {
        let mut cfg = PivotConfig::temporal(OMEGA);
        cfg.align.use_sketches = use_sketches;
        cfg.sketch.minhash_k = k;
        let mut pivot = ingest_all(&corpus, cfg);
        let t = Instant::now();
        let outcome = pivot.align().clone();
        let align_nanos = t.elapsed().as_nanos() as f64;
        let sa = alignment_scores(&pivot, &corpus);
        table.row([
            name,
            ms(align_nanos),
            outcome.pairs_scored.to_string(),
            f3(sa.f1),
        ]);
    }
    print!("{}", table.to_markdown());
    table
}

/// E5 — out-of-order robustness: publication lag scrambles delivery
/// order; quality must degrade gracefully.
fn e5(scale: &Scale, seed: u64) -> Table {
    println!("\n## E5 — out-of-order delivery (§2.4)\n");
    let mut table = Table::new(["mean pub lag", "inversion frac", "order", "SI F1", "SA F1"]);
    for lag_hours in [0i64, 6, 24, 72, 168] {
        let mut gen = GenConfig::default().with_seed(seed ^ 19).with_target_snippets(scale.mid);
        gen.mean_pub_lag = lag_hours * HOUR;
        let corpus = CorpusBuilder::new(gen).build();
        for (order, delivery) in [("delivery", true), ("event-time", false)] {
            let r = run(
                &corpus,
                PivotConfig::temporal(OMEGA),
                RunOptions {
                    delivery_order: delivery,
                    ..RunOptions::default()
                },
            );
            table.row([
                format!("{lag_hours}h"),
                format!("{:.3}", corpus.inversion_fraction()),
                order.to_string(),
                f3(r.si_f1()),
                f3(r.sa_f1()),
            ]);
        }
    }
    print!("{}", table.to_markdown());
    table
}

/// E6 — incremental source onboarding vs full re-alignment.
fn e6(scale: &Scale, seed: u64) -> Table {
    println!("\n## E6 — source onboarding (§2.1)\n");
    let corpus = corpus_fixed_period(scale.mid, 12, seed ^ 23);
    let mut table = Table::new([
        "step",
        "align ms",
        "pairs scored",
        "global stories",
        "same partition",
    ]);

    // Ingest the first 10 sources, align.
    let cfg = PivotConfig::temporal(OMEGA);
    let mut pivot = pivot_for(&corpus, cfg);
    for s in &corpus.snippets {
        if s.source.raw() < 10 {
            pivot.ingest(s.clone()).unwrap();
        }
    }
    let t = Instant::now();
    pivot.align();
    let base_nanos = t.elapsed().as_nanos() as f64;
    let base_pairs = pivot.alignment().unwrap().pairs_scored;
    table.row([
        "initial (10 sources)".into(),
        ms(base_nanos),
        base_pairs.to_string(),
        pivot.global_stories().len().to_string(),
        "-".into(),
    ]);

    // Onboard sources 10 and 11.
    for s in &corpus.snippets {
        if s.source.raw() >= 10 {
            pivot.ingest(s.clone()).unwrap();
        }
    }
    let mut incremental = pivot.clone();
    let t = Instant::now();
    incremental.align_incremental();
    let inc_nanos = t.elapsed().as_nanos() as f64;
    let inc_pairs = incremental.alignment().unwrap().pairs_scored;

    let mut full = pivot.clone();
    let t = Instant::now();
    full.align();
    let full_nanos = t.elapsed().as_nanos() as f64;
    let full_pairs = full.alignment().unwrap().pairs_scored;

    let partition = |p: &storypivot_core::pivot::StoryPivot| -> Vec<Vec<u32>> {
        let mut v: Vec<Vec<u32>> = p
            .global_stories()
            .iter()
            .map(|g| {
                let mut m: Vec<u32> = g.members.iter().map(|&(id, _)| id.raw()).collect();
                m.sort_unstable();
                m
            })
            .collect();
        v.sort();
        v
    };
    let same = partition(&incremental) == partition(&full);

    table.row([
        "onboard +2 (incremental)".into(),
        ms(inc_nanos),
        inc_pairs.to_string(),
        incremental.global_stories().len().to_string(),
        same.to_string(),
    ]);
    table.row([
        "onboard +2 (full realign)".into(),
        ms(full_nanos),
        full_pairs.to_string(),
        full.global_stories().len().to_string(),
        "-".into(),
    ]);
    print!("{}", table.to_markdown());
    table
}

/// E7 — refinement error-correction: inject identification errors, then
/// measure how many the alignment+refinement loop repairs (Fig 1d).
fn e7(scale: &Scale, seed: u64) -> Table {
    println!("\n## E7 — refinement corrects injected SI errors (§2.3, Fig 1d)\n");
    let corpus = corpus_fixed_period(scale.mid / 2, 6, seed ^ 29);
    let mut table = Table::new([
        "injected",
        "SA F1 clean",
        "SA F1 corrupted",
        "SA F1 refined",
        "restored",
    ]);
    for rate in [0.05f64, 0.10, 0.20] {
        let mut pivot = ingest_all(&corpus, PivotConfig::temporal(OMEGA));
        pivot.align();
        let clean = alignment_scores(&pivot, &corpus).f1;

        // Inject: move a random sample of snippets into a random other
        // story of their source.
        let mut rng = StdRng::seed_from_u64(seed ^ (1000 + (rate * 100.0) as u64));
        let mut injected: Vec<(SnippetId, storypivot_types::StoryId)> = Vec::new();
        for s in &corpus.snippets {
            if !rng.random_bool(rate) {
                continue;
            }
            let Some(original) = pivot.story_of(s.id) else { continue };
            let others: Vec<_> = pivot
                .stories_of_source(s.source)
                .iter()
                .map(|st| st.id())
                .filter(|&id| id != original)
                .collect();
            if others.is_empty() {
                continue;
            }
            let target = others[rng.random_range(0..others.len())];
            pivot.reassign_snippet(s.id, target).unwrap();
            injected.push((s.id, original));
        }
        pivot.align_incremental();
        let corrupted = alignment_scores(&pivot, &corpus).f1;

        pivot.refine();
        let refined = alignment_scores(&pivot, &corpus).f1;
        let restored = injected
            .iter()
            .filter(|&&(id, original)| pivot.story_of(id) == Some(original))
            .count();
        table.row([
            format!("{:.0}% ({})", rate * 100.0, injected.len()),
            f3(clean),
            f3(corrupted),
            f3(refined),
            format!("{restored}/{}", injected.len()),
        ]);
    }
    print!("{}", table.to_markdown());
    table
}

/// E8 — scaling with the number of sources (the Figure 7 dataset panel
/// lists 50 sources).
fn e8(scale: &Scale, seed: u64) -> Table {
    println!("\n## E8 — scaling with #sources (Fig 7 inset)\n");
    let mut table = Table::new([
        "sources",
        "events",
        "ingest ms/event",
        "align ms",
        "pairs scored",
        "SA F1",
    ]);
    for &n_sources in &scale.e8_sources {
        let target = scale.per_source * n_sources as usize;
        let corpus = corpus_fixed_period(target, n_sources, seed ^ 31);
        let r = run(&corpus, PivotConfig::temporal(OMEGA), RunOptions::default());
        let mut pivot = ingest_all(&corpus, PivotConfig::temporal(OMEGA));
        let t = Instant::now();
        pivot.align();
        let align_nanos = t.elapsed().as_nanos() as f64;
        table.row([
            n_sources.to_string(),
            corpus.len().to_string(),
            ms(r.per_event_nanos),
            ms(align_nanos),
            pivot.alignment().unwrap().pairs_scored.to_string(),
            f3(r.sa_f1()),
        ]);
    }
    print!("{}", table.to_markdown());
    table
}

/// E9 — interactive document add/remove (§4.2.1): incremental update
/// latency vs recomputing from scratch.
fn e9(seed: u64) -> Table {
    println!("\n## E9 — document add/remove latency (§4.2.1)\n");
    let corpus = corpus_fixed_period(1_000, 6, seed ^ 37);
    let mut pivot = ingest_all(&corpus, PivotConfig::temporal(OMEGA));
    pivot.align();
    let si_before = identification_scores(&pivot, &corpus).f1;

    // Remove 20 documents, one by one, measuring incremental updates.
    let mut remove_nanos = Vec::new();
    let docs: Vec<_> = (0..20u32).map(storypivot_types::DocId::new).collect();
    for &d in &docs {
        let t = Instant::now();
        pivot.remove_document(d).unwrap();
        pivot.align_incremental();
        remove_nanos.push(t.elapsed().as_nanos() as f64);
    }
    // Re-add them.
    let mut add_nanos = Vec::new();
    for &d in &docs {
        let snippet = corpus
            .snippets
            .iter()
            .find(|s| s.doc == d)
            .expect("doc exists")
            .clone();
        let t = Instant::now();
        pivot.ingest(snippet).unwrap();
        pivot.align_incremental();
        add_nanos.push(t.elapsed().as_nanos() as f64);
    }
    let si_after = identification_scores(&pivot, &corpus).f1;

    // Full rebuild, for comparison.
    let t = Instant::now();
    let mut fresh = ingest_all(&corpus, PivotConfig::temporal(OMEGA));
    fresh.align();
    let rebuild_nanos = t.elapsed().as_nanos() as f64;

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut table = Table::new(["operation", "mean ms", "SI F1 impact"]);
    table.row([
        "remove doc + realign (incremental)".to_string(),
        ms(mean(&remove_nanos)),
        "-".into(),
    ]);
    table.row([
        "re-add doc + realign (incremental)".to_string(),
        ms(mean(&add_nanos)),
        format!("{} -> {}", f3(si_before), f3(si_after)),
    ]);
    table.row(["full rebuild + align".to_string(), ms(rebuild_nanos), "-".into()]);
    print!("{}", table.to_markdown());
    table
}

/// E10 — ablation of the snippet–story scoring blend: pure single-link
/// (pair_blend = 1.0) vs pure windowed centroid (0.0) vs the default
/// blend (0.5). The design-choice ablation called out in DESIGN.md.
fn e10(scale: &Scale, seed: u64) -> Table {
    println!("\n## E10 — identification scoring ablation (design choice)\n");
    let corpus = corpus_fixed_period(scale.mid * 2, 10, seed ^ 41);
    let mut table = Table::new(["scoring", "SI F1", "SI precision", "SI recall", "stories"]);
    for (name, blend) in [
        ("single-link (pair only)", 1.0f64),
        ("blend 0.75", 0.75),
        ("blend 0.50 (default)", 0.5),
        ("blend 0.25", 0.25),
        ("centroid only", 0.0),
    ] {
        let mut cfg = PivotConfig::temporal(OMEGA);
        cfg.identify.pair_blend = blend;
        let r = run(&corpus, cfg, RunOptions::default());
        table.row([
            name.to_string(),
            f3(r.si_f1()),
            f3(r.si_scores.precision),
            f3(r.si_scores.recall),
            r.stories.to_string(),
        ]);
    }
    print!("{}", table.to_markdown());
    table
}

/// E12 — durability cost and recovery speed: journaled ingest under each
/// fsync policy vs the unjournaled baseline, and scan+replay time as a
/// function of journal length. Measures the same WAL + oplog machinery
/// pivotd runs, without the network in the way.
fn e12_wal(scale: &Scale, seed: u64) -> Table {
    println!("\n## E12 — WAL fsync cost and recovery replay (durability)\n");
    let corpus = corpus_fixed_period(scale.mid, 8, seed ^ 43);
    let dir = std::env::temp_dir().join(format!("storypivot-harness-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create WAL scratch dir");
    let mut table = Table::new(["mode", "fsync", "events", "ms/event", "wal KiB", "recover ms"]);
    // Flush-only pipeline: isolates journaling cost from alignment.
    let fresh = || {
        DynamicPivot::new(
            PivotConfig::default(),
            PipelinePolicy { align_every: 0, ..PipelinePolicy::default() },
        )
    };

    // Baseline: the same ingest stream with no journal at all.
    let mut engine = fresh();
    for s in &corpus.sources {
        engine.pivot_mut().add_source_registered(s.clone()).unwrap();
    }
    let t = Instant::now();
    for s in &corpus.snippets {
        engine.ingest(s.clone()).unwrap();
    }
    let base_nanos = t.elapsed().as_nanos() as f64 / corpus.len() as f64;
    table.row([
        "ingest (no wal)".into(),
        "-".into(),
        corpus.len().to_string(),
        ms(base_nanos),
        "-".into(),
        "-".into(),
    ]);

    // Journaled ingest: append-before-apply, one record per op, under
    // each fsync policy pivotd exposes.
    for policy in [SyncPolicy::Always, SyncPolicy::EveryN(64), SyncPolicy::Never] {
        let path = dir.join(format!("ingest-{policy}.wal"));
        let (mut journal, _) = Wal::open(&path, policy).expect("open journal");
        let mut engine = fresh();
        for s in &corpus.sources {
            journal.append(&ReplayOp::AddSource(s.clone()).to_bytes()).unwrap();
            engine.pivot_mut().add_source_registered(s.clone()).unwrap();
        }
        let t = Instant::now();
        for s in &corpus.snippets {
            journal.append(&ReplayOp::Ingest(s.clone()).to_bytes()).unwrap();
            engine.ingest(s.clone()).unwrap();
        }
        let nanos = t.elapsed().as_nanos() as f64 / corpus.len() as f64;
        table.row([
            "ingest (journaled)".into(),
            policy.to_string(),
            corpus.len().to_string(),
            ms(nanos),
            (journal.len() / 1024).to_string(),
            "-".into(),
        ]);
    }

    // Recovery: cold scan + decode + idempotent replay of a journal
    // holding 1/4, 1/2, and all of the stream — the startup cost a
    // checkpoint-less restart pays, linear in tail length.
    for frac in [4usize, 2, 1] {
        let n = corpus.len() / frac;
        let path = dir.join(format!("recover-{n}.wal"));
        let (mut journal, _) = Wal::open(&path, SyncPolicy::Never).expect("open journal");
        for s in &corpus.sources {
            journal.append(&ReplayOp::AddSource(s.clone()).to_bytes()).unwrap();
        }
        for s in corpus.snippets.iter().take(n) {
            journal.append(&ReplayOp::Ingest(s.clone()).to_bytes()).unwrap();
        }
        journal.sync().unwrap();
        let wal_kib = journal.len() / 1024;
        drop(journal);

        let t = Instant::now();
        let scan = wal::scan(&path).expect("scan journal");
        let mut engine = fresh();
        for record in &scan.records {
            let op = ReplayOp::decode(record).expect("decode journaled op");
            replay_op(&mut engine, &op).expect("replay journaled op");
        }
        let recover_nanos = t.elapsed().as_nanos() as f64;
        assert!(!scan.damaged(), "bench journal must scan clean");
        assert_eq!(engine.pivot().store().len(), n, "replay must restore every snippet");
        table.row([
            "recover (scan+replay)".into(),
            "-".into(),
            n.to_string(),
            "-".into(),
            wal_kib.to_string(),
            ms(recover_nanos),
        ]);
    }

    let _ = std::fs::remove_dir_all(&dir);
    print!("{}", table.to_markdown());
    table
}

/// E13 — instrumentation overhead: the same ingest stream into three
/// engines — metrics detached (the default), attached to a *disabled*
/// registry (one `None` branch per operation, the compiled-out
/// configuration), and attached to a live registry (atomic counters +
/// mutexed histograms). Best-of-N per configuration to suppress
/// scheduler noise; DESIGN.md §8 budgets the live overhead at < 5%.
fn e13_metrics(scale: &Scale, seed: u64) -> Table {
    println!("\n## E13 — metrics instrumentation overhead (observability)\n");
    const TRIALS: usize = 5;
    let corpus = corpus_fixed_period(scale.mid, 10, seed ^ 47);
    let cfg = PivotConfig::temporal(OMEGA);
    let names = ["detached (default)", "disabled registry", "live registry"];
    let mut best = [f64::INFINITY; 3];
    for _ in 0..TRIALS {
        for (slot, best_ns) in best.iter_mut().enumerate() {
            let registry = match slot {
                0 => None,
                1 => Some(Registry::disabled()),
                _ => Some(Registry::new()),
            };
            let mut pivot = pivot_for(&corpus, cfg.clone());
            if let Some(r) = &registry {
                pivot.set_metrics(EngineMetrics::register(r));
            }
            let t = Instant::now();
            for s in &corpus.snippets {
                pivot.ingest(s.clone()).unwrap();
            }
            let nanos = t.elapsed().as_nanos() as f64 / corpus.len() as f64;
            *best_ns = best_ns.min(nanos);
            if let Some(r) = registry.filter(Registry::is_enabled) {
                // The timing is only meaningful if the live run really
                // recorded its work.
                assert_eq!(
                    r.snapshot().counter_value("storypivot_ingest_total", &[]),
                    Some(corpus.len() as u64),
                    "live registry must count every ingest"
                );
            }
        }
    }
    println!("best of {TRIALS} trials per configuration\n");
    let mut table = Table::new(["config", "events", "ns/event", "overhead vs detached"]);
    for (slot, name) in names.iter().enumerate() {
        let overhead = if slot == 0 {
            "baseline".to_string()
        } else {
            format!("{:+.2}%", (best[slot] - best[0]) / best[0] * 100.0)
        };
        table.row([
            name.to_string(),
            corpus.len().to_string(),
            format!("{:.0}", best[slot]),
            overhead,
        ]);
    }
    print!("{}", table.to_markdown());
    table
}

/// Resident-set size of this process in KiB, from `/proc/self/status`.
fn vm_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest.split_whitespace().next().and_then(|v| v.parse().ok()).unwrap_or(0);
        }
    }
    0
}

/// Soft file-descriptor limit, from `/proc/self/limits` ("unlimited"
/// and unreadable both map to `u64::MAX` — i.e. never skip).
fn fd_soft_limit() -> u64 {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    for line in limits.lines() {
        if line.starts_with("Max open files") {
            return line
                .split_whitespace()
                .nth(3)
                .and_then(|v| v.parse().ok())
                .unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// E14 — serving runtime under a connection storm: hold N mostly-idle
/// connections against an in-process pivotd and trickle one tiny
/// request per connection per interval. Reports peak resident-set
/// growth per connection and round-trip tail latency. Client and
/// server share the process, so ΔRSS/conn is an *upper bound* on the
/// server-side cost (the client side is a raw unbuffered socket).
/// Tiers that would exceed the fd ulimit (two descriptors per
/// connection in-process) are skipped, not failed.
fn e14_conns(scale: &Scale) -> Table {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    use storypivot_serve::client::Client;
    use storypivot_serve::server::{serve, ServerConfig};
    use storypivot_serve::{conn_storm, StormOptions};

    println!("\n## E14 — many-connection serving: memory per connection and rtt tails\n");
    let handle = serve(
        "127.0.0.1:0",
        ServerConfig { shards: 2, align_every: 0, io_workers: 2, ..ServerConfig::default() },
    )
    .expect("start in-process pivotd");
    let addr = handle.addr();
    let fd_limit = fd_soft_limit();

    let mut table = Table::new([
        "connections",
        "requests",
        "connect s",
        "storm s",
        "peak ΔRSS KiB",
        "KiB/conn",
        "p50 µs",
        "p95 µs",
        "p99 µs",
    ]);
    for &conns in &scale.conn_tiers {
        // In-process storm: every connection is two descriptors (client
        // end + accepted end), plus server/runtime overhead.
        let need = 2 * conns as u64 + 128;
        if need > fd_limit {
            println!("  skipping {conns} connections: needs ~{need} fds, ulimit -n is {fd_limit}");
            table.row([
                conns.to_string(),
                format!("skipped: fd ulimit {fd_limit}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let before = vm_rss_kib();
        let stop = Arc::new(AtomicBool::new(false));
        let peak = Arc::new(AtomicU64::new(before));
        let sampler = {
            let stop = Arc::clone(&stop);
            let peak = Arc::clone(&peak);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    peak.fetch_max(vm_rss_kib(), Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(10));
                }
            })
        };
        let report = conn_storm(
            addr,
            &StormOptions {
                connections: conns,
                drivers: 8,
                rounds: 5,
                interval: Duration::from_millis(50),
            },
        )
        .expect("connection storm");
        stop.store(true, Ordering::Relaxed);
        sampler.join().expect("rss sampler");
        let delta = peak.load(Ordering::Relaxed).saturating_sub(before);
        table.row([
            report.connections.to_string(),
            report.requests.to_string(),
            format!("{:.2}", report.connect_wall.as_secs_f64()),
            format!("{:.2}", report.wall.as_secs_f64()),
            delta.to_string(),
            format!("{:.2}", delta as f64 / report.connections as f64),
            format!("{:.1}", report.latency.percentile(0.50) as f64 / 1e3),
            format!("{:.1}", report.latency.percentile(0.95) as f64 / 1e3),
            format!("{:.1}", report.latency.percentile(0.99) as f64 / 1e3),
        ]);
    }
    let mut client = Client::connect(addr).expect("shutdown client");
    client.shutdown().expect("graceful shutdown");
    handle.join();
    print!("{}", table.to_markdown());
    table
}

/// E15 — replication: aggregate QUERY_STORIES throughput as follower
/// replicas join the read path, and snapshot staleness under the
/// `--snapshot-every-ops` freshness policy. Long-format table so both
/// phases share one artifact (`BENCH_replica.json`).
fn e15_replica(scale: &Scale, seed: u64) -> Table {
    use storypivot_serve::client::Client;
    use storypivot_serve::load::{query_fanout, replay, LoadOptions, QueryOptions};
    use storypivot_serve::server::{serve, ServerConfig};

    println!("\n## E15 — follower read fan-out and snapshot staleness\n");
    let mut table = Table::new(["phase", "config", "metric", "value"]);
    let base = std::env::temp_dir().join(format!("storypivot-e15-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("e15 scratch dir");
    let shards = 2usize;
    let corpus = CorpusBuilder::new(
        GenConfig::default()
            .with_seed(seed ^ 0xE15)
            .with_sources(6)
            .with_target_snippets(scale.mid),
    )
    .build();
    let server_cfg = |dir: std::path::PathBuf, every_ops: u64, leader: Option<String>| {
        std::fs::create_dir_all(&dir).expect("e15 wal dir");
        ServerConfig {
            shards,
            align_every: 0,
            wal_dir: Some(dir),
            fsync: SyncPolicy::Never,
            snapshot_every_ops: every_ops,
            snapshot_max_age_ms: 3_600_000,
            leader,
            ..ServerConfig::default()
        }
    };

    // Canonical partition shape, for convergence polling.
    let partition = |client: &mut Client| -> Vec<(u32, Vec<u32>)> {
        let mut p: Vec<(u32, Vec<u32>)> = client
            .query_stories()
            .expect("query partition")
            .iter()
            .map(|s| {
                let mut members: Vec<u32> = s.members.iter().map(|m| m.raw()).collect();
                members.sort_unstable();
                (s.id.raw(), members)
            })
            .collect();
        p.sort();
        p
    };

    // ---- phase 1: read throughput vs replica count -------------------
    let leader = serve("127.0.0.1:0", server_cfg(base.join("leader"), 1, None))
        .expect("start e15 leader");
    let leader_addr = leader.addr();
    replay(
        leader_addr,
        &corpus,
        &LoadOptions { connections: shards, ..LoadOptions::default() },
    )
    .expect("preload leader");
    let mut lc = Client::connect(leader_addr).expect("leader client");
    let want = partition(&mut lc);

    let opts = QueryOptions { requests: 2 * scale.mid as u64, threads: 4 };
    let mut targets = vec![leader_addr.to_string()];
    let mut replicas = Vec::new();
    // Warm up caches and allocators so the leader-alone baseline isn't
    // penalized for going first.
    query_fanout(&targets, &QueryOptions { requests: opts.requests / 4, ..opts.clone() })
        .expect("warmup fan-out");
    for extra in 0..=2usize {
        if extra > 0 {
            let handle = serve(
                "127.0.0.1:0",
                server_cfg(
                    base.join(format!("replica-{extra}")),
                    1,
                    Some(leader_addr.to_string()),
                ),
            )
            .expect("start e15 replica");
            let mut rc = Client::connect(handle.addr()).expect("replica client");
            let deadline = Instant::now() + Duration::from_secs(60);
            while partition(&mut rc) != want {
                assert!(Instant::now() < deadline, "e15 replica never converged");
                std::thread::sleep(Duration::from_millis(25));
            }
            targets.push(handle.addr().to_string());
            replicas.push(handle);
        }
        let config = format!("leader+{extra}r");
        // Two load shapes: a fixed client pool (aggregate capacity at
        // constant offered load) and one reader per target (each
        // follower brings its own client population, the shape real
        // read fan-outs have).
        for (phase, threads) in
            [("fanout_fixed", opts.threads), ("fanout_scaled", targets.len())]
        {
            let report = query_fanout(
                &targets,
                &QueryOptions { threads, ..opts.clone() },
            )
            .expect("query fan-out");
            let mut rtt = storypivot_substrate::timing::Histogram::new();
            for t in &report.targets {
                rtt.merge(&t.latency);
            }
            println!(
                "  {phase} {config}: {}",
                report.summary().lines().next().unwrap_or("")
            );
            table.row([
                phase.into(), config.clone(), "qps".into(), format!("{:.1}", report.qps()),
            ]);
            table.row([
                phase.into(), config.clone(), "rtt_p50_us".into(),
                format!("{:.1}", rtt.percentile(0.50) as f64 / 1e3),
            ]);
            table.row([
                phase.into(), config.clone(), "rtt_p95_us".into(),
                format!("{:.1}", rtt.percentile(0.95) as f64 / 1e3),
            ]);
        }
    }
    for handle in replicas {
        let mut rc = Client::connect(handle.addr()).expect("replica shutdown client");
        rc.shutdown().expect("replica shutdown");
        handle.join();
    }
    lc.shutdown().expect("leader shutdown");
    leader.join();

    // ---- phase 2: snapshot staleness vs freshness policy -------------
    // Sum/max of a shard-labeled gauge in the merged exposition.
    let labeled = |text: &str, name: &str| -> Vec<u64> {
        let prefix = format!("{name}{{");
        text.lines()
            .filter(|l| l.starts_with(&prefix))
            .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
            .collect()
    };
    for every_ops in [1u64, 64] {
        let dir = base.join(format!("stale-{every_ops}"));
        let handle = serve("127.0.0.1:0", server_cfg(dir, every_ops, None))
            .expect("start e15 staleness leader");
        replay(
            handle.addr(),
            &corpus,
            &LoadOptions { connections: shards, ..LoadOptions::default() },
        )
        .expect("staleness preload");
        let mut client = Client::connect(handle.addr()).expect("staleness client");
        let text = client.metrics().expect("staleness metrics");
        let publishes: u64 = labeled(&text, "storypivot_shard_snapshot_epoch").iter().sum();
        let max_age: u64 = labeled(&text, "storypivot_shard_snapshot_age_ops")
            .into_iter()
            .max()
            .unwrap_or(0);
        let ops = (corpus.len() + corpus.sources.len()) as u64;
        let config = format!("every_ops={every_ops}");
        println!("  {config}: {publishes} publishes over {ops} ops, max staleness {max_age} ops");
        table.row(["staleness".into(), config.clone(), "ops".into(), ops.to_string()]);
        table.row([
            "staleness".into(), config.clone(), "snapshot_publishes".into(), publishes.to_string(),
        ]);
        table.row(["staleness".into(), config, "max_age_ops".into(), max_age.to_string()]);
        client.shutdown().expect("staleness shutdown");
        handle.join();
    }
    let _ = std::fs::remove_dir_all(&base);
    print!("{}", table.to_markdown());
    table
}

/// E16 — adversarial scenario engine: each builtin chaos script (flash
/// crowd, duplicate flood, source churn, retraction storm, dormant
/// resurgence) is replayed against a live sharded server under
/// backpressure and deadline shedding, and the served partition is
/// scored against the script's ground truth — F-measure *under load*,
/// not in a quiet in-process loop.
fn e16_chaos(scale: &Scale, seed: u64) -> Table {
    use storypivot_eval::metrics::{pairwise_counts, Clustering, PairCounts};
    use storypivot_serve::client::Client;
    use storypivot_serve::load::{replay_script, LoadOptions};
    use storypivot_serve::server::{serve, ServerConfig};
    use storypivot_gen::scenario;

    println!("\n## E16 — ground-truth F-measure under adversarial load\n");
    let mut table = Table::new([
        "scenario", "events", "removed", "segments", "busy", "shed", "events_per_s", "pair F1",
        "precision", "recall",
    ]);
    for name in scenario::BUILTIN {
        let script = scenario::by_name(name, scale.mid, seed ^ 0xE16)
            .expect("builtin scenario");
        let handle = serve(
            "127.0.0.1:0",
            ServerConfig {
                shards: 2,
                align_every: 0,
                deadline_ms: 250,
                ..ServerConfig::default()
            },
        )
        .expect("start e16 server");
        let report = replay_script(
            handle.addr(),
            &script,
            &LoadOptions { connections: 4, ..LoadOptions::default() },
        )
        .expect("replay scenario");

        let mut client = Client::connect(handle.addr()).expect("e16 client");
        let stories = client.query_stories().expect("e16 partition");
        // Micro-averaged per-source identification quality, mirroring
        // identification_scores but reading the partition off the wire:
        // story ids are partitioned by source, so grouping members under
        // their story's source reproduces the per-source restriction.
        let mut per_source: std::collections::BTreeMap<u32, (Clustering, Clustering)> =
            std::collections::BTreeMap::new();
        for story in &stories {
            for member in &story.members {
                let Some(label) = script.truth.label_of(*member) else { continue };
                let (pred, truth) = per_source.entry(story.source.raw()).or_default();
                pred.assign(member.raw() as u64, story.id.raw() as u64);
                truth.assign(member.raw() as u64, label as u64);
            }
        }
        let mut total = PairCounts::default();
        for (pred, truth) in per_source.values() {
            total.add(pairwise_counts(pred, truth));
        }
        let scores = total.scores();
        println!(
            "  {name}: {} events ({} retracted), {:.0} ev/s, F1 {:.3} \
             ({} busy / {} shed retries)",
            report.events,
            script.removed_docs(),
            report.throughput(),
            scores.f1,
            report.busy_retries,
            report.shed_retries,
        );
        table.row([
            name.to_string(),
            report.events.to_string(),
            script.removed_docs().to_string(),
            script.segments.len().to_string(),
            report.busy_retries.to_string(),
            report.shed_retries.to_string(),
            format!("{:.0}", report.throughput()),
            f3(scores.f1),
            f3(scores.precision),
            f3(scores.recall),
        ]);
        client.shutdown().expect("e16 shutdown");
        handle.join();
    }
    print!("{}", table.to_markdown());
    table
}

/// E17 — the similarity hot path before/after the kernel rework.
///
/// Three configurations over the identical seeded Zipf corpus, driving
/// the store and per-source identifiers directly so only the identify
/// inner loop sits inside the timer:
///
/// * **legacy scoring (before)** — the pre-rework loop preserved in
///   `storypivot_bench::legacy`: full-pass norms per cosine and a fresh
///   allocation per candidate. Timed per probe against the same
///   evolving story state (the state evolves via untimed real assigns).
/// * **flat kernels, cache off** — `Identifier::assign` with
///   `hot_cache_capacity = 0`: cached norms, batch kernels, scratch
///   accumulators.
/// * **flat kernels + hot cache** — the default configuration.
///
/// The run also asserts live that the cache-off and cache-on partitions
/// are byte-identical.
fn e17_hotpath(scale: &Scale, seed: u64) -> Table {
    use std::collections::HashMap;

    use storypivot_bench::legacy;
    use storypivot_core::identify::Identifier;
    use storypivot_store::EventStore;
    use storypivot_types::{SourceId, StoryId};

    println!("\n## E17 — similarity hot path: flat kernels + hot-story cache\n");
    const TRIALS: usize = 3;
    // Few sources for the same corpus → denser per-source windows,
    // which is exactly what stresses the quadratic fold the rework
    // removed (Zipf story popularity keeps the hot stories hot).
    let corpus = corpus_fixed_period(scale.mid, 2, seed ^ 53);
    let base = PivotConfig::temporal(OMEGA);

    struct Run {
        ns_per_event: f64,
        cache_hits: u64,
        cache_misses: u64,
        partition: Vec<(StoryId, Vec<SnippetId>)>,
    }

    // Drive one full pass over the corpus. Only the candidate-scoring
    // loop sits inside the timer in every configuration — the legacy
    // row times `legacy::score_probe`, the modern rows time
    // `Identifier::score_probe` — and the (identical) decision
    // bookkeeping evolves the story state untimed, so the rows compare
    // exactly the work the rework changed.
    let drive = |hot_cache_capacity: usize, legacy_timing: bool| -> Run {
        let mut cfg = base.clone();
        cfg.identify.hot_cache_capacity = hot_cache_capacity;
        let mut store = EventStore::new();
        let mut idents: HashMap<SourceId, Identifier> = HashMap::new();
        for src in &corpus.sources {
            store
                .register_source(
                    storypivot_types::Source::new(src.id, src.name.clone(), src.kind)
                        .with_lag(src.typical_lag),
                )
                .expect("register corpus source");
            idents.insert(src.id, Identifier::new(src.id, cfg.identify.clone(), cfg.sketch));
        }
        let mut timed = Duration::ZERO;
        let (mut hits, mut misses) = (0u64, 0u64);
        for s in &corpus.snippets {
            store.insert(s.clone()).expect("valid corpus snippet");
            let ident = idents.get_mut(&s.source).expect("registered source");
            if legacy_timing {
                let t = Instant::now();
                let (best, _compared) = legacy::score_probe(&cfg.identify, s, &store, ident);
                timed += t.elapsed();
                std::hint::black_box(best);
                ident.assign(s, &store); // untimed: evolve the shared state
            } else {
                let t = Instant::now();
                let (_, h, m) = ident.score_probe(s, &store);
                timed += t.elapsed();
                hits += h as u64;
                misses += m as u64;
                ident.assign(s, &store); // untimed: commit the decision
            }
            if ident.maintenance_due() {
                ident.maintain(&store); // untimed in every configuration
            }
        }
        let mut partition: Vec<(StoryId, Vec<SnippetId>)> = idents
            .values()
            .flat_map(|ident| {
                ident.story_ids().into_iter().map(move |sid| {
                    let mut members =
                        ident.story(sid).expect("listed story").story.members.clone();
                    members.sort_unstable();
                    (sid, members)
                })
            })
            .collect();
        partition.sort_unstable_by_key(|&(sid, _)| sid);
        Run {
            ns_per_event: timed.as_nanos() as f64 / corpus.len() as f64,
            cache_hits: hits,
            cache_misses: misses,
            partition,
        }
    };

    let default_capacity = base.identify.hot_cache_capacity;
    let configs: [(&str, usize, bool); 3] = [
        ("legacy scoring (before)", default_capacity, true),
        ("flat kernels, cache off", 0, false),
        ("flat kernels + hot cache", default_capacity, false),
    ];
    let mut best: [Option<Run>; 3] = [None, None, None];
    for _ in 0..TRIALS {
        for (slot, &(_, capacity, legacy_timing)) in configs.iter().enumerate() {
            let run = drive(capacity, legacy_timing);
            let better = best[slot]
                .as_ref()
                .is_none_or(|b| run.ns_per_event < b.ns_per_event);
            if better {
                best[slot] = Some(run);
            }
        }
    }
    let best = best.map(|r| r.expect("ran"));
    assert_eq!(
        best[1].partition, best[2].partition,
        "hot-story cache changed the identification partition"
    );
    println!("best of {TRIALS} trials per configuration\n");

    let mut table = Table::new([
        "config",
        "events",
        "ns/event",
        "speedup vs legacy",
        "cache hits",
        "cache misses",
        "hit rate",
    ]);
    let legacy_ns = best[0].ns_per_event;
    for (slot, &(name, _, legacy_timing)) in configs.iter().enumerate() {
        let r = &best[slot];
        let folds = r.cache_hits + r.cache_misses;
        let hit_rate = if folds == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", r.cache_hits as f64 / folds as f64 * 100.0)
        };
        table.row([
            name.to_string(),
            corpus.len().to_string(),
            format!("{:.0}", r.ns_per_event),
            if slot == 0 {
                "baseline".to_string()
            } else {
                format!("{:.2}x", legacy_ns / r.ns_per_event)
            },
            if legacy_timing { "-".into() } else { r.cache_hits.to_string() },
            if legacy_timing { "-".into() } else { r.cache_misses.to_string() },
            hit_rate,
        ]);
    }
    print!("{}", table.to_markdown());
    table
}
