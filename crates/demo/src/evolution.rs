//! The story-evolution walkthrough (paper §2.1).
//!
//! "It is possible for stories to split into multiple substories or to
//! merge into a bigger story. For example political and economic events
//! were interwoven during the height of the Ukraine crisis while they
//! started to separate after the situation had (temporarily)
//! stabilized." This module scripts exactly that dynamic against the
//! engine:
//!
//! 1. a **political** thread drifts through three phases (protests →
//!    escalation → armed conflict) — temporal identification chains the
//!    phases into *one* story even though the first and last phase share
//!    almost nothing;
//! 2. an **economic** thread (sanctions, markets) runs concurrently as a
//!    *separate* story despite sharing the Ukraine entity;
//! 3. a **bridge** snippet reporting both at once (sanctions over the
//!    shelling) *merges* the two stories — incremental merge evidence;
//! 4. removing the bridge and running maintenance *splits* them again.

use storypivot_core::config::{MatchMode, PivotConfig};
use storypivot_core::pivot::StoryPivot;
use storypivot_types::{
    EntityId, EventType, Snippet, SnippetId, SourceId, SourceKind, StoryId, TermId, Timestamp, DAY,
};

/// Entity catalog of the walkthrough.
pub mod entities {
    use storypivot_types::EntityId;
    /// Ukraine.
    pub const UKRAINE: EntityId = EntityId(0);
    /// Kyiv (the protest phase).
    pub const KYIV: EntityId = EntityId(1);
    /// Russia (the escalation/conflict phases).
    pub const RUSSIA: EntityId = EntityId(2);
    /// Donetsk (the conflict phase).
    pub const DONETSK: EntityId = EntityId(3);
    /// European Union (the economic thread).
    pub const EU: EntityId = EntityId(4);
    /// Markets/exchanges actor (the economic thread).
    pub const MARKETS: EntityId = EntityId(5);
}

/// Term vocabulary of the walkthrough.
pub mod terms {
    use storypivot_types::TermId;
    /// protest
    pub const PROTEST: TermId = TermId(0);
    /// square
    pub const SQUARE: TermId = TermId(1);
    /// demonstration
    pub const DEMONSTRATION: TermId = TermId(2);
    /// troops
    pub const TROOPS: TermId = TermId(3);
    /// escalation
    pub const ESCALATION: TermId = TermId(4);
    /// shelling
    pub const SHELLING: TermId = TermId(5);
    /// front
    pub const FRONT: TermId = TermId(6);
    /// sanctions
    pub const SANCTIONS: TermId = TermId(7);
    /// exports
    pub const EXPORTS: TermId = TermId(8);
    /// markets
    pub const MARKETS_T: TermId = TermId(9);
}

/// Display names for the walkthrough's ids (index = id).
pub fn entity_names() -> Vec<String> {
    ["Ukraine", "Kyiv", "Russia", "Donetsk", "European Union", "Markets"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Display names for the walkthrough's terms (index = id).
pub fn term_names() -> Vec<String> {
    [
        "protest", "square", "demonstration", "troops", "escalation", "shelling", "front",
        "sanctions", "exports", "markets",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The scripted engine plus the ids the walkthrough needs to refer to.
pub struct EvolutionDemo {
    /// The engine.
    pub pivot: StoryPivot,
    /// The single source used (evolution is an identification-phase
    /// phenomenon; one source keeps the walkthrough crisp).
    pub source: SourceId,
    /// Snippets of the political thread, in phase order.
    pub political: Vec<SnippetId>,
    /// Snippets of the economic thread.
    pub economic: Vec<SnippetId>,
    /// The bridge snippet (None until [`EvolutionDemo::add_bridge`]).
    pub bridge: Option<SnippetId>,
}

impl EvolutionDemo {
    /// Walkthrough configuration: a 10-day window (shorter than the
    /// political thread's 24-day span, so chaining is doing real work)
    /// and a merge threshold the bridge snippet can reach.
    pub fn config() -> PivotConfig {
        let mut cfg = PivotConfig::default();
        cfg.identify.mode = MatchMode::Temporal { omega: 10 * DAY };
        cfg.identify.match_threshold = 0.35;
        cfg.identify.merge_threshold = 0.50;
        cfg.identify.split_threshold = 0.30;
        cfg.identify.maintenance_every = 0; // maintenance runs on demand
        cfg
    }

    fn snippet(
        pivot: &mut StoryPivot,
        source: SourceId,
        day: i64,
        es: &[EntityId],
        ts: &[TermId],
        ty: EventType,
        headline: &str,
    ) -> Snippet {
        let id = pivot.fresh_snippet_id();
        let mut b = Snippet::builder(id, source, Timestamp::from_secs(day * DAY))
            .doc(pivot.fresh_doc_id())
            .event_type(ty)
            .headline(headline);
        for &e in es {
            b = b.entity(e, 1.0);
        }
        for &t in ts {
            b = b.term(t, 1.0);
        }
        b.build()
    }

    /// Build the two threads (no bridge yet).
    pub fn new() -> Self {
        use entities::*;
        use terms::*;
        let mut pivot = StoryPivot::new(Self::config());
        let source = pivot.add_source("The Kyiv Dispatch", SourceKind::Newspaper);

        // Political thread: three drifting phases. Adjacent phases share
        // an entity and a term; phase 1 and phase 3 share almost nothing.
        let phases: [(&[_], &[_], EventType, &str, &[i64]); 3] = [
            (
                &[UKRAINE, KYIV][..],
                &[PROTEST, SQUARE, DEMONSTRATION][..],
                EventType::Protest,
                "Protests fill the square",
                &[0, 2, 4, 6][..],
            ),
            (
                &[UKRAINE, KYIV, RUSSIA][..],
                &[PROTEST, TROOPS, ESCALATION][..],
                EventType::Conflict,
                "Escalation as troops respond",
                &[9, 11, 13][..],
            ),
            (
                &[UKRAINE, RUSSIA, DONETSK][..],
                &[TROOPS, SHELLING, FRONT][..],
                EventType::Conflict,
                "Shelling along the front",
                &[16, 19, 22, 24][..],
            ),
        ];
        let mut political = Vec::new();
        for (es, ts, ty, headline, days) in phases {
            for &day in days {
                let s = Self::snippet(&mut pivot, source, day, es, ts, ty, headline);
                political.push(s.id);
                pivot.ingest(s).unwrap();
            }
        }

        // Economic thread, concurrent with phases 2-3; shares only the
        // Ukraine entity with the political thread.
        let mut economic = Vec::new();
        for &day in &[10i64, 13, 17, 21] {
            let s = Self::snippet(
                &mut pivot,
                source,
                day,
                &[UKRAINE, EU, MARKETS],
                &[SANCTIONS, EXPORTS, MARKETS_T],
                EventType::Economy,
                "Sanctions weigh on exports",
            );
            economic.push(s.id);
            pivot.ingest(s).unwrap();
        }

        EvolutionDemo {
            pivot,
            source,
            political,
            economic,
            bridge: None,
        }
    }

    /// The story currently containing the political thread's first
    /// snippet.
    pub fn political_story(&self) -> Option<StoryId> {
        self.pivot.story_of(self.political[0])
    }

    /// The story currently containing the economic thread's first
    /// snippet.
    pub fn economic_story(&self) -> Option<StoryId> {
        self.pivot.story_of(self.economic[0])
    }

    /// Ingest the interweaving bridge snippet (day 18: sanctions imposed
    /// *over the shelling*). Returns whether a merge happened.
    pub fn add_bridge(&mut self) -> bool {
        use entities::*;
        use terms::*;
        let s = Self::snippet(
            &mut self.pivot,
            self.source,
            18,
            &[UKRAINE, RUSSIA, DONETSK, EU, MARKETS],
            &[TROOPS, SHELLING, FRONT, SANCTIONS, EXPORTS, MARKETS_T],
            EventType::Diplomacy,
            "New sanctions over the shelling; markets slide",
        );
        let id = s.id;
        let decision = self.pivot.ingest_detailed(s).unwrap();
        self.bridge = Some(id);
        !decision.merged.is_empty()
    }

    /// Remove the bridge and run maintenance; returns whether a split
    /// happened.
    pub fn remove_bridge_and_split(&mut self) -> bool {
        let Some(bridge) = self.bridge.take() else {
            return false;
        };
        self.pivot.remove_snippet(bridge).unwrap();
        let report = self.pivot.run_maintenance();
        !report.is_empty()
    }
}

impl Default for EvolutionDemo {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_core::sim::SimWeights;

    #[test]
    fn drifting_phases_chain_into_one_story() {
        let demo = EvolutionDemo::new();
        let story = demo.political_story().unwrap();
        for &s in &demo.political {
            assert_eq!(
                demo.pivot.story_of(s),
                Some(story),
                "all political phases belong to one story"
            );
        }
        // Yet the first and last phases are *not* directly similar — the
        // chain is doing the work (the paper's story-evolution argument).
        let w = SimWeights::default();
        let first = demo.pivot.store().get(demo.political[0]).unwrap();
        let last = demo.pivot.store().get(*demo.political.last().unwrap()).unwrap();
        let sim = w.snippet_sim(first, last);
        assert!(
            sim < demo.pivot.config().identify.match_threshold,
            "phase 1 vs phase 3 sim {sim} should be below the match threshold"
        );
    }

    #[test]
    fn economic_thread_stays_separate() {
        let demo = EvolutionDemo::new();
        assert_ne!(demo.political_story(), demo.economic_story());
        let econ = demo.economic_story().unwrap();
        for &s in &demo.economic {
            assert_eq!(demo.pivot.story_of(s), Some(econ));
        }
        assert_eq!(demo.pivot.story_count(), 2);
    }

    #[test]
    fn bridge_merges_and_removal_splits() {
        let mut demo = EvolutionDemo::new();
        assert_eq!(demo.pivot.story_count(), 2);

        // Interweaving: the bridge merges politics and economics.
        assert!(demo.add_bridge(), "bridge must trigger a merge");
        assert_eq!(demo.pivot.story_count(), 1);
        assert_eq!(demo.political_story(), demo.economic_story());

        // Stabilization: removing the bridge splits them again.
        assert!(demo.remove_bridge_and_split(), "removal must trigger a split");
        assert_eq!(demo.pivot.story_count(), 2);
        assert_ne!(demo.political_story(), demo.economic_story());
        // Thread membership is intact after the round trip.
        let pol = demo.political_story().unwrap();
        for &s in &demo.political {
            assert_eq!(demo.pivot.story_of(s), Some(pol));
        }
        let econ = demo.economic_story().unwrap();
        for &s in &demo.economic {
            assert_eq!(demo.pivot.story_of(s), Some(econ));
        }
        demo.pivot.check_invariants().unwrap();
    }
}
