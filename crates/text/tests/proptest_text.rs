//! Property tests for the text substrate.

use storypivot_substrate::prop;
use storypivot_substrate::rng::StdRng;
use storypivot_text::{porter_stem, tokenize, AhoCorasickBuilder, GazetteerBuilder, Match};
use storypivot_types::EntityId;

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";

// ---- tokenizer -------------------------------------------------------

#[test]
fn tokenizer_never_panics_and_spans_are_valid() {
    prop::run(256, |rng| {
        let text = prop::unicode_string(rng, 0, 200);
        let tokens = tokenize(&text);
        for t in &tokens {
            assert!(t.start < t.end);
            assert!(t.end <= text.len());
            // Spans are on char boundaries (surface() must not panic).
            let _ = t.surface(&text);
            assert!(!t.norm.is_empty());
        }
        // Tokens are ordered and non-overlapping.
        for w in tokens.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    });
}

#[test]
fn tokenization_is_deterministic() {
    prop::run(256, |rng| {
        let text = prop::unicode_string(rng, 0, 100);
        assert_eq!(tokenize(&text), tokenize(&text));
    });
}

#[test]
fn norms_are_lowercase() {
    prop::run(256, |rng| {
        let text = prop::string_from(
            rng,
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ' .,-",
            0,
            80,
        );
        for t in tokenize(&text) {
            assert_eq!(t.norm.to_lowercase(), t.norm.clone(), "norm {:?}", t.norm);
        }
    });
}

// ---- stemmer -----------------------------------------------------------

#[test]
fn stemmer_never_panics_or_grows_much() {
    prop::run(256, |rng| {
        let word = prop::string_from(rng, LOWER, 0, 20);
        let stem = porter_stem(&word);
        // Porter only ever appends an 'e' after removals; it never grows
        // the word by more than one character.
        assert!(stem.len() <= word.len() + 1, "{word} -> {stem}");
        assert!(stem.chars().all(|c| c.is_ascii_lowercase()) || stem.is_empty());
    });
}

// NOTE: the Porter algorithm is *not* idempotent in general (e.g.
// "uase" → "uas" → "ua": dropping a final 'e' can expose a plural
// 's'), so we assert determinism and monotone shrinking under
// re-stemming instead.
#[test]
fn restemming_is_deterministic_and_never_grows() {
    prop::run(256, |rng| {
        let word = prop::string_from(rng, LOWER, 3, 15);
        let once = porter_stem(&word);
        assert_eq!(porter_stem(&word), once.clone());
        let twice = porter_stem(&once);
        assert!(twice.len() <= once.len(), "{word} -> {once} -> {twice}");
    });
}

// ---- aho-corasick vs naive oracle --------------------------------------

fn naive_find_all(patterns: &[String], haystack: &[u8]) -> Vec<Match> {
    let mut out = Vec::new();
    for (pi, p) in patterns.iter().enumerate() {
        let pb = p.as_bytes();
        if pb.is_empty() || pb.len() > haystack.len() {
            continue;
        }
        for start in 0..=haystack.len() - pb.len() {
            if &haystack[start..start + pb.len()] == pb {
                out.push(Match {
                    pattern: pi,
                    start,
                    end: start + pb.len(),
                });
            }
        }
    }
    out.sort_by_key(|m| (m.start, m.end, m.pattern));
    out
}

fn arb_patterns(rng: &mut StdRng) -> Vec<String> {
    prop::vec_with(rng, 1, 7, |r| prop::string_from(r, "ab", 1, 4))
}

#[test]
fn aho_corasick_matches_naive_search() {
    prop::run(128, |rng| {
        let patterns = arb_patterns(rng);
        let haystack = prop::string_from(rng, "abc", 0, 60);
        let mut builder = AhoCorasickBuilder::new();
        builder.add_patterns(patterns.iter());
        let ac = builder.build();
        let mut got = ac.find_all(haystack.as_bytes());
        got.sort_by_key(|m| (m.start, m.end, m.pattern));
        assert_eq!(got, naive_find_all(&patterns, haystack.as_bytes()));
    });
}

#[test]
fn leftmost_longest_is_non_overlapping_and_maximal() {
    prop::run(128, |rng| {
        let patterns = arb_patterns(rng);
        let haystack = prop::string_from(rng, "ab", 0, 50);
        let mut builder = AhoCorasickBuilder::new();
        builder.add_patterns(patterns.iter());
        let ac = builder.build();
        let selected = ac.find_leftmost_longest(haystack.as_bytes());
        for w in selected.windows(2) {
            assert!(w[0].end <= w[1].start, "overlap: {:?}", w);
        }
    });
}

// ---- gazetteer ------------------------------------------------------------

#[test]
fn gazetteer_hits_are_registered_entities_with_valid_spans() {
    prop::run(64, |rng| {
        let names: Vec<String> = prop::set_with(rng, 1, 9, |r| prop::string_from(r, LOWER, 3, 8))
            .into_iter()
            .collect();
        let text = prop::string_from(rng, "abcdefghijklmnopqrstuvwxyz ", 0, 120);
        let mut b = GazetteerBuilder::new();
        for (i, n) in names.iter().enumerate() {
            b.add_entity(EntityId::new(i as u32), n, &[]);
        }
        let g = b.build();
        let tokens = tokenize(&text);
        for hit in g.recognize(&tokens) {
            assert!(hit.token_start < hit.token_end);
            assert!(hit.token_end <= tokens.len());
            assert!((hit.entity.index()) < names.len());
            // The covered token must equal the entity's (single-token) name.
            let covered = &tokens[hit.token_start].norm;
            assert_eq!(covered, &names[hit.entity.index()]);
        }
    });
}

#[test]
fn every_exact_mention_is_found() {
    prop::run(128, |rng| {
        let name = prop::string_from(rng, LOWER, 4, 8);
        let prefix = prop::string_from(rng, LOWER, 0, 6);
        let suffix = prop::string_from(rng, LOWER, 0, 6);
        let mut b = GazetteerBuilder::new();
        b.add_entity(EntityId::new(0), &name, &[]);
        let g = b.build();
        let text = format!("{prefix} {name} {suffix} {name}");
        let hits = g.recognize(&tokenize(&text));
        // The name appears exactly twice as a standalone token — unless
        // prefix/suffix happen to equal it, in which case more.
        let expected = 2 + usize::from(prefix == name) + usize::from(suffix == name);
        assert_eq!(hits.len(), expected);
    });
}
