//! Source onboarding (paper §2.1): "as new sources become available, we
//! first identify the stories associated with them and then align them
//! with existing stories" — incrementally, without recomputing the
//! world.
//!
//! ```text
//! cargo run --release --example source_onboarding
//! ```

use std::time::Instant;

use storypivot::core::config::PivotConfig;
use storypivot::eval::run::alignment_scores;
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::prelude::*;
use storypivot::types::DAY;

fn main() {
    let corpus = CorpusBuilder::new(
        GenConfig::default()
            .with_sources(12)
            .with_target_snippets(3_000),
    )
    .build();

    let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for src in &corpus.sources {
        pivot.add_source_with_lag(src.name.clone(), src.kind, src.typical_lag);
    }

    // Phase 1: the world runs with ten sources.
    for s in &corpus.snippets {
        if s.source.raw() < 10 {
            pivot.ingest(s.clone()).unwrap();
        }
    }
    let t = Instant::now();
    pivot.align();
    println!(
        "initial alignment over 10 sources: {} global stories in {:.1}ms ({} pairs scored)",
        pivot.global_stories().len(),
        t.elapsed().as_secs_f64() * 1e3,
        pivot.alignment().unwrap().pairs_scored,
    );

    // Phase 2: two new sources appear.
    let mut onboarded = 0usize;
    for s in &corpus.snippets {
        if s.source.raw() >= 10 {
            pivot.ingest(s.clone()).unwrap();
            onboarded += 1;
        }
    }
    println!("\nonboarding 2 new sources ({onboarded} snippets identified)…");

    let mut full = pivot.clone();
    let t = Instant::now();
    pivot.align_incremental();
    let inc_ms = t.elapsed().as_secs_f64() * 1e3;
    let inc_pairs = pivot.alignment().unwrap().pairs_scored;

    let t = Instant::now();
    full.align();
    let full_ms = t.elapsed().as_secs_f64() * 1e3;
    let full_pairs = full.alignment().unwrap().pairs_scored;

    println!("incremental re-alignment: {inc_ms:.1}ms, {inc_pairs} pairs scored");
    println!("full re-alignment:        {full_ms:.1}ms, {full_pairs} pairs scored");
    println!(
        "quality (pairwise F1 vs ground truth): incremental {:.3}, full {:.3}",
        alignment_scores(&pivot, &corpus).f1,
        alignment_scores(&full, &corpus).f1,
    );
    assert!(
        inc_pairs < full_pairs,
        "incremental onboarding must score fewer pairs"
    );
    println!("\nincremental onboarding scored {:.0}% of the pairs of a full pass", 100.0 * inc_pairs as f64 / full_pairs as f64);
}
