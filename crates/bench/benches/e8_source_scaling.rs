//! E8 — alignment cost as the number of sources grows (Fig 7 inset
//! lists 50 sources).

use storypivot_bench::{corpus_fixed_period, ingest_all, OMEGA};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;

fn main() {
    let mut group = BenchGroup::from_env("e8_source_scaling");
    for sources in [4u32, 10, 25] {
        let corpus = corpus_fixed_period(60 * sources as usize, sources, 31);
        let pivot = ingest_all(&corpus, PivotConfig::temporal(OMEGA));
        group.bench(&sources.to_string(), || {
            let mut p = pivot.clone();
            p.align();
            p.global_stories().len()
        });
    }
    group.finish();
}
