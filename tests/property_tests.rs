//! Property-based tests over the core data structures and invariants.

use storypivot::sketch::{HashFamily, MinHash};
use storypivot::store::codec::{decode_snippet, decode_store, encode_snippet, encode_store};
use storypivot::store::{EventStore, WindowIndex};
use storypivot::substrate::prop;
use storypivot::substrate::rng::{RngExt, StdRng};
use storypivot::types::sparse::SparseVec;
use storypivot::types::{
    EntityId, EventType, Snippet, SnippetId, Source, SourceId, SourceKind, TermId, TimeRange,
    Timestamp,
};

// ---- generators ------------------------------------------------------

fn arb_timestamp(rng: &mut StdRng) -> Timestamp {
    // A generous but non-degenerate range (years ~1900..2100).
    Timestamp::from_secs(rng.random_range(-2_208_988_800i64..4_102_444_800))
}

fn arb_snippet(rng: &mut StdRng, max_id: u32) -> Snippet {
    let id = rng.random_range(0..max_id);
    let source = rng.random_range(0..4u32);
    let doc = rng.random_range(0..1000u32);
    let t = arb_timestamp(rng);
    let ents = prop::vec_with(rng, 0, 7, |r| {
        (r.random_range(0..500u32), r.random_range(0.01f32..10.0))
    });
    let terms = prop::vec_with(rng, 0, 11, |r| {
        (r.random_range(0..2000u32), r.random_range(0.01f32..10.0))
    });
    let ty = rng.random_range(0..EventType::COUNT as u8);
    let headline = prop::ascii_string(rng, 0, 40);

    let mut b = Snippet::builder(SnippetId::new(id), SourceId::new(source), t)
        .doc(storypivot::types::DocId::new(doc))
        .event_type(EventType::from_code(ty).unwrap())
        .headline(headline);
    for (e, w) in ents {
        b = b.entity(EntityId::new(e), w);
    }
    for (t, w) in terms {
        b = b.term(TermId::new(t), w);
    }
    b.build()
}

// ---- codec ------------------------------------------------------------

#[test]
fn snippet_codec_round_trips() {
    prop::run(256, |rng| {
        let snippet = arb_snippet(rng, 10_000);
        let mut buf = Vec::new();
        encode_snippet(&mut buf, &snippet);
        let decoded = decode_snippet(&mut &buf[..]).unwrap();
        assert_eq!(decoded, snippet);
    });
}

#[test]
fn store_codec_round_trips() {
    prop::run(128, |rng| {
        let snippets = prop::vec_with(rng, 0, 39, |r| arb_snippet(r, 100_000));
        let mut store = EventStore::new();
        for i in 0..4u32 {
            store
                .register_source(Source::new(SourceId::new(i), format!("s{i}"), SourceKind::Blog))
                .unwrap();
        }
        let mut inserted = 0;
        for s in snippets {
            if store.insert(s).is_ok() {
                inserted += 1;
            }
        }
        let decoded = decode_store(&encode_store(&store)).unwrap();
        assert_eq!(decoded.len(), inserted);
        assert_eq!(decoded.stats(), store.stats());
        for s in store.iter() {
            assert_eq!(decoded.get(s.id), Some(s));
        }
    });
}

#[test]
fn codec_never_panics_on_corrupt_input() {
    prop::run(256, |rng| {
        let bytes = prop::vec_with(rng, 0, 255, |r| r.random::<u8>());
        // Any byte soup must produce Ok or Err — never a panic.
        let _ = decode_store(&bytes);
        let _ = decode_snippet(&mut &bytes[..]);
    });
}

// ---- window index vs naive scan ------------------------------------------

#[test]
fn window_query_equals_naive_filter() {
    prop::run(256, |rng| {
        let entries = prop::vec_with(rng, 0, 59, |r| {
            (r.random_range(-1000i64..1000), r.random_range(0..100u32))
        });
        let lo = rng.random_range(-1200i64..1200);
        let width = rng.random_range(0i64..500);

        let mut idx = WindowIndex::new();
        let mut naive: Vec<(i64, u32)> = Vec::new();
        for (t, id) in entries {
            idx.insert(Timestamp::from_secs(t), SnippetId::new(id), 0);
            if !naive.contains(&(t, id)) {
                naive.push((t, id));
            }
        }
        let range = TimeRange::new(Timestamp::from_secs(lo), Timestamp::from_secs(lo + width));
        let got: Vec<(i64, u32)> = idx
            .query(range)
            .map(|(t, id)| (t.secs(), id.raw()))
            .collect();
        let mut expected: Vec<(i64, u32)> = naive
            .into_iter()
            .filter(|&(t, _)| lo <= t && t <= lo + width)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

// ---- minhash vs exact jaccard ------------------------------------------

#[test]
fn minhash_estimate_tracks_exact_jaccard() {
    prop::run(64, |rng| {
        let a = prop::set_with(rng, 1, 79, |r| r.random_range(0u64..400));
        let b = prop::set_with(rng, 1, 79, |r| r.random_range(0u64..400));
        let family = HashFamily::new(99, 256);
        let ma = MinHash::from_items(&family, a.iter().copied());
        let mb = MinHash::from_items(&family, b.iter().copied());
        let est = ma.estimate_jaccard(&mb);
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        let exact = inter / union;
        // k = 256 → σ ≈ 0.031; 6σ tolerance keeps flakes out.
        assert!((est - exact).abs() < 0.20, "est {est} exact {exact}");
    });
}

#[test]
fn minhash_merge_is_union() {
    prop::run(128, |rng| {
        let a = prop::set_with(rng, 0, 39, |r| r.random_range(0u64..300));
        let b = prop::set_with(rng, 0, 39, |r| r.random_range(0u64..300));
        let family = HashFamily::new(7, 64);
        let mut ma = MinHash::from_items(&family, a.iter().copied());
        let mb = MinHash::from_items(&family, b.iter().copied());
        ma.merge(&mb);
        let union = MinHash::from_items(&family, a.union(&b).copied());
        assert_eq!(ma, union);
    });
}

// ---- sparse vector algebra -------------------------------------------------

#[test]
fn sparse_similarities_are_bounded_and_symmetric() {
    prop::run(256, |rng| {
        let a = prop::vec_with(rng, 0, 19, |r| {
            (r.random_range(0u32..60), r.random_range(0.01f32..5.0))
        });
        let b = prop::vec_with(rng, 0, 19, |r| {
            (r.random_range(0u32..60), r.random_range(0.01f32..5.0))
        });
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        for (x, y) in [
            (va.cosine(&vb), vb.cosine(&va)),
            (va.jaccard(&vb), vb.jaccard(&va)),
            (va.weighted_jaccard(&vb), vb.weighted_jaccard(&va)),
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&x), "similarity out of range: {x}");
            assert!((x - y).abs() < 1e-9, "asymmetric: {x} vs {y}");
        }
    });
}

#[test]
fn sparse_merge_sub_inverts_merge_add() {
    prop::run(256, |rng| {
        let a = prop::vec_with(rng, 0, 14, |r| {
            (r.random_range(0u32..40), r.random_range(0.5f32..5.0))
        });
        let b = prop::vec_with(rng, 0, 14, |r| {
            (r.random_range(0u32..40), r.random_range(0.5f32..5.0))
        });
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        let mut merged = va.clone();
        merged.merge_add(&vb);
        merged.merge_sub(&vb);
        // Compare entry-by-entry with float slack.
        assert_eq!(merged.len(), va.len());
        for (k, w) in va.iter() {
            let got = merged.get(&k).unwrap_or(0.0);
            assert!((got - w).abs() < 1e-3, "key {k:?}: {got} vs {w}");
        }
    });
}

// ---- store insert/remove inverses ---------------------------------------------

#[test]
fn store_insert_remove_is_identity() {
    prop::run(64, |rng| {
        let snippets = prop::vec_with(rng, 1, 29, |r| arb_snippet(r, 1_000));
        let mut store = EventStore::new();
        for i in 0..4u32 {
            store
                .register_source(Source::new(SourceId::new(i), format!("s{i}"), SourceKind::Wire))
                .unwrap();
        }
        let mut ok: Vec<SnippetId> = Vec::new();
        for s in &snippets {
            if store.insert(s.clone()).is_ok() {
                ok.push(s.id);
            }
        }
        for id in &ok {
            store.remove(*id).unwrap();
        }
        assert!(store.is_empty());
        let stats = store.stats();
        assert_eq!(stats.entity_count, 0);
        assert_eq!(stats.document_count, 0);
        assert!(stats.coverage.is_empty());
    });
}

// ---- identification invariants -------------------------------------------------

#[test]
fn identification_always_yields_a_valid_partition() {
    use storypivot::core::config::PivotConfig;
    use storypivot::prelude::StoryPivot;

    prop::run(24, |rng| {
        let snippets = prop::vec_with(rng, 1, 59, |r| arb_snippet(r, 5_000));
        let mut pivot = StoryPivot::new(PivotConfig::default());
        for _ in 0..4u32 {
            pivot.add_source("s", SourceKind::Blog);
        }
        let mut inserted: Vec<SnippetId> = Vec::new();
        for s in snippets {
            if pivot.ingest(s.clone()).is_ok() {
                inserted.push(s.id);
            }
        }
        // Every ingested snippet has exactly one story; every story
        // member is a live snippet of the story's source.
        for &id in &inserted {
            assert!(pivot.story_of(id).is_some(), "{id} unassigned");
        }
        let mut seen = std::collections::HashSet::new();
        for src in 0..4u32 {
            for st in pivot.stories_of_source(SourceId::new(src)) {
                assert!(!st.is_empty(), "empty story {} survived", st.id());
                assert!(!st.lifespan().is_empty());
                for &m in &st.story.members {
                    assert!(seen.insert(m), "{m} in two stories");
                    let sn = pivot.store().get(m).unwrap();
                    assert_eq!(sn.source, st.source());
                    assert!(st.lifespan().contains(sn.timestamp));
                }
            }
        }
        assert_eq!(seen.len(), inserted.len());

        // Alignment covers everything exactly once.
        pivot.align();
        let covered: usize = pivot.global_stories().iter().map(|g| g.len()).sum();
        assert_eq!(covered, inserted.len());
    });
}

// ---- metrics properties ---------------------------------------------------------

#[test]
fn metrics_are_bounded_and_perfect_on_self() {
    use storypivot::eval::{adjusted_rand_index, bcubed, nmi, pairwise, Clustering};

    prop::run(128, |rng| {
        let pairs = prop::vec_with(rng, 1, 79, |r| {
            (r.random_range(0u64..50), r.random_range(0u64..8))
        });
        let c = Clustering::from_pairs(pairs.iter().copied());
        let relabeled = Clustering::from_pairs(c.iter().map(|(i, cl)| (i, cl + 1000)));

        let s = pairwise(&relabeled, &c);
        assert!((s.f1 - 1.0).abs() < 1e-12);
        let b = bcubed(&relabeled, &c);
        assert!((b.f1 - 1.0).abs() < 1e-12);
        assert!((nmi(&relabeled, &c) - 1.0).abs() < 1e-9);
        assert!(adjusted_rand_index(&relabeled, &c) > 1.0 - 1e-9);

        // Against an arbitrary second clustering: bounded.
        let other = Clustering::from_pairs(pairs.iter().map(|&(i, cl)| (i, cl % 3)));
        let s = pairwise(&other, &c);
        assert!((0.0..=1.0).contains(&s.precision));
        assert!((0.0..=1.0).contains(&s.recall));
        assert!((0.0..=1.0).contains(&s.f1));
        assert!((0.0..=1.0).contains(&nmi(&other, &c)));
        let ari = adjusted_rand_index(&other, &c);
        assert!((-1.0..=1.0).contains(&ari));
    });
}
