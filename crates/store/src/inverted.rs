//! Generic inverted index with overlap-counted candidate retrieval.
//!
//! Candidate generation — "which snippets/stories share an entity with
//! this one?" — is the first stage of both identification and alignment.
//! The index maps a key (entity, term) to the sorted set of postings and
//! can rank candidates by how many query keys they share.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

/// An inverted index from keys `K` to posting ids `P`.
#[derive(Debug, Clone)]
pub struct InvertedIndex<K, P> {
    postings: HashMap<K, BTreeSet<P>>,
}

impl<K, P> Default for InvertedIndex<K, P> {
    fn default() -> Self {
        InvertedIndex {
            postings: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Copy, P: Ord + Copy + Eq + Hash> InvertedIndex<K, P> {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.postings.len()
    }

    /// Add `posting` under `key`.
    pub fn insert(&mut self, key: K, posting: P) {
        self.postings.entry(key).or_default().insert(posting);
    }

    /// Add `posting` under every key in `keys`.
    pub fn insert_all<I: IntoIterator<Item = K>>(&mut self, keys: I, posting: P) {
        for k in keys {
            self.insert(k, posting);
        }
    }

    /// Remove `posting` from `key`; prunes empty posting lists.
    pub fn remove(&mut self, key: K, posting: P) -> bool {
        if let Some(set) = self.postings.get_mut(&key) {
            let removed = set.remove(&posting);
            if set.is_empty() {
                self.postings.remove(&key);
            }
            removed
        } else {
            false
        }
    }

    /// Remove `posting` from every key in `keys`.
    pub fn remove_all<I: IntoIterator<Item = K>>(&mut self, keys: I, posting: P) {
        for k in keys {
            self.remove(k, posting);
        }
    }

    /// The posting list for `key` (empty iterator when absent).
    pub fn postings(&self, key: K) -> impl Iterator<Item = P> + '_ {
        self.postings.get(&key).into_iter().flatten().copied()
    }

    /// Document frequency of `key`.
    pub fn posting_count(&self, key: K) -> usize {
        self.postings.get(&key).map_or(0, BTreeSet::len)
    }

    /// All postings sharing at least one query key, with the number of
    /// shared keys, sorted by descending overlap (ties by posting id).
    pub fn candidates<I: IntoIterator<Item = K>>(&self, keys: I) -> Vec<(P, usize)> {
        let mut counts: HashMap<P, usize> = HashMap::new();
        for k in keys {
            for p in self.postings(k) {
                *counts.entry(p).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(P, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Like [`Self::candidates`] but keeps only postings sharing at least
    /// `min_overlap` keys.
    pub fn candidates_with_min<I: IntoIterator<Item = K>>(
        &self,
        keys: I,
        min_overlap: usize,
    ) -> Vec<(P, usize)> {
        let mut v = self.candidates(keys);
        v.retain(|&(_, c)| c >= min_overlap);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, SnippetId};

    fn e(i: u32) -> EntityId {
        EntityId::new(i)
    }
    fn v(i: u32) -> SnippetId {
        SnippetId::new(i)
    }

    #[test]
    fn insert_and_query() {
        let mut idx = InvertedIndex::new();
        idx.insert(e(1), v(10));
        idx.insert(e(1), v(11));
        idx.insert(e(2), v(10));
        assert_eq!(idx.postings(e(1)).collect::<Vec<_>>(), vec![v(10), v(11)]);
        assert_eq!(idx.posting_count(e(2)), 1);
        assert_eq!(idx.posting_count(e(9)), 0);
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn candidates_ranked_by_overlap() {
        let mut idx = InvertedIndex::new();
        // snippet 1 shares entities {1,2}; snippet 2 shares {1}; snippet 3 none.
        idx.insert_all([e(1), e(2)], v(1));
        idx.insert(e(1), v(2));
        idx.insert(e(9), v(3));
        let cands = idx.candidates([e(1), e(2), e(3)]);
        assert_eq!(cands, vec![(v(1), 2), (v(2), 1)]);
    }

    #[test]
    fn candidates_with_min_filters() {
        let mut idx = InvertedIndex::new();
        idx.insert_all([e(1), e(2)], v(1));
        idx.insert(e(1), v(2));
        let cands = idx.candidates_with_min([e(1), e(2)], 2);
        assert_eq!(cands, vec![(v(1), 2)]);
    }

    #[test]
    fn remove_prunes_empty_lists() {
        let mut idx = InvertedIndex::new();
        idx.insert(e(1), v(1));
        assert!(idx.remove(e(1), v(1)));
        assert!(!idx.remove(e(1), v(1)));
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn remove_all_mirrors_insert_all() {
        let mut idx = InvertedIndex::new();
        idx.insert_all([e(1), e(2), e(3)], v(7));
        idx.remove_all([e(1), e(2), e(3)], v(7));
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut idx = InvertedIndex::new();
        idx.insert(e(1), v(1));
        idx.insert(e(1), v(1));
        assert_eq!(idx.posting_count(e(1)), 1);
    }

    #[test]
    fn empty_query_yields_nothing() {
        let mut idx: InvertedIndex<EntityId, SnippetId> = InvertedIndex::new();
        idx.insert(e(1), v(1));
        assert!(idx.candidates(std::iter::empty()).is_empty());
    }

    #[test]
    fn candidate_ties_break_by_id() {
        let mut idx = InvertedIndex::new();
        idx.insert(e(1), v(5));
        idx.insert(e(1), v(2));
        let cands = idx.candidates([e(1)]);
        assert_eq!(cands, vec![(v(2), 1), (v(5), 1)]);
    }
}
