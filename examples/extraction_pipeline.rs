//! The full extraction path (paper §2.1, Figure 1a): generated snippets
//! are rendered back into article *text*, a gazetteer is built from the
//! corpus catalog, and the extraction pipeline re-annotates the raw text
//! — demonstrating that story detection works end to end from documents,
//! not just from pre-annotated tuples.
//!
//! ```text
//! cargo run --release --example extraction_pipeline
//! ```

use storypivot::core::config::PivotConfig;
use storypivot::extract::{Annotator, Document, ExtractionPipeline, PipelineConfig};
use storypivot::gen::{render_document, CorpusBuilder, GenConfig};
use storypivot::prelude::*;
use storypivot::text::GazetteerBuilder;
use storypivot::types::DAY;

fn main() {
    // A small generated world.
    let corpus = CorpusBuilder::new(
        GenConfig::default()
            .with_sources(4)
            .with_target_snippets(600),
    )
    .build();

    // Build the gazetteer from the corpus' entity catalog — the
    // OpenCalais stand-in's dictionary.
    let mut gz = GazetteerBuilder::new();
    for (i, name) in corpus.entity_names.iter().enumerate() {
        gz.add_entity(EntityId::new(i as u32), name, &[]);
    }
    let mut pipeline = ExtractionPipeline::new(Annotator::new(gz.build()), PipelineConfig::default());

    // Render each generated snippet as an article, re-extract it, and
    // feed the extraction into a pivot.
    let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for src in &corpus.sources {
        pivot.add_source_with_lag(src.name.clone(), src.kind, src.typical_lag);
    }

    let mut recovered_entities = 0usize;
    let mut expected_entities = 0usize;
    let mut shown = 0;
    for s in &corpus.snippets {
        let (title, body) = render_document(s, &corpus.entity_names, &corpus.term_names);
        let doc = Document::new(s.doc, s.source, format!("gen://doc/{}", s.doc.raw()), title, body, s.timestamp);
        let extracted = pipeline.extract(&doc).expect("unique doc ids");
        for snippet in extracted {
            // How much of the original annotation did the pipeline recover?
            expected_entities += s.entities().len();
            recovered_entities += s
                .entities()
                .keys()
                .filter(|e| snippet.entities().contains(e))
                .count();
            if shown < 3 {
                println!("--- {}", doc.title);
                println!(
                    "    original entities:  {:?}",
                    s.entities().keys().map(|e| corpus.entity_names[e.index()].clone()).collect::<Vec<_>>()
                );
                println!(
                    "    recovered entities: {:?}",
                    snippet.entities().keys().map(|e| corpus.entity_names[e.index()].clone()).collect::<Vec<_>>()
                );
                shown += 1;
            }
            pivot.ingest(snippet).expect("valid extraction");
        }
    }
    pivot.align();

    let recall = recovered_entities as f64 / expected_entities as f64;
    println!(
        "\nentity recovery through text round-trip: {:.1}% ({recovered_entities}/{expected_entities})",
        recall * 100.0
    );
    println!(
        "stories detected from raw text: {} per-source, {} global ({} cross-source)",
        pivot.story_count(),
        pivot.global_stories().len(),
        pivot.alignment().unwrap().cross_source_stories().count(),
    );
    assert!(recall > 0.9, "gazetteer must recover most entity mentions");
}
