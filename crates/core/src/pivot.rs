//! The StoryPivot engine: store + identification + alignment +
//! refinement behind one API.

use std::collections::{HashMap, HashSet};

use storypivot_store::EventStore;
use storypivot_types::ids::IdGen;
use storypivot_types::{
    DocId, Error, GlobalStory, GlobalStoryId, Result, Snippet, SnippetId, Source, SourceId,
    SourceKind, StoryId,
};

use crate::align::{AlignOutcome, Aligner};
use crate::config::PivotConfig;
use crate::identify::{Identifier, IdentifyDecision, STORY_ID_STRIDE};
use crate::metrics::EngineMetrics;
use crate::refine::{refine_once, RefineReport};
use crate::state::StoryState;

/// The story detection engine described by the paper's Figure 1:
/// extraction results go in as [`Snippet`]s, per-source stories come out
/// of identification, and integrated global stories come out of
/// alignment (+ refinement).
///
/// ```
/// use storypivot_core::config::PivotConfig;
/// use storypivot_core::pivot::StoryPivot;
/// use storypivot_types::{EntityId, Snippet, SnippetId, SourceKind, TermId, Timestamp};
///
/// let mut pivot = StoryPivot::new(PivotConfig::default());
/// let nyt = pivot.add_source("New York Times", SourceKind::Newspaper);
/// let wsj = pivot.add_source("Wall Street Journal", SourceKind::Newspaper);
///
/// let t = Timestamp::from_ymd(2014, 7, 17);
/// for (i, src) in [nyt, wsj].into_iter().enumerate() {
///     pivot.ingest(
///         Snippet::builder(SnippetId::new(i as u32), src, t)
///             .entity(EntityId::new(0), 1.0)   // Ukraine
///             .entity(EntityId::new(1), 1.0)   // Malaysia Airlines
///             .term(TermId::new(0), 1.0)       // "crash"
///             .build(),
///     ).unwrap();
/// }
/// pivot.align();
/// assert_eq!(pivot.global_stories().len(), 1);
/// assert!(pivot.global_stories()[0].is_cross_source());
/// ```
#[derive(Debug, Clone)]
pub struct StoryPivot {
    pub(crate) config: PivotConfig,
    pub(crate) store: EventStore,
    pub(crate) identifiers: HashMap<SourceId, Identifier>,
    pub(crate) aligner: Aligner,
    pub(crate) outcome: Option<AlignOutcome>,
    pub(crate) dirty: HashSet<StoryId>,
    pub(crate) source_ids: IdGen<SourceId>,
    pub(crate) snippet_ids: IdGen<SnippetId>,
    pub(crate) doc_ids: IdGen<DocId>,
    pub(crate) metrics: EngineMetrics,
}

impl StoryPivot {
    /// Build an engine from a validated configuration.
    ///
    /// # Panics
    /// Panics when the configuration is invalid; use
    /// [`StoryPivot::try_new`] to handle invalid configs gracefully.
    pub fn new(config: PivotConfig) -> Self {
        Self::try_new(config).expect("invalid PivotConfig")
    }

    /// Build an engine, reporting configuration errors.
    pub fn try_new(config: PivotConfig) -> Result<Self> {
        config.validate()?;
        Ok(StoryPivot {
            aligner: Aligner::new(config.align.clone(), config.identify.weights),
            config,
            store: EventStore::new(),
            identifiers: HashMap::new(),
            outcome: None,
            dirty: HashSet::new(),
            source_ids: IdGen::new(),
            snippet_ids: IdGen::new(),
            doc_ids: IdGen::new(),
            metrics: EngineMetrics::default(),
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &PivotConfig {
        &self.config
    }

    /// Attach engine metric handles (default: detached no-ops). The
    /// serving layer registers one set per shard registry; summing the
    /// shard registries reproduces an unsharded engine's counters.
    pub fn set_metrics(&mut self, metrics: EngineMetrics) {
        self.metrics = metrics;
    }

    /// The attached engine metric handles.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Read access to the underlying event store.
    pub fn store(&self) -> &EventStore {
        &self.store
    }

    // ---- sources -----------------------------------------------------

    /// Register a new data source and return its id.
    ///
    /// # Panics
    /// Panics when more than [`STORY_ID_STRIDE`]-supported sources
    /// (2³²⁄2²⁴ = 256) are registered — story ids are partitioned by
    /// source for lock-free parallel identification.
    pub fn add_source<S: Into<String>>(&mut self, name: S, kind: SourceKind) -> SourceId {
        self.add_source_with_lag(name, kind, 0)
    }

    /// Register a new data source with a typical reporting lag (seconds).
    pub fn add_source_with_lag<S: Into<String>>(
        &mut self,
        name: S,
        kind: SourceKind,
        lag: i64,
    ) -> SourceId {
        let id = self.source_ids.next_id();
        assert!(
            id.raw() < u32::MAX / STORY_ID_STRIDE,
            "too many sources for the story-id partitioning scheme"
        );
        self.store
            .register_source(Source::new(id, name, kind).with_lag(lag))
            .expect("fresh source id cannot collide");
        self.identifiers.insert(
            id,
            Identifier::new(id, self.config.identify.clone(), self.config.sketch),
        );
        id
    }

    /// Register a source whose id was allocated *externally*. Sharded
    /// deployments (`storypivot-serve`) allocate source ids centrally
    /// and route each source to one shard engine; the shard must then
    /// register the source under exactly that id so story-id
    /// partitioning stays globally consistent. The internal allocator
    /// is advanced past the given id so locally allocated sources never
    /// collide with externally allocated ones.
    pub fn add_source_registered(&mut self, source: Source) -> Result<SourceId> {
        let id = source.id;
        if id.raw() >= u32::MAX / STORY_ID_STRIDE {
            return Err(Error::InvalidConfig(format!(
                "source id {id} exceeds the story-id partitioning limit ({})",
                u32::MAX / STORY_ID_STRIDE
            )));
        }
        if self.identifiers.contains_key(&id) {
            return Err(Error::Duplicate(format!("source {id}")));
        }
        self.store.register_source(source)?;
        self.identifiers.insert(
            id,
            Identifier::new(id, self.config.identify.clone(), self.config.sketch),
        );
        if id.raw() >= self.source_ids.allocated() {
            self.source_ids = IdGen::starting_at(id.raw() + 1);
        }
        Ok(id)
    }

    /// Remove a source together with its snippets and stories. Returns
    /// how many snippets were evicted. Previously computed alignment is
    /// invalidated incrementally (§2.4: sources can disappear).
    pub fn remove_source(&mut self, id: SourceId) -> Result<usize> {
        let ident = self.identifiers.remove(&id).ok_or(Error::UnknownSource(id))?;
        for story in ident.story_ids() {
            self.dirty.insert(story);
        }
        let evicted = self.store.remove_source(id)?;
        Ok(evicted.len())
    }

    /// Registered sources, ordered by id.
    pub fn sources(&self) -> Vec<&Source> {
        self.store.sources().collect()
    }

    // ---- id allocation helpers ----------------------------------------

    /// Allocate a fresh snippet id (callers may also manage their own).
    pub fn fresh_snippet_id(&mut self) -> SnippetId {
        self.snippet_ids.next_id()
    }

    /// Allocate a fresh document id.
    pub fn fresh_doc_id(&mut self) -> DocId {
        self.doc_ids.next_id()
    }

    // ---- ingestion ------------------------------------------------------

    /// Ingest one snippet: store it, identify its story within its
    /// source, and mark the touched story dirty for incremental
    /// re-alignment. Returns the per-source story it joined.
    pub fn ingest(&mut self, snippet: Snippet) -> Result<StoryId> {
        Ok(self.ingest_detailed(snippet)?.story)
    }

    /// Like [`StoryPivot::ingest`] but returns the full identification
    /// decision (creation flag, best score, merges, comparison count).
    pub fn ingest_detailed(&mut self, snippet: Snippet) -> Result<IdentifyDecision> {
        let source = snippet.source;
        let ident = self
            .identifiers
            .get_mut(&source)
            .ok_or(Error::UnknownSource(source))?;
        self.store.insert(snippet.clone())?;
        let timer = self.metrics.identify_duration.start();
        let decision = ident.assign(&snippet, &self.store);
        drop(timer);
        self.metrics.ingest_total.inc();
        self.metrics.identify_compared_total.add(decision.compared as u64);
        if decision.created {
            self.metrics.identify_new_story_total.inc();
        } else {
            self.metrics.identify_assigned_total.inc();
        }
        self.metrics.identify_merge_total.add(decision.merged.len() as u64);
        self.metrics.story_cache_hits_total.add(decision.cache_hits as u64);
        self.metrics.story_cache_misses_total.add(decision.cache_misses as u64);
        self.dirty.insert(decision.story);
        for &m in &decision.merged {
            self.dirty.insert(m);
        }
        if ident.maintenance_due() {
            self.metrics.maintenance_runs_total.inc();
            let report = ident.maintain(&self.store);
            self.metrics.identify_split_total.add(report.splits.len() as u64);
            for (orig, fragments) in report.splits {
                self.dirty.insert(orig);
                self.dirty.extend(fragments);
            }
        }
        Ok(decision)
    }

    /// Ingest a batch sequentially (in the given order).
    pub fn ingest_batch<I: IntoIterator<Item = Snippet>>(
        &mut self,
        snippets: I,
    ) -> Result<Vec<IdentifyDecision>> {
        snippets.into_iter().map(|s| self.ingest_detailed(s)).collect()
    }

    /// Ingest a batch with **parallel per-source identification**:
    /// snippets are stored first, then each source's identifier runs on
    /// its own thread (sources are independent by construction, §2.1).
    ///
    /// Within each source, snippets are processed in `(timestamp, id)`
    /// order. Returns the number of snippets ingested.
    pub fn ingest_batch_parallel(&mut self, snippets: Vec<Snippet>) -> Result<usize> {
        let mut by_source: HashMap<SourceId, Vec<Snippet>> = HashMap::new();
        for s in snippets {
            if !self.identifiers.contains_key(&s.source) {
                return Err(Error::UnknownSource(s.source));
            }
            by_source.entry(s.source).or_default().push(s);
        }
        let mut total = 0usize;
        for batch in by_source.values_mut() {
            batch.sort_by_key(|s| (s.timestamp, s.id));
            for s in batch.iter() {
                self.store.insert(s.clone())?;
            }
            total += batch.len();
        }

        let store = &self.store;
        let mut touched: Vec<Vec<StoryId>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (source, ident) in self.identifiers.iter_mut() {
                let Some(batch) = by_source.remove(source) else { continue };
                handles.push(scope.spawn(move || {
                    let mut touched = Vec::with_capacity(batch.len());
                    for s in &batch {
                        let d = ident.assign(s, store);
                        touched.push(d.story);
                        touched.extend(d.merged);
                    }
                    let report = ident.maintain(store);
                    for (orig, fragments) in report.splits {
                        touched.push(orig);
                        touched.extend(fragments);
                    }
                    touched
                }));
            }
            for h in handles {
                touched.push(h.join().expect("identification thread panicked"));
            }
        });
        for t in touched.into_iter().flatten() {
            self.dirty.insert(t);
        }
        // The parallel path records only the ingest count; per-decision
        // counters stay on the sequential (serving) path.
        self.metrics.ingest_total.add(total as u64);
        Ok(total)
    }

    // ---- removal ---------------------------------------------------------

    /// Remove one snippet (store + story), marking its story dirty.
    ///
    /// The cached alignment outcome is scrubbed immediately: queries
    /// issued between the removal and the next (incremental) alignment
    /// must not surface the removed snippet, nor a story whose last
    /// snippet just vanished.
    pub fn remove_snippet(&mut self, id: SnippetId) -> Result<()> {
        let snippet = self.store.remove(id)?;
        if let Some(ident) = self.identifiers.get_mut(&snippet.source) {
            if let Some(story) = ident.remove_snippet(&snippet, &self.store) {
                self.dirty.insert(story);
                let story_died = ident.story(story).is_none();
                self.scrub_outcome(id, story, story_died);
            }
        }
        Ok(())
    }

    /// Evict a removed snippet (and, when it was the story's last
    /// member, its now-dead story) from the cached [`AlignOutcome`] so
    /// reads stay consistent until the next alignment rebuilds it.
    fn scrub_outcome(&mut self, snippet: SnippetId, story: StoryId, story_died: bool) {
        let Some(outcome) = self.outcome.as_mut() else { return };
        outcome.snippet_to_global.remove(&snippet);
        if let Some(&gid) = outcome.story_to_global.get(&story) {
            if let Ok(idx) = outcome.global_stories.binary_search_by_key(&gid, |g| g.id) {
                let g = &mut outcome.global_stories[idx];
                g.members.retain(|&(m, _)| m != snippet);
                if story_died {
                    g.member_stories.retain(|&s| s != story);
                    let mut sources: Vec<SourceId> = g
                        .member_stories
                        .iter()
                        .map(|&s| crate::refine::story_source(s))
                        .collect();
                    sources.sort_unstable();
                    sources.dedup();
                    g.sources = sources;
                }
                if g.member_stories.is_empty() {
                    outcome.global_stories.remove(idx);
                }
            }
        }
        if story_died {
            outcome.story_to_global.remove(&story);
            outcome.accepted_pairs.retain(|&(a, b)| a != story && b != story);
        }
    }

    /// Remove a whole document (the demo's remove-document interaction,
    /// §4.2.1). Returns how many snippets were evicted.
    pub fn remove_document(&mut self, doc: DocId) -> Result<usize> {
        let ids = self.store.snippets_of_doc(doc);
        if ids.is_empty() {
            return Err(Error::UnknownDocument(doc));
        }
        let n = ids.len();
        for id in ids {
            self.remove_snippet(id)?;
        }
        Ok(n)
    }

    /// Forcibly reassign a snippet to another story of its source (a
    /// what-if/error-injection hook used by the demo's interactive
    /// exploration and by the refinement experiments). The target story
    /// is created when it does not exist; pass
    /// [`StoryPivot::fresh_story_id_for`] output to open a new one.
    pub fn reassign_snippet(&mut self, id: SnippetId, story: StoryId) -> Result<()> {
        let snippet = self.store.get_or_err(id)?.clone();
        let ident = self
            .identifiers
            .get_mut(&snippet.source)
            .ok_or(Error::UnknownSource(snippet.source))?;
        if let Some(old) = ident.remove_snippet(&snippet, &self.store) {
            self.dirty.insert(old);
        }
        ident.force_assign(&snippet, story);
        self.dirty.insert(story);
        Ok(())
    }

    /// Allocate a fresh story id in `source` (for
    /// [`StoryPivot::reassign_snippet`]).
    pub fn fresh_story_id_for(&mut self, source: SourceId) -> Result<StoryId> {
        self.identifiers
            .get_mut(&source)
            .map(Identifier::fresh_story_id)
            .ok_or(Error::UnknownSource(source))
    }

    /// Run the merge/split maintenance pass over every source now
    /// (ordinarily it runs automatically every
    /// `identify.maintenance_every` ingests). Returns all splits as
    /// `(original story, fragment ids)`; affected stories are marked
    /// dirty for incremental re-alignment.
    pub fn run_maintenance(&mut self) -> Vec<(StoryId, Vec<StoryId>)> {
        let mut splits = Vec::new();
        let mut sources: Vec<SourceId> = self.identifiers.keys().copied().collect();
        sources.sort_unstable();
        for source in sources {
            let ident = self.identifiers.get_mut(&source).expect("listed source");
            self.metrics.maintenance_runs_total.inc();
            let report = ident.maintain(&self.store);
            self.metrics.identify_split_total.add(report.splits.len() as u64);
            for (orig, fragments) in report.splits {
                self.dirty.insert(orig);
                self.dirty.extend(fragments.iter().copied());
                splits.push((orig, fragments));
            }
        }
        splits
    }

    // ---- alignment ----------------------------------------------------------

    fn collect_states(&self) -> Vec<&StoryState> {
        let mut ids: Vec<SourceId> = self.identifiers.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .flat_map(|id| {
                let ident = &self.identifiers[id];
                ident
                    .story_ids()
                    .into_iter()
                    .map(move |sid| ident.story(sid).expect("listed story exists"))
            })
            .collect()
    }

    /// Run story alignment from scratch and return the outcome.
    pub fn align(&mut self) -> &AlignOutcome {
        let timer = self.metrics.align_duration.start();
        let outcome = self.aligner.align(&self.collect_states(), &self.store);
        drop(timer);
        self.metrics.align_runs_total.inc();
        self.metrics.align_pairs_total.add(outcome.pairs_scored as u64);
        self.dirty.clear();
        self.outcome = Some(outcome);
        self.outcome.as_ref().expect("just set")
    }

    /// Run alignment incrementally: only story pairs touching a dirty
    /// story are rescored; everything else reuses the previous outcome.
    /// Falls back to a full pass when no previous outcome exists.
    pub fn align_incremental(&mut self) -> &AlignOutcome {
        let timer = self.metrics.align_duration.start();
        let outcome = match &self.outcome {
            Some(prev) => self.aligner.align_incremental(
                &self.collect_states(),
                &self.store,
                prev,
                &self.dirty,
            ),
            None => self.aligner.align(&self.collect_states(), &self.store),
        };
        drop(timer);
        self.metrics.align_runs_total.inc();
        self.metrics.align_pairs_total.add(outcome.pairs_scored as u64);
        self.dirty.clear();
        self.outcome = Some(outcome);
        self.outcome.as_ref().expect("just set")
    }

    /// Number of stories currently marked dirty (ingested/changed since
    /// the last alignment).
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Run story refinement (Figure 1d): repeatedly move snippets whose
    /// cross-source cohesion contradicts their assignment, re-aligning
    /// between rounds, until a round makes no move or the configured
    /// round budget is exhausted.
    pub fn refine(&mut self) -> RefineReport {
        let timer = self.metrics.refine_duration.start();
        let mut report = RefineReport::default();
        for _ in 0..self.config.refine.max_rounds {
            if self.outcome.is_none() || !self.dirty.is_empty() {
                self.align_incremental();
            }
            let outcome = self.outcome.as_ref().expect("aligned above").clone();
            let moves = refine_once(
                &self.store,
                &mut self.identifiers,
                &outcome,
                &self.config.refine,
                &self.config.identify.weights,
            );
            report.rounds += 1;
            if moves.is_empty() {
                break;
            }
            for m in &moves {
                self.dirty.insert(m.from_story);
                self.dirty.insert(m.to_story);
            }
            report.moves.extend(moves);
            self.align_incremental();
        }
        drop(timer);
        self.metrics.refine_moves_total.add(report.move_count() as u64);
        self.metrics.refine_rounds_total.add(report.rounds as u64);
        report
    }

    // ---- inspection ------------------------------------------------------------

    /// The integrated global stories from the most recent alignment
    /// (empty before the first [`StoryPivot::align`] call).
    pub fn global_stories(&self) -> &[GlobalStory] {
        self.outcome
            .as_ref()
            .map(|o| o.global_stories.as_slice())
            .unwrap_or(&[])
    }

    /// The full outcome of the most recent alignment.
    pub fn alignment(&self) -> Option<&AlignOutcome> {
        self.outcome.as_ref()
    }

    /// The per-source story a snippet belongs to.
    pub fn story_of(&self, snippet: SnippetId) -> Option<StoryId> {
        let source = self.store.get(snippet)?.source;
        self.identifiers.get(&source)?.story_of(snippet)
    }

    /// The global story a snippet belongs to (after alignment).
    pub fn global_of(&self, snippet: SnippetId) -> Option<GlobalStoryId> {
        self.outcome.as_ref()?.snippet_to_global.get(&snippet).copied()
    }

    /// All story states of one source, ordered by story id.
    pub fn stories_of_source(&self, source: SourceId) -> Vec<&StoryState> {
        match self.identifiers.get(&source) {
            Some(ident) => ident
                .story_ids()
                .into_iter()
                .map(|id| ident.story(id).expect("listed story exists"))
                .collect(),
            None => Vec::new(),
        }
    }

    /// One story's state, looked up across sources.
    pub fn story(&self, id: StoryId) -> Option<&StoryState> {
        self.identifiers
            .get(&crate::refine::story_source(id))
            .and_then(|ident| ident.story(id))
    }

    /// Total number of per-source stories.
    pub fn story_count(&self) -> usize {
        self.identifiers.values().map(Identifier::story_count).sum()
    }

    /// The per-source story partition: every story with its members,
    /// ordered by story id, members sorted. Identification is
    /// per-source, so this partition is invariant under sharding by
    /// source — the serving layer's QUERY_STORIES frame and the
    /// served-vs-in-process equivalence tests are built on it.
    pub fn story_partition(&self) -> Vec<(StoryId, Vec<SnippetId>)> {
        let mut out: Vec<(StoryId, Vec<SnippetId>)> = self
            .identifiers
            .values()
            .flat_map(|ident| {
                ident.story_ids().into_iter().map(move |sid| {
                    let mut members: Vec<SnippetId> = ident
                        .story(sid)
                        .expect("listed story exists")
                        .story
                        .members
                        .clone();
                    members.sort_unstable();
                    (sid, members)
                })
            })
            .collect();
        out.sort_unstable_by_key(|&(sid, _)| sid);
        out
    }

    /// Verify the engine's internal invariants, returning a description
    /// of the first violation found. Intended for tests and debugging;
    /// cost is linear in the corpus.
    ///
    /// Checked invariants:
    /// 1. every stored snippet is assigned to exactly one story of its
    ///    source, and every story member is a stored snippet;
    /// 2. story lifespans cover their members' timestamps;
    /// 3. when an alignment outcome exists, its global stories partition
    ///    the per-source stories (modulo stories changed since).
    pub fn check_invariants(&self) -> Result<()> {
        let fail = |msg: String| Err(Error::Invariant(msg));

        // (1) + (2)
        let mut assigned = std::collections::HashSet::new();
        for (source, ident) in &self.identifiers {
            for story_id in ident.story_ids() {
                let state = ident.story(story_id).expect("listed story exists");
                if state.is_empty() {
                    return fail(format!("story {story_id} is empty but alive"));
                }
                for &m in &state.story.members {
                    let Some(sn) = self.store.get(m) else {
                        return fail(format!("story {story_id} references missing snippet {m}"));
                    };
                    if sn.source != *source {
                        return fail(format!("snippet {m} of {} in story of {source}", sn.source));
                    }
                    if ident.story_of(m) != Some(story_id) {
                        return fail(format!("assignment map disagrees for {m}"));
                    }
                    if !state.lifespan().contains(sn.timestamp) {
                        return fail(format!(
                            "snippet {m} at {} outside story {story_id} lifespan {}",
                            sn.timestamp,
                            state.lifespan()
                        ));
                    }
                    if !assigned.insert(m) {
                        return fail(format!("snippet {m} belongs to two stories"));
                    }
                }
            }
        }
        for sn in self.store.iter() {
            if !assigned.contains(&sn.id) {
                return fail(format!("stored snippet {} is unassigned", sn.id));
            }
        }

        // (3) — only meaningful right after alignment (dirty == 0).
        if let Some(outcome) = &self.outcome {
            if self.dirty.is_empty() {
                let mut covered = std::collections::HashSet::new();
                for g in &outcome.global_stories {
                    for &s in &g.member_stories {
                        if !covered.insert(s) {
                            return fail(format!("story {s} in two global stories"));
                        }
                    }
                }
                for ident in self.identifiers.values() {
                    for story_id in ident.story_ids() {
                        if !covered.contains(&story_id) {
                            return fail(format!("story {story_id} missing from alignment"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, EventType, TermId, Timestamp, DAY};

    fn snip(pivot: &mut StoryPivot, source: SourceId, day: i64, entities: &[u32], terms: &[u32]) -> SnippetId {
        let id = pivot.fresh_snippet_id();
        let mut b = Snippet::builder(id, source, Timestamp::from_secs(day * DAY))
            .event_type(EventType::Accident);
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        pivot.ingest(b.build()).unwrap();
        id
    }

    #[test]
    fn end_to_end_two_sources() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("NYT", SourceKind::Newspaper);
        let b = pivot.add_source("WSJ", SourceKind::Newspaper);
        for day in 0..5 {
            snip(&mut pivot, a, day, &[1, 2], &[10, 11]);
            snip(&mut pivot, b, day, &[1, 2], &[10, 11]);
        }
        assert_eq!(pivot.story_count(), 2);
        pivot.align();
        assert_eq!(pivot.global_stories().len(), 1);
        assert!(pivot.global_stories()[0].is_cross_source());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = PivotConfig::default();
        cfg.identify.match_threshold = 7.0;
        assert!(StoryPivot::try_new(cfg).is_err());
    }

    #[test]
    fn unknown_source_ingest_fails() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let s = Snippet::builder(SnippetId::new(0), SourceId::new(9), Timestamp::EPOCH).build();
        assert!(matches!(pivot.ingest(s), Err(Error::UnknownSource(_))));
    }

    #[test]
    fn dirty_tracking_and_incremental_alignment() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        for day in 0..3 {
            snip(&mut pivot, a, day, &[1, 2], &[10]);
            snip(&mut pivot, b, day, &[1, 2], &[10]);
        }
        assert!(pivot.dirty_count() > 0);
        pivot.align();
        assert_eq!(pivot.dirty_count(), 0);
        snip(&mut pivot, a, 3, &[1, 2], &[10]);
        assert_eq!(pivot.dirty_count(), 1);
        pivot.align_incremental();
        assert_eq!(pivot.global_stories().len(), 1);
    }

    #[test]
    fn parallel_batch_matches_sequential() {
        let build = |parallel: bool| -> Vec<Vec<SnippetId>> {
            let mut pivot = StoryPivot::new(PivotConfig::default());
            let a = pivot.add_source("a", SourceKind::Newspaper);
            let b = pivot.add_source("b", SourceKind::Newspaper);
            let mut batch = Vec::new();
            for day in 0..10i64 {
                for (src, ent) in [(a, day % 3), (b, day % 3)] {
                    let id = pivot.fresh_snippet_id();
                    let e = ent as u32 * 10;
                    batch.push(
                        Snippet::builder(id, src, Timestamp::from_secs(day * DAY))
                            .entity(EntityId::new(e), 1.0)
                            .entity(EntityId::new(e + 1), 1.0)
                            .term(TermId::new(e), 1.0)
                            .build(),
                    );
                }
            }
            if parallel {
                pivot.ingest_batch_parallel(batch).unwrap();
            } else {
                // Sequential per-source in (timestamp, id) order mirrors
                // what the parallel path does per source.
                let mut sorted = batch;
                sorted.sort_by_key(|s| (s.source, s.timestamp, s.id));
                pivot.ingest_batch(sorted).unwrap();
            }
            pivot.align();
            let mut partitions: Vec<Vec<SnippetId>> = pivot
                .global_stories()
                .iter()
                .map(|g| g.members.iter().map(|&(m, _)| m).collect())
                .collect();
            partitions.sort();
            partitions
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn document_removal_updates_stories() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let doc = pivot.fresh_doc_id();
        let id0 = pivot.fresh_snippet_id();
        pivot
            .ingest(
                Snippet::builder(id0, a, Timestamp::EPOCH)
                    .doc(doc)
                    .entity(EntityId::new(1), 1.0)
                    .build(),
            )
            .unwrap();
        assert_eq!(pivot.story_count(), 1);
        assert_eq!(pivot.remove_document(doc).unwrap(), 1);
        assert_eq!(pivot.story_count(), 0);
        assert!(pivot.remove_document(doc).is_err());
    }

    #[test]
    fn source_removal_prunes_everything() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        snip(&mut pivot, a, 0, &[1], &[1]);
        snip(&mut pivot, b, 0, &[1], &[1]);
        pivot.align();
        assert_eq!(pivot.remove_source(a).unwrap(), 1);
        pivot.align_incremental();
        assert_eq!(pivot.global_stories().len(), 1);
        assert_eq!(pivot.global_stories()[0].sources, vec![b]);
    }

    #[test]
    fn refine_fixes_injected_error() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        // Two clear stories in both sources.
        let mut crash_snips = Vec::new();
        for day in 0..3 {
            crash_snips.push(snip(&mut pivot, a, day, &[1, 2], &[10, 11]));
            snip(&mut pivot, a, day, &[7, 8], &[20, 21]);
            snip(&mut pivot, b, day, &[1, 2], &[10, 11]);
            snip(&mut pivot, b, day, &[7, 8], &[20, 21]);
        }
        // Inject an error: force the last crash snippet into the sports
        // story of source a.
        let victim_id = crash_snips[2];
        let victim = pivot.store().get(victim_id).unwrap().clone();
        let sports_story = pivot
            .stories_of_source(a)
            .iter()
            .map(|s| s.id())
            .find(|&sid| sid != pivot.story_of(victim_id).unwrap())
            .unwrap();
        let right_story = pivot.story_of(victim_id).unwrap();
        {
            let ident = pivot.identifiers.get_mut(&a).unwrap();
            ident.remove_snippet(&victim, &pivot.store);
            ident.force_assign(&victim, sports_story);
        }
        pivot.dirty.insert(sports_story);
        pivot.dirty.insert(right_story);

        let report = pivot.refine();
        assert!(report.move_count() >= 1, "refinement must correct the error");
        assert_eq!(pivot.story_of(victim_id), Some(right_story));
    }

    #[test]
    fn externally_registered_sources_interleave_with_local_ones() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        // A sharded server registers sources 1 and 3 on this shard.
        for id in [1u32, 3] {
            let got = pivot
                .add_source_registered(Source::new(SourceId::new(id), format!("s{id}"), SourceKind::Wire))
                .unwrap();
            assert_eq!(got.raw(), id);
        }
        // Registering the same id twice is refused.
        assert!(pivot
            .add_source_registered(Source::new(SourceId::new(3), "dup", SourceKind::Blog))
            .is_err());
        // A locally allocated source continues past the external ids.
        let local = pivot.add_source("local", SourceKind::Newspaper);
        assert_eq!(local.raw(), 4);
        // Ids beyond the story-partitioning limit are refused.
        assert!(pivot
            .add_source_registered(Source::new(SourceId::new(u32::MAX / 256), "big", SourceKind::Wire))
            .is_err());
        // Ingest works against the external ids.
        snip(&mut pivot, SourceId::new(1), 0, &[1, 2], &[1]);
        snip(&mut pivot, SourceId::new(3), 0, &[1, 2], &[1]);
        pivot.align();
        assert_eq!(pivot.global_stories().len(), 1);
    }

    #[test]
    fn story_partition_lists_every_snippet_once() {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        let mut all = Vec::new();
        for day in 0..4 {
            all.push(snip(&mut pivot, a, day, &[1, 2], &[1]));
            all.push(snip(&mut pivot, b, day, &[8, 9], &[8]));
        }
        let partition = pivot.story_partition();
        assert_eq!(partition.len(), pivot.story_count());
        let mut members: Vec<SnippetId> =
            partition.iter().flat_map(|(_, m)| m.iter().copied()).collect();
        members.sort_unstable();
        all.sort_unstable();
        assert_eq!(members, all);
        // Ordered by story id, and each story's id maps back to it.
        for w in partition.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for (sid, m) in &partition {
            assert_eq!(pivot.story_of(m[0]), Some(*sid));
        }
    }

    #[test]
    fn global_stories_empty_before_alignment() {
        let pivot = StoryPivot::new(PivotConfig::default());
        assert!(pivot.global_stories().is_empty());
        assert!(pivot.alignment().is_none());
    }

    #[test]
    fn removing_last_snippet_scrubs_alignment_and_window() {
        use crate::query::{query_stories, StoryQuery};

        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        // A healthy cross-source story plus a lone single-snippet story
        // in source a with disjoint content.
        for day in 0..3 {
            snip(&mut pivot, a, day, &[1, 2], &[10, 11]);
            snip(&mut pivot, b, day, &[1, 2], &[10, 11]);
        }
        let lone = snip(&mut pivot, a, 1, &[77, 78], &[90, 91]);
        let lone_story = pivot.story_of(lone).unwrap();
        pivot.align();
        let before = pivot.global_stories().len();
        assert_eq!(before, 2);

        pivot.remove_snippet(lone).unwrap();

        // The dead story must vanish from alignment results, not linger
        // until the next align pass.
        assert_eq!(pivot.global_stories().len(), before - 1);
        let outcome = pivot.alignment().unwrap();
        assert!(!outcome.snippet_to_global.contains_key(&lone));
        assert!(!outcome.story_to_global.contains_key(&lone_story));
        assert!(outcome
            .global_stories
            .iter()
            .all(|g| !g.member_stories.contains(&lone_story)
                && g.members.iter().all(|&(m, _)| m != lone)));
        // Queries over the cached alignment see no trace of it either.
        let hits = query_stories(&pivot, &StoryQuery::entity(EntityId::new(77)));
        assert!(hits.is_empty());
        // No stale window-index entry survives in the store.
        assert!(pivot
            .store()
            .window(a, Timestamp::from_secs(DAY), 10 * DAY)
            .iter()
            .all(|s| s.id != lone));

        // Removing a non-last snippet keeps the story but drops the
        // member from the cached alignment.
        let keep = snip(&mut pivot, a, 3, &[1, 2], &[10, 11]);
        pivot.align();
        pivot.remove_snippet(keep).unwrap();
        let outcome = pivot.alignment().unwrap();
        assert_eq!(outcome.global_stories.len(), 1);
        assert!(outcome.global_stories[0].members.iter().all(|&(m, _)| m != keep));
        assert!(!outcome.snippet_to_global.contains_key(&keep));

        pivot.align();
        pivot.check_invariants().unwrap();
        assert_eq!(pivot.global_stories().len(), 1);
    }

    #[test]
    fn engine_metrics_count_hot_path_work() {
        use storypivot_substrate::metrics::Registry;

        let registry = Registry::new();
        let mut pivot = StoryPivot::new(PivotConfig::default());
        pivot.set_metrics(EngineMetrics::register(&registry));
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        for day in 0..4 {
            snip(&mut pivot, a, day, &[1, 2], &[10, 11]);
            snip(&mut pivot, b, day, &[1, 2], &[10, 11]);
        }
        pivot.align();
        pivot.refine();

        let m = pivot.metrics();
        assert_eq!(m.ingest_total.get(), 8);
        // Every snippet either joined a story or opened one.
        assert_eq!(
            m.identify_assigned_total.get() + m.identify_new_story_total.get(),
            8
        );
        assert_eq!(m.align_runs_total.get(), 1);
        assert!(m.identify_duration.count() == 8);
        let save = pivot.save_checkpoint();
        assert!(!save.is_empty());
        assert_eq!(m.checkpoint_save_duration.count(), 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("storypivot_ingest_total", &[]), Some(8));
    }
}
