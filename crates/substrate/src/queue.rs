//! A bounded multi-producer multi-consumer queue.
//!
//! `std::sync::mpsc::sync_channel` is bounded but hides the current
//! queue depth and has no close-and-drain semantics, both of which the
//! serving layer needs: depth feeds the STATS gauges, and close lets a
//! shard worker drain outstanding work before exiting. This is the
//! narrow slice of `crossbeam-channel` the workspace actually uses,
//! built on [`Mutex`] + [`Condvar`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (non-blocking push only); the value is
    /// handed back so the caller can retry or reject upstream.
    Full(T),
    /// The queue was closed; no further values will ever be accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A cloneable handle to a bounded FIFO queue. All clones share the
/// same queue; any handle may push, pop, or close.
pub struct Bounded<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Bounded<T> {
    fn clone(&self) -> Self {
        Bounded {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a bounded queue needs capacity >= 1");
        Bounded {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    items: VecDeque::with_capacity(capacity),
                    closed: false,
                }),
                capacity,
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Poisoning only matters if a holder panicked mid-mutation;
        // every critical section here is a few field accesses.
        match self.inner.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Push without blocking. Returns the value on a full or closed
    /// queue — the backpressure signal the server turns into BUSY.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(value));
        }
        if state.items.len() >= self.inner.capacity {
            return Err(PushError::Full(value));
        }
        state.items.push_back(value);
        drop(state);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Push, blocking while the queue is full. Returns the value back
    /// when the queue is (or becomes) closed.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(value);
            }
            if state.items.len() < self.inner.capacity {
                state.items.push_back(value);
                drop(state);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = match self.inner.not_full.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Pop, blocking while the queue is empty. Returns `None` only once
    /// the queue is closed **and** drained — a worker loop of
    /// `while let Some(job) = q.pop()` therefore processes every job
    /// accepted before the close.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(v) = state.items.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Some(v);
            }
            if state.closed {
                return None;
            }
            state = match self.inner.not_empty.wait(state) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Pop without blocking (`None` when empty, closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.lock();
        let v = state.items.pop_front();
        drop(state);
        if v.is_some() {
            self.inner.not_full.notify_one();
        }
        v
    }

    /// Current number of queued items (a gauge; racy by nature).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Close the queue: future pushes fail, queued items remain
    /// poppable, and blocked poppers wake up once drained.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.push("d"), Err("d"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let q = Bounded::new(1);
        q.try_push(0u32).unwrap();
        let q2 = q.clone();
        let pusher = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q: Bounded<u8> = Bounded::new(1);
        let q2 = q.clone();
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Bounded::new(8);
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    q.push(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut got = Vec::new();
        for _ in 0..400 {
            got.push(q.pop().unwrap());
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 400, "every pushed item arrives exactly once");
    }
}
