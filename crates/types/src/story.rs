//! Stories: per-source and cross-source (global).
//!
//! A *story* (paper §2) is an evolving set of snippets describing related
//! real-world events. Story **identification** produces per-source
//! [`Story`] values; story **alignment** groups them into cross-source
//! [`GlobalStory`] values and classifies each snippet as *aligning* or
//! *enriching* (paper §2.3).

use crate::ids::{GlobalStoryId, SnippetId, SourceId, StoryId};
use crate::time::{TimeRange, Timestamp};

/// A story within one data source (`cᵢ` in the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Story {
    /// Unique story id (unique across all sources in one pivot instance).
    pub id: StoryId,
    /// The data source this story was identified in.
    pub source: SourceId,
    /// Member snippets. Kept sorted by snippet id.
    pub members: Vec<SnippetId>,
    /// Temporal span covered by the member snippets.
    pub lifespan: TimeRange,
}

impl Story {
    /// A new, empty story.
    pub fn new(id: StoryId, source: SourceId) -> Self {
        Story {
            id,
            source,
            members: Vec::new(),
            lifespan: TimeRange::EMPTY,
        }
    }

    /// Number of member snippets.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the story has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `snippet` belongs to this story.
    pub fn contains(&self, snippet: SnippetId) -> bool {
        self.members.binary_search(&snippet).is_ok()
    }

    /// Add a member and extend the lifespan. Idempotent.
    pub fn add_member(&mut self, snippet: SnippetId, at: Timestamp) {
        if let Err(pos) = self.members.binary_search(&snippet) {
            self.members.insert(pos, snippet);
        }
        self.lifespan = self.lifespan.extend(at);
    }

    /// Remove a member if present; returns whether it was removed.
    ///
    /// The lifespan is *not* shrunk here — callers that need a tight
    /// lifespan after removal recompute it from the surviving members'
    /// timestamps (the store knows those).
    pub fn remove_member(&mut self, snippet: SnippetId) -> bool {
        match self.members.binary_search(&snippet) {
            Ok(pos) => {
                self.members.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

/// Role a snippet plays inside an integrated story (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnippetRole {
    /// Has a temporally-proximate, content-similar counterpart in another
    /// source: it *aligns* the story across sources.
    Aligning,
    /// Source-exclusive extra information (special reports, background
    /// pieces): it *enriches* the story.
    Enriching,
}

/// An integrated story spanning data sources (`c'` in the paper,
/// Figure 1c).
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalStory {
    /// Unique id of the integrated story.
    pub id: GlobalStoryId,
    /// The per-source stories merged into this global story.
    pub member_stories: Vec<StoryId>,
    /// Distinct sources contributing to this story, sorted.
    pub sources: Vec<SourceId>,
    /// Member snippets with their alignment role, sorted by snippet id.
    pub members: Vec<(SnippetId, SnippetRole)>,
    /// Temporal span of the integrated story.
    pub lifespan: TimeRange,
}

impl GlobalStory {
    /// A new, empty global story.
    pub fn new(id: GlobalStoryId) -> Self {
        GlobalStory {
            id,
            member_stories: Vec::new(),
            sources: Vec::new(),
            members: Vec::new(),
            lifespan: TimeRange::EMPTY,
        }
    }

    /// Number of member snippets.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no member snippets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Number of distinct contributing sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Whether this story was corroborated by more than one source.
    pub fn is_cross_source(&self) -> bool {
        self.sources.len() > 1
    }

    /// The role of `snippet` within this story, if it is a member.
    pub fn role_of(&self, snippet: SnippetId) -> Option<SnippetRole> {
        self.members
            .binary_search_by_key(&snippet, |&(id, _)| id)
            .ok()
            .map(|i| self.members[i].1)
    }

    /// Record a contributing source (deduplicated, kept sorted).
    pub fn add_source(&mut self, source: SourceId) {
        if let Err(pos) = self.sources.binary_search(&source) {
            self.sources.insert(pos, source);
        }
    }

    /// Add a member snippet with its role (idempotent; updates role on
    /// re-insertion) and extend the lifespan.
    pub fn add_member(&mut self, snippet: SnippetId, role: SnippetRole, at: Timestamp) {
        match self.members.binary_search_by_key(&snippet, |&(id, _)| id) {
            Ok(i) => self.members[i].1 = role,
            Err(i) => self.members.insert(i, (snippet, role)),
        }
        self.lifespan = self.lifespan.extend(at);
    }

    /// Member snippets that align the story across sources.
    pub fn aligning(&self) -> impl Iterator<Item = SnippetId> + '_ {
        self.members
            .iter()
            .filter(|&&(_, r)| r == SnippetRole::Aligning)
            .map(|&(id, _)| id)
    }

    /// Member snippets that enrich the story with source-exclusive
    /// information.
    pub fn enriching(&self) -> impl Iterator<Item = SnippetId> + '_ {
        self.members
            .iter()
            .filter(|&&(_, r)| r == SnippetRole::Enriching)
            .map(|&(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn story_membership_is_sorted_and_idempotent() {
        let mut c = Story::new(StoryId::new(1), SourceId::new(0));
        c.add_member(SnippetId::new(5), Timestamp(50));
        c.add_member(SnippetId::new(2), Timestamp(20));
        c.add_member(SnippetId::new(5), Timestamp(50));
        assert_eq!(c.members, vec![SnippetId::new(2), SnippetId::new(5)]);
        assert_eq!(c.lifespan, TimeRange::new(Timestamp(20), Timestamp(50)));
        assert!(c.contains(SnippetId::new(2)));
        assert!(!c.contains(SnippetId::new(3)));
    }

    #[test]
    fn story_remove_member() {
        let mut c = Story::new(StoryId::new(0), SourceId::new(0));
        c.add_member(SnippetId::new(1), Timestamp(1));
        assert!(c.remove_member(SnippetId::new(1)));
        assert!(!c.remove_member(SnippetId::new(1)));
        assert!(c.is_empty());
    }

    #[test]
    fn global_story_roles() {
        let mut g = GlobalStory::new(GlobalStoryId::new(0));
        g.add_source(SourceId::new(1));
        g.add_source(SourceId::new(0));
        g.add_source(SourceId::new(1));
        assert_eq!(g.sources, vec![SourceId::new(0), SourceId::new(1)]);
        assert!(g.is_cross_source());

        g.add_member(SnippetId::new(3), SnippetRole::Aligning, Timestamp(30));
        g.add_member(SnippetId::new(1), SnippetRole::Enriching, Timestamp(10));
        assert_eq!(g.role_of(SnippetId::new(3)), Some(SnippetRole::Aligning));
        assert_eq!(g.role_of(SnippetId::new(9)), None);
        assert_eq!(g.aligning().collect::<Vec<_>>(), vec![SnippetId::new(3)]);
        assert_eq!(g.enriching().collect::<Vec<_>>(), vec![SnippetId::new(1)]);

        // Re-adding flips the role rather than duplicating the member.
        g.add_member(SnippetId::new(3), SnippetRole::Enriching, Timestamp(30));
        assert_eq!(g.len(), 2);
        assert_eq!(g.role_of(SnippetId::new(3)), Some(SnippetRole::Enriching));
    }

    #[test]
    fn single_source_story_is_not_cross_source() {
        let mut g = GlobalStory::new(GlobalStoryId::new(1));
        g.add_source(SourceId::new(4));
        assert!(!g.is_cross_source());
        assert_eq!(g.source_count(), 1);
    }
}
