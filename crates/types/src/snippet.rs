//! Information snippets — the elemental unit of information (paper §2.1).

use crate::event_type::EventType;
use crate::ids::{DocId, EntityId, SnippetId, SourceId, TermId};
use crate::sparse::SparseVec;
use crate::time::Timestamp;

/// The content of a snippet: what the extraction pipeline recovered from
/// the originating document excerpt.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnippetContent {
    /// Entities involved in the event, with salience weights
    /// (e.g. `{Ukraine, Malaysia Airlines}` in the paper's example).
    pub entities: SparseVec<EntityId>,
    /// Description terms with TF-IDF style weights
    /// (e.g. `{crash, plane, shot}`).
    pub terms: SparseVec<TermId>,
    /// Coarse category of the described activity.
    pub event_type: EventType,
    /// Short human-readable headline for display modules.
    pub headline: String,
}

impl SnippetContent {
    /// Whether the content carries any matching signal at all.
    pub fn is_vacuous(&self) -> bool {
        self.entities.is_empty() && self.terms.is_empty()
    }
}

/// An information snippet: timestamped, source-attributed content
/// extracted from one document excerpt.
#[derive(Debug, Clone, PartialEq)]
pub struct Snippet {
    /// Unique id of this snippet.
    pub id: SnippetId,
    /// The data source the originating document belongs to.
    pub source: SourceId,
    /// The originating document.
    pub doc: DocId,
    /// When the described real-world event occurred.
    pub timestamp: Timestamp,
    /// Extracted content.
    pub content: SnippetContent,
}

impl Snippet {
    /// Start building a snippet.
    pub fn builder(id: SnippetId, source: SourceId, timestamp: Timestamp) -> SnippetBuilder {
        SnippetBuilder {
            id,
            source,
            doc: DocId::new(0),
            timestamp,
            entities: Vec::new(),
            terms: Vec::new(),
            event_type: EventType::Other,
            headline: String::new(),
        }
    }

    /// Entities of this snippet.
    #[inline]
    pub fn entities(&self) -> &SparseVec<EntityId> {
        &self.content.entities
    }

    /// Description terms of this snippet.
    #[inline]
    pub fn terms(&self) -> &SparseVec<TermId> {
        &self.content.terms
    }
}

/// Fluent builder for [`Snippet`] used by the extraction pipeline, the
/// corpus generator, and tests.
///
/// ```
/// use storypivot_types::{Snippet, SnippetId, SourceId, EntityId, TermId, Timestamp, EventType};
/// let s = Snippet::builder(SnippetId::new(0), SourceId::new(1), Timestamp::from_ymd(2014, 7, 17))
///     .entity(EntityId::new(3), 1.0)
///     .term(TermId::new(9), 0.7)
///     .event_type(EventType::Accident)
///     .headline("Jetliner Explodes over Ukraine")
///     .build();
/// assert_eq!(s.entities().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SnippetBuilder {
    id: SnippetId,
    source: SourceId,
    doc: DocId,
    timestamp: Timestamp,
    entities: Vec<(EntityId, f32)>,
    terms: Vec<(TermId, f32)>,
    event_type: EventType,
    headline: String,
}

impl SnippetBuilder {
    /// Set the originating document.
    pub fn doc(mut self, doc: DocId) -> Self {
        self.doc = doc;
        self
    }

    /// Add one weighted entity.
    pub fn entity(mut self, e: EntityId, weight: f32) -> Self {
        self.entities.push((e, weight));
        self
    }

    /// Add many unit-weight entities.
    pub fn entities<I: IntoIterator<Item = EntityId>>(mut self, es: I) -> Self {
        self.entities.extend(es.into_iter().map(|e| (e, 1.0)));
        self
    }

    /// Add one weighted description term.
    pub fn term(mut self, t: TermId, weight: f32) -> Self {
        self.terms.push((t, weight));
        self
    }

    /// Add many unit-weight terms.
    pub fn terms<I: IntoIterator<Item = TermId>>(mut self, ts: I) -> Self {
        self.terms.extend(ts.into_iter().map(|t| (t, 1.0)));
        self
    }

    /// Set the event type.
    pub fn event_type(mut self, t: EventType) -> Self {
        self.event_type = t;
        self
    }

    /// Set the display headline.
    pub fn headline<S: Into<String>>(mut self, h: S) -> Self {
        self.headline = h.into();
        self
    }

    /// Finalise the snippet.
    pub fn build(self) -> Snippet {
        Snippet {
            id: self.id,
            source: self.source,
            doc: self.doc,
            timestamp: self.timestamp,
            content: SnippetContent {
                entities: SparseVec::from_pairs(self.entities),
                terms: SparseVec::from_pairs(self.terms),
                event_type: self.event_type,
                headline: self.headline,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_content() {
        let s = Snippet::builder(SnippetId::new(5), SourceId::new(2), Timestamp::from_ymd(2014, 7, 18))
            .doc(DocId::new(9))
            .entity(EntityId::new(1), 2.0)
            .entities([EntityId::new(4), EntityId::new(1)])
            .term(TermId::new(7), 0.5)
            .event_type(EventType::Accident)
            .headline("Evidence of Russian Links to Jet's Downing")
            .build();
        assert_eq!(s.id, SnippetId::new(5));
        assert_eq!(s.doc, DocId::new(9));
        // entity 1 appears twice: weights merge to 3.0
        assert_eq!(s.entities().get(&EntityId::new(1)), Some(3.0));
        assert_eq!(s.entities().len(), 2);
        assert_eq!(s.content.event_type, EventType::Accident);
        assert!(!s.content.is_vacuous());
    }

    #[test]
    fn vacuous_content_detected() {
        let s = Snippet::builder(SnippetId::new(0), SourceId::new(0), Timestamp::EPOCH).build();
        assert!(s.content.is_vacuous());
    }
}
