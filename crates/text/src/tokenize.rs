//! Word tokenization.
//!
//! Splits raw article text into word tokens with byte offsets. The rules
//! are deliberately simple and deterministic:
//!
//! * a token is a maximal run of alphanumeric characters, possibly with
//!   *internal* `'`, `-`, or `.` joining alphanumerics (so `jet's`,
//!   `pro-Russia` and `U.N.` each form one token);
//! * everything else is a separator;
//! * the normalized form is ASCII-lowercased with trailing `'s` and all
//!   internal dots stripped (`Jet's` → `jet`, `U.N.` → `un`).

/// A single token: its byte span in the original text plus a normalized
/// form used for matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Byte offset of the first character in the original text.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// Normalized (lowercased, possessive-stripped) form.
    pub norm: String,
}

impl Token {
    /// The original surface text of the token within `text`.
    pub fn surface<'a>(&self, text: &'a str) -> &'a str {
        &text[self.start..self.end]
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric()
}

fn is_joiner(c: char) -> bool {
    matches!(c, '\'' | '-' | '.' | '’')
}

/// Normalize a raw token: lowercase, strip possessive suffix and dots.
fn normalize(raw: &str) -> String {
    let mut s: String = raw
        .chars()
        .filter(|&c| c != '.')
        .flat_map(char::to_lowercase)
        .collect();
    // Strip possessive ('s or bare trailing apostrophe), both ASCII and
    // typographic apostrophes.
    for suffix in ["'s", "’s", "'", "’"] {
        if let Some(stripped) = s.strip_suffix(suffix) {
            s = stripped.to_string();
            break;
        }
    }
    s
}

/// Tokenize `text` into word tokens.
///
/// ```
/// use storypivot_text::tokenize;
/// let toks = tokenize("Evidence of Russian Links to Jet's Downing");
/// let norms: Vec<&str> = toks.iter().map(|t| t.norm.as_str()).collect();
/// assert_eq!(norms, ["evidence", "of", "russian", "links", "to", "jet", "downing"]);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();

    while let Some(&(start, c)) = chars.peek() {
        if !is_word_char(c) {
            chars.next();
            continue;
        }
        // Consume a word: word chars, with joiners allowed when followed
        // by another word char.
        let mut end = start;
        while let Some(&(i, c)) = chars.peek() {
            if is_word_char(c) {
                end = i + c.len_utf8();
                chars.next();
            } else if is_joiner(c) {
                // Look ahead: only join if the next char is a word char.
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&(_, nc)) if is_word_char(nc) => {
                        end = i + c.len_utf8();
                        chars.next();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        let raw = &text[start..end];
        let norm = normalize(raw);
        if !norm.is_empty() {
            tokens.push(Token { start, end, norm });
        }
    }
    tokens
}

/// Tokenize and return only the normalized forms (convenience).
pub fn tokenize_norms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norms(text: &str) -> Vec<String> {
        tokenize_norms(text)
    }

    #[test]
    fn basic_splitting() {
        assert_eq!(norms("A Malaysian airplane crashed"), ["a", "malaysian", "airplane", "crashed"]);
    }

    #[test]
    fn punctuation_is_separator() {
        assert_eq!(norms("crash, plane; shot!"), ["crash", "plane", "shot"]);
        assert_eq!(norms("…(controlled)…"), ["controlled"]);
    }

    #[test]
    fn possessives_are_stripped() {
        assert_eq!(norms("Jet's downing"), ["jet", "downing"]);
        assert_eq!(norms("the investigators' findings"), ["the", "investigators", "findings"]);
    }

    #[test]
    fn hyphenated_words_stay_joined() {
        assert_eq!(norms("pro-Russia separatists"), ["pro-russia", "separatists"]);
    }

    #[test]
    fn abbreviations_lose_dots() {
        assert_eq!(norms("U.N. officials"), ["un", "officials"]);
    }

    #[test]
    fn trailing_joiner_is_not_consumed() {
        // The hyphen before a space must not be part of the token.
        assert_eq!(norms("blown- out"), ["blown", "out"]);
        let toks = tokenize("jet- ");
        assert_eq!(toks[0].surface("jet- "), "jet");
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(norms("Flight 17 with 298 people"), ["flight", "17", "with", "298", "people"]);
        assert_eq!(norms("Boeing 777"), ["boeing", "777"]);
    }

    #[test]
    fn offsets_map_back_to_surface() {
        let text = "Ukraine asked United Nations";
        let toks = tokenize(text);
        assert_eq!(toks[0].surface(text), "Ukraine");
        assert_eq!(toks[2].surface(text), "United");
        assert_eq!(toks[3].surface(text), "Nations");
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ,,, ").is_empty());
    }

    #[test]
    fn unicode_text_survives() {
        let toks = norms("Müller über Zürich");
        assert_eq!(toks, ["müller", "über", "zürich"]);
    }

    #[test]
    fn typographic_apostrophe() {
        assert_eq!(norms("jet’s downing"), ["jet", "downing"]);
    }
}
