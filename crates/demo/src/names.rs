//! Display-name resolution for the demo modules.

use storypivot_extract::ExtractionPipeline;
use storypivot_gen::Corpus;
use storypivot_types::{EntityId, TermId};

/// Resolves ids to display strings for rendering.
pub trait NameSource {
    /// Display name of an entity (falls back to the raw id).
    fn entity_name(&self, e: EntityId) -> String;
    /// Display name of a term.
    fn term_name(&self, t: TermId) -> String;
    /// Short uppercase code of an entity, GDELT-actor style: single-word
    /// names take their first three letters (`UKR` for Ukraine, as in
    /// the paper's figures); multi-word names take initials (`UN` for
    /// United Nations, `US` for United States) so that names sharing a
    /// first word do not collide.
    fn entity_code(&self, e: EntityId) -> String {
        let name = self.entity_name(e);
        let words: Vec<&str> = name.split_whitespace().collect();
        if words.len() >= 2 {
            words
                .iter()
                .filter_map(|w| w.chars().find(|c| c.is_alphanumeric()))
                .take(3)
                .flat_map(char::to_uppercase)
                .collect()
        } else {
            name.chars()
                .filter(|c| c.is_alphanumeric())
                .take(3)
                .flat_map(char::to_uppercase)
                .collect()
        }
    }
}

/// Name source backed by a generated [`Corpus`]' catalogs.
pub struct CorpusNames<'a>(pub &'a Corpus);

impl NameSource for CorpusNames<'_> {
    fn entity_name(&self, e: EntityId) -> String {
        self.0
            .entity_names
            .get(e.index())
            .cloned()
            .unwrap_or_else(|| e.to_string())
    }

    fn term_name(&self, t: TermId) -> String {
        self.0
            .term_names
            .get(t.index())
            .cloned()
            .unwrap_or_else(|| t.to_string())
    }
}

/// Name source backed by a [`storypivot_extract::TupleCatalog`] (names
/// interned while reading a tuple TSV file).
pub struct CatalogNames<'a>(pub &'a storypivot_extract::TupleCatalog);

impl NameSource for CatalogNames<'_> {
    fn entity_name(&self, e: EntityId) -> String {
        self.0
            .entities
            .resolve(e)
            .map(str::to_string)
            .unwrap_or_else(|| e.to_string())
    }

    fn term_name(&self, t: TermId) -> String {
        self.0
            .terms
            .resolve(t)
            .map(str::to_string)
            .unwrap_or_else(|| t.to_string())
    }
}

/// Name source backed by an [`ExtractionPipeline`]'s gazetteer and term
/// interner.
pub struct PipelineNames<'a>(pub &'a ExtractionPipeline);

impl NameSource for PipelineNames<'_> {
    fn entity_name(&self, e: EntityId) -> String {
        self.0
            .annotator()
            .gazetteer()
            .canonical_name(e)
            .map(str::to_string)
            .unwrap_or_else(|| e.to_string())
    }

    fn term_name(&self, t: TermId) -> String {
        self.0
            .annotator()
            .term_name(t)
            .map(str::to_string)
            .unwrap_or_else(|| t.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed;
    impl NameSource for Fixed {
        fn entity_name(&self, e: EntityId) -> String {
            match e.raw() {
                0 => "Ukraine".into(),
                1 => "Malaysia Airlines".into(),
                _ => e.to_string(),
            }
        }
        fn term_name(&self, t: TermId) -> String {
            t.to_string()
        }
    }

    #[test]
    fn single_word_codes_take_three_letters() {
        let f = Fixed;
        assert_eq!(f.entity_code(EntityId::new(0)), "UKR");
    }

    #[test]
    fn multi_word_codes_take_initials() {
        let f = Fixed;
        // "Malaysia Airlines" -> initials, avoiding collisions between
        // names sharing a first word (United Nations vs United States).
        assert_eq!(f.entity_code(EntityId::new(1)), "MA");
    }

    #[test]
    fn unknown_ids_fall_back_to_display() {
        let f = Fixed;
        assert_eq!(f.entity_name(EntityId::new(9)), "e9");
    }
}
