//! Event type taxonomy.
//!
//! GDELT-style coarse categorisation of the real-world activity a snippet
//! describes. The paper's example tuple uses `Accident`; GDELT's CAMEO
//! taxonomy inspires the remaining categories.

use std::fmt;
use std::str::FromStr;

use crate::error::Error;

/// Coarse category of the real-world event described by a snippet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum EventType {
    /// Accidents and crashes (the paper's running example: plane crash).
    Accident = 0,
    /// Armed conflict, military action.
    Conflict = 1,
    /// Civil protest, demonstrations.
    Protest = 2,
    /// Diplomacy: negotiations, statements, sanctions.
    Diplomacy = 3,
    /// Economic and financial events.
    Economy = 4,
    /// Politics: elections, legislation, appointments.
    Politics = 5,
    /// Natural disasters.
    Disaster = 6,
    /// Crime and justice.
    Crime = 7,
    /// Public health.
    Health = 8,
    /// Sports events.
    Sports = 9,
    /// Science and technology.
    Science = 10,
    /// Anything else.
    #[default]
    Other = 11,
}

impl EventType {
    /// All event types, in discriminant order.
    pub const ALL: [EventType; 12] = [
        EventType::Accident,
        EventType::Conflict,
        EventType::Protest,
        EventType::Diplomacy,
        EventType::Economy,
        EventType::Politics,
        EventType::Disaster,
        EventType::Crime,
        EventType::Health,
        EventType::Sports,
        EventType::Science,
        EventType::Other,
    ];

    /// Number of distinct event types.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable small integer code (the enum discriminant).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`EventType::code`].
    pub const fn from_code(code: u8) -> Option<EventType> {
        if (code as usize) < Self::COUNT {
            Some(Self::ALL[code as usize])
        } else {
            None
        }
    }

    /// Canonical lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            EventType::Accident => "accident",
            EventType::Conflict => "conflict",
            EventType::Protest => "protest",
            EventType::Diplomacy => "diplomacy",
            EventType::Economy => "economy",
            EventType::Politics => "politics",
            EventType::Disaster => "disaster",
            EventType::Crime => "crime",
            EventType::Health => "health",
            EventType::Sports => "sports",
            EventType::Science => "science",
            EventType::Other => "other",
        }
    }

    /// Similarity in `[0,1]` between two event types.
    ///
    /// Identical types score 1.0, *related* types (e.g. conflict/protest)
    /// 0.5, and unrelated types 0.0. `Other` is weakly similar to
    /// everything since the classifier falls back to it.
    pub fn affinity(self, other: EventType) -> f64 {
        use EventType::*;
        if self == other {
            return 1.0;
        }
        if self == Other || other == Other {
            return 0.25;
        }
        let related = |a: EventType, b: EventType| -> bool {
            matches!(
                (a, b),
                (Conflict, Protest)
                    | (Conflict, Diplomacy)
                    | (Protest, Politics)
                    | (Diplomacy, Politics)
                    | (Economy, Politics)
                    | (Economy, Diplomacy)
                    | (Accident, Disaster)
                    | (Crime, Conflict)
                    | (Health, Disaster)
            )
        };
        if related(self, other) || related(other, self) {
            0.5
        } else {
            0.0
        }
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EventType {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Error> {
        let lower = s.to_ascii_lowercase();
        Self::ALL
            .iter()
            .copied()
            .find(|t| t.name() == lower)
            .ok_or_else(|| Error::Parse(format!("unknown event type: {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for t in EventType::ALL {
            assert_eq!(EventType::from_code(t.code()), Some(t));
        }
        assert_eq!(EventType::from_code(200), None);
    }

    #[test]
    fn names_round_trip() {
        for t in EventType::ALL {
            assert_eq!(t.name().parse::<EventType>().unwrap(), t);
        }
        assert!("airliner".parse::<EventType>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!("Accident".parse::<EventType>().unwrap(), EventType::Accident);
        assert_eq!("CONFLICT".parse::<EventType>().unwrap(), EventType::Conflict);
    }

    #[test]
    fn affinity_is_symmetric_and_bounded() {
        for a in EventType::ALL {
            for b in EventType::ALL {
                let ab = a.affinity(b);
                assert_eq!(ab, b.affinity(a), "{a} vs {b}");
                assert!((0.0..=1.0).contains(&ab));
            }
            assert_eq!(a.affinity(a), 1.0);
        }
    }

    #[test]
    fn related_types_score_half() {
        assert_eq!(EventType::Conflict.affinity(EventType::Protest), 0.5);
        assert_eq!(EventType::Sports.affinity(EventType::Conflict), 0.0);
        assert_eq!(EventType::Other.affinity(EventType::Sports), 0.25);
    }
}
