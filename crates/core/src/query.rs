//! Entity/time queries over detected stories (paper §4.2).
//!
//! "Users will be able to explore the results of the larger integration
//! run and can query STORYPIVOT to see the evolution of a story over
//! time within and across sources. For simplicity, queries will consist
//! of enquiries about specified real-world events or entities."
//!
//! A [`StoryQuery`] filters by entities (any-of), a time range, sources,
//! and a minimum story size; results are global stories ranked by how
//! strongly they feature the queried entities.

use storypivot_types::{EntityId, GlobalStoryId, SourceId, TimeRange};

use crate::pivot::StoryPivot;

/// A declarative story query.
#[derive(Debug, Clone, Default)]
pub struct StoryQuery {
    /// Match stories mentioning at least one of these entities (empty =
    /// no entity constraint).
    pub entities: Vec<EntityId>,
    /// Restrict to stories whose lifespan overlaps this range.
    pub range: Option<TimeRange>,
    /// Restrict to stories with at least one contributing source from
    /// this set (empty = any).
    pub sources: Vec<SourceId>,
    /// Minimum number of member snippets.
    pub min_snippets: usize,
    /// Only cross-source (corroborated) stories.
    pub cross_source_only: bool,
}

impl StoryQuery {
    /// An unconstrained query (matches every story).
    pub fn any() -> Self {
        Self::default()
    }

    /// Query by a single entity.
    pub fn entity(e: EntityId) -> Self {
        StoryQuery {
            entities: vec![e],
            ..Self::default()
        }
    }

    /// Add an entity (any-of semantics).
    pub fn or_entity(mut self, e: EntityId) -> Self {
        self.entities.push(e);
        self
    }

    /// Restrict to a time range.
    pub fn in_range(mut self, range: TimeRange) -> Self {
        self.range = Some(range);
        self
    }

    /// Restrict to stories covered by `source`.
    pub fn from_source(mut self, source: SourceId) -> Self {
        self.sources.push(source);
        self
    }

    /// Require at least `n` member snippets.
    pub fn min_snippets(mut self, n: usize) -> Self {
        self.min_snippets = n;
        self
    }

    /// Only stories corroborated by more than one source.
    pub fn cross_source(mut self) -> Self {
        self.cross_source_only = true;
        self
    }
}

/// One query hit: a global story and its relevance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryHit {
    /// The matching global story.
    pub story: GlobalStoryId,
    /// Total weight of the queried entities inside the story (0 when
    /// the query has no entity constraint).
    pub relevance: f64,
}

/// Evaluate `query` against the pivot's most recent alignment. Results
/// are sorted by descending relevance, ties by story id. Returns an
/// empty vector when [`StoryPivot::align`] has not run yet.
pub fn query_stories(pivot: &StoryPivot, query: &StoryQuery) -> Vec<QueryHit> {
    let mut hits = Vec::new();
    for g in pivot.global_stories() {
        if query.cross_source_only && !g.is_cross_source() {
            continue;
        }
        if g.len() < query.min_snippets {
            continue;
        }
        if let Some(range) = query.range {
            if !g.lifespan.overlaps(range) {
                continue;
            }
        }
        if !query.sources.is_empty() && !query.sources.iter().any(|s| g.sources.contains(s)) {
            continue;
        }
        // Entity constraint: sum the queried entities' mass across the
        // member per-source stories.
        let relevance = if query.entities.is_empty() {
            0.0
        } else {
            let mut mass = 0.0f64;
            for &story in &g.member_stories {
                if let Some(state) = pivot.story(story) {
                    for e in &query.entities {
                        if let Some(w) = state.entities.get(e) {
                            mass += w as f64;
                        }
                    }
                }
            }
            if mass == 0.0 {
                continue;
            }
            mass
        };
        hits.push(QueryHit {
            story: g.id,
            relevance,
        });
    }
    hits.sort_by(|a, b| {
        b.relevance
            .total_cmp(&a.relevance)
            .then(a.story.cmp(&b.story))
    });
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotConfig;
    use storypivot_types::{
        EventType, Snippet, SnippetId, SourceKind, TermId, Timestamp, DAY,
    };

    fn fixture() -> (StoryPivot, SourceId, SourceId) {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        let mut id = 0u32;
        let mut snip = |source, day: i64, e: u32, t: u32| {
            let s = Snippet::builder(SnippetId::new(id), source, Timestamp::from_secs(day * DAY))
                .entity(EntityId::new(e), 1.0)
                .entity(EntityId::new(e + 1), 1.0)
                .term(TermId::new(t), 1.0)
                .event_type(EventType::Conflict)
                .build();
            id += 1;
            s
        };
        // Story X: entities {1,2}, both sources, days 0-3.
        // Story Y: entities {10,11}, source a only, days 50-52.
        let mut batch = Vec::new();
        for d in 0..4 {
            batch.push(snip(a, d, 1, 5));
            batch.push(snip(b, d, 1, 5));
        }
        for d in 50..53 {
            batch.push(snip(a, d, 10, 9));
        }
        for s in batch {
            pivot.ingest(s).unwrap();
        }
        pivot.align();
        (pivot, a, b)
    }

    #[test]
    fn entity_query_finds_the_right_story() {
        let (pivot, _, _) = fixture();
        let hits = query_stories(&pivot, &StoryQuery::entity(EntityId::new(1)));
        assert_eq!(hits.len(), 1);
        let g = pivot.alignment().unwrap().global_story(hits[0].story).unwrap();
        assert_eq!(g.len(), 8);
        assert!(hits[0].relevance >= 8.0);
    }

    #[test]
    fn any_of_entities_unions_results() {
        let (pivot, _, _) = fixture();
        let q = StoryQuery::entity(EntityId::new(1)).or_entity(EntityId::new(10));
        let hits = query_stories(&pivot, &q);
        assert_eq!(hits.len(), 2);
        // The bigger story has more entity mass → ranks first.
        let first = pivot.alignment().unwrap().global_story(hits[0].story).unwrap();
        assert!(first.is_cross_source());
    }

    #[test]
    fn time_range_filters() {
        let (pivot, _, _) = fixture();
        let q = StoryQuery::any().in_range(TimeRange::new(
            Timestamp::from_secs(40 * DAY),
            Timestamp::from_secs(60 * DAY),
        ));
        let hits = query_stories(&pivot, &q);
        assert_eq!(hits.len(), 1);
        let g = pivot.alignment().unwrap().global_story(hits[0].story).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn source_and_cross_source_filters() {
        let (pivot, _, b) = fixture();
        // Stories involving source b: only the big one.
        let hits = query_stories(&pivot, &StoryQuery::any().from_source(b));
        assert_eq!(hits.len(), 1);
        // Cross-source only: same.
        let hits = query_stories(&pivot, &StoryQuery::any().cross_source());
        assert_eq!(hits.len(), 1);
        // The paper's sports-club scenario (§2.3): a single-source story
        // must still be findable without the cross-source filter.
        let hits = query_stories(&pivot, &StoryQuery::entity(EntityId::new(10)));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn min_snippets_filters_small_stories() {
        let (pivot, _, _) = fixture();
        let hits = query_stories(&pivot, &StoryQuery::any().min_snippets(5));
        assert_eq!(hits.len(), 1);
        let hits = query_stories(&pivot, &StoryQuery::any().min_snippets(100));
        assert!(hits.is_empty());
    }

    #[test]
    fn unknown_entity_matches_nothing() {
        let (pivot, _, _) = fixture();
        let hits = query_stories(&pivot, &StoryQuery::entity(EntityId::new(999)));
        assert!(hits.is_empty());
    }

    #[test]
    fn before_alignment_queries_are_empty() {
        let pivot = StoryPivot::new(PivotConfig::default());
        assert!(query_stories(&pivot, &StoryQuery::any()).is_empty());
    }
}
