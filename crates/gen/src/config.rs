//! Generator configuration.

use storypivot_types::{Timestamp, DAY, HOUR};

/// Parameters of the synthetic corpus (defaults mirror the dataset panel
/// of the paper's Figure 7: 50 sources, 500 entities, Jun–Dec 2014 —
/// scaled to a requested snippet budget).
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// RNG seed; every corpus is fully determined by its config.
    pub seed: u64,
    /// Number of data sources.
    pub sources: u32,
    /// Entity catalog size.
    pub entities: u32,
    /// Term vocabulary size.
    pub terms: u32,
    /// Number of ground-truth stories.
    pub stories: u32,
    /// Mean number of real-world events per story.
    pub events_per_story: f64,
    /// Corpus start instant.
    pub start: Timestamp,
    /// Corpus duration in days.
    pub duration_days: i64,
    /// Story lifespan range in days `(min, max)`.
    pub story_duration_days: (i64, i64),
    /// Core entity-set size per story.
    pub entities_per_story: usize,
    /// Topic term-pool size per story.
    pub terms_per_story: usize,
    /// Entities mentioned per snippet `(min, max)`.
    pub entities_per_snippet: (usize, usize),
    /// Terms mentioned per snippet `(min, max)`.
    pub terms_per_snippet: (usize, usize),
    /// Probability that a source covers a story at all.
    pub coverage: f64,
    /// Probability that a covering source reports any given event.
    pub report_prob: f64,
    /// Per-event probability that the story's active entity set and term
    /// pool mutate (story drift/evolution).
    pub drift: f64,
    /// Probability that a snippet drops one of its entities (annotation
    /// noise).
    pub entity_dropout: f64,
    /// Probability that a snippet picks up one random off-topic term.
    pub term_noise: f64,
    /// Mean publication lag (seconds) added on top of the source's
    /// typical lag. Publication lag drives *delivery order*, producing
    /// out-of-order arrival.
    pub mean_pub_lag: i64,
    /// Maximum timestamp jitter (seconds): sources estimate the event
    /// time imperfectly.
    pub timestamp_jitter: i64,
    /// Zipf exponent for entity/term popularity.
    pub zipf_exponent: f64,
    /// Probability that a story **splits**: when it ends, two successor
    /// stories begin, each inheriting part of its content (paper §2.1:
    /// "it is possible for stories to split into multiple substories").
    /// Successors carry *new* ground-truth labels.
    pub split_prob: f64,
    /// Probability that a story **merges** with another concurrently
    /// ending story into one successor inheriting content from both.
    pub merge_prob: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 42,
            sources: 10,
            entities: 500,
            terms: 2_000,
            stories: 40,
            events_per_story: 12.0,
            start: Timestamp::from_ymd(2014, 6, 1),
            duration_days: 183, // Jun 1 – Dec 1, as in Figure 7
            story_duration_days: (7, 60),
            entities_per_story: 4,
            terms_per_story: 12,
            entities_per_snippet: (2, 4),
            terms_per_snippet: (4, 7),
            coverage: 0.7,
            report_prob: 0.8,
            drift: 0.25,
            entity_dropout: 0.15,
            term_noise: 0.25,
            mean_pub_lag: 6 * HOUR,
            timestamp_jitter: 4 * HOUR,
            zipf_exponent: 0.9,
            split_prob: 0.15,
            merge_prob: 0.10,
        }
    }
}

impl GenConfig {
    /// Scale the story count so the corpus lands near `target` snippets
    /// (expected value; the actual count varies with the seed).
    pub fn with_target_snippets(mut self, target: usize) -> Self {
        let per_story =
            self.events_per_story * self.sources as f64 * self.coverage * self.report_prob;
        self.stories = ((target as f64 / per_story).ceil() as u32).max(1);
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style source-count override.
    pub fn with_sources(mut self, sources: u32) -> Self {
        self.sources = sources;
        self
    }

    /// The corpus end instant.
    pub fn end(&self) -> Timestamp {
        self.start + self.duration_days * DAY
    }

    /// Expected snippet count implied by the parameters.
    pub fn expected_snippets(&self) -> usize {
        (self.stories as f64
            * self.events_per_story
            * self.sources as f64
            * self.coverage
            * self.report_prob) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GenConfig::default();
        assert!(c.sources > 0 && c.entities > 0 && c.stories > 0);
        assert!(c.end() > c.start);
        assert!(c.expected_snippets() > 0);
    }

    #[test]
    fn target_snippets_scales_stories() {
        let small = GenConfig::default().with_target_snippets(500);
        let large = GenConfig::default().with_target_snippets(50_000);
        assert!(large.stories > small.stories * 50);
        // Expected count should be within 2x of the target.
        let exp = large.expected_snippets() as f64;
        assert!(exp > 25_000.0 && exp < 100_000.0, "expected {exp}");
    }

    #[test]
    fn builder_overrides() {
        let c = GenConfig::default().with_seed(7).with_sources(50);
        assert_eq!(c.seed, 7);
        assert_eq!(c.sources, 50);
    }
}
