//! Seeded property tests for the WAL-shipping replication transport:
//! a follower that pulls `read_records_range` batches from a leader
//! journal and appends the payloads through its own `Wal` must end up
//! with a byte-identical file — across random batch sizes, mid-batch
//! disconnects, leader-tail corruption, and follower crash/restart.
//! Byte identity is the invariant the whole replica design leans on:
//! the follower's `wal.len()` doubles as its durable resume cursor
//! into the leader's journal. Replay a failing case with
//! `STORYPIVOT_PROP_SEED=<seed>`.

use std::path::{Path, PathBuf};

use storypivot_substrate::prop;
use storypivot_substrate::rng::{RngExt, StdRng};
use storypivot_substrate::wal::{self, read_records_range, split_records, SyncPolicy, Wal};

fn scratch(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "storypivot-replprop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn leader_with_random_payloads(rng: &mut StdRng, path: &Path) -> u64 {
    let payloads = prop::vec_with(rng, 1, 32, |r| {
        let len = r.random_range(0..160usize);
        (0..len).map(|_| r.random::<u8>()).collect::<Vec<u8>>()
    });
    let (mut wal, _) = Wal::open(path, SyncPolicy::Never).unwrap();
    for p in &payloads {
        wal.append(p).unwrap();
    }
    wal.len()
}

/// Pull one shipping batch: the follower's own length is the cursor,
/// exactly as `serve::replica` does it.
fn pull(leader: &Path, follower: &mut Wal, max: usize, keep: Option<usize>) -> usize {
    let chunk = read_records_range(leader, follower.len(), max).unwrap();
    let (records, consumed) = split_records(&chunk);
    // The leader always cuts at a record boundary, so the batch must
    // re-frame with nothing left over.
    assert_eq!(consumed, chunk.len(), "shipped batch must be whole records");
    let keep = keep.unwrap_or(records.len()).min(records.len());
    for payload in &records[..keep] {
        follower.append(payload).unwrap();
    }
    keep
}

#[test]
fn shipping_round_trips_byte_for_byte_across_random_batches() {
    prop::run(48, |rng| {
        let dir = scratch("ship", rng.random());
        let leader = dir.join("leader.wal");
        let leader_len = leader_with_random_payloads(rng, &leader);

        let (mut follower, _) = Wal::open(&dir.join("follower.wal"), SyncPolicy::Never).unwrap();
        let mut stalls = 0u32;
        while follower.len() < leader_len {
            let max = rng.random_range(1..512usize);
            // A mid-batch disconnect drops an arbitrary suffix of the
            // batch; the next pull resumes from the follower's length.
            let keep = if rng.random_range(0..4u32) == 0 {
                Some(rng.random_range(0..8usize))
            } else {
                None
            };
            if pull(&leader, &mut follower, max, keep) == 0 {
                // Batch window too small for the next record (or the
                // disconnect dropped everything): widen and retry.
                stalls += 1;
                assert!(stalls < 10_000, "shipping made no progress");
                pull(&leader, &mut follower, leader_len as usize, None);
            }
        }
        assert_eq!(follower.len(), leader_len);
        drop(follower);
        assert_eq!(
            std::fs::read(&leader).unwrap(),
            std::fs::read(dir.join("follower.wal")).unwrap(),
            "shipped journal must be byte-identical"
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn corrupt_leader_tail_ships_only_the_valid_prefix() {
    prop::run(48, |rng| {
        let dir = scratch("corrupt", rng.random());
        let leader = dir.join("leader.wal");
        leader_with_random_payloads(rng, &leader);

        // Tear the tail or flip a bit — the two crash/corruption shapes
        // the CRC framing must catch before a follower applies them.
        let mut bytes = std::fs::read(&leader).unwrap();
        if rng.random_range(0..2u32) == 0 {
            bytes.truncate(rng.random_range(0..bytes.len()));
        } else if !bytes.is_empty() {
            let victim = rng.random_range(0..bytes.len());
            bytes[victim] ^= 1 << rng.random_range(0..8u32);
        }
        std::fs::write(&leader, &bytes).unwrap();
        let valid = wal::scan(&leader).unwrap();

        let (mut follower, _) = Wal::open(&dir.join("follower.wal"), SyncPolicy::Never).unwrap();
        while follower.len() < valid.valid_len {
            pull(&leader, &mut follower, bytes.len().max(1), None);
        }
        // One more pull past the valid prefix must ship nothing: the
        // corrupt region never crosses the wire.
        assert_eq!(pull(&leader, &mut follower, bytes.len().max(1), None), 0);
        assert_eq!(follower.len(), valid.valid_len);
        drop(follower);
        let shipped = wal::scan(&dir.join("follower.wal")).unwrap();
        assert!(!shipped.damaged());
        assert_eq!(shipped.records, valid.records);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

#[test]
fn follower_crash_and_restart_resumes_idempotently() {
    prop::run(48, |rng| {
        let dir = scratch("restart", rng.random());
        let leader = dir.join("leader.wal");
        let follower_path = dir.join("follower.wal");
        let leader_len = leader_with_random_payloads(rng, &leader);

        // Ship part of the journal, then "kill -9" the follower by
        // tearing its file at an arbitrary byte (a half-flushed append).
        {
            let (mut follower, _) = Wal::open(&follower_path, SyncPolicy::Never).unwrap();
            let target = rng.random_range(0..=leader_len);
            while follower.len() < target {
                pull(&leader, &mut follower, 256, None);
            }
        }
        let mut bytes = std::fs::read(&follower_path).unwrap();
        if !bytes.is_empty() && rng.random_range(0..2u32) == 0 {
            bytes.truncate(rng.random_range(0..bytes.len()));
            std::fs::write(&follower_path, &bytes).unwrap();
        }

        // Restart: open repairs the torn tail back to a record
        // boundary, and that length is again a valid leader offset —
        // resubscribing from it replays the lost suffix exactly once.
        let (mut follower, scan) = Wal::open(&follower_path, SyncPolicy::Never).unwrap();
        assert_eq!(follower.len(), scan.valid_len);
        while follower.len() < leader_len {
            pull(&leader, &mut follower, leader_len as usize, None);
        }
        drop(follower);
        assert_eq!(
            std::fs::read(&leader).unwrap(),
            std::fs::read(&follower_path).unwrap(),
            "restarted follower must converge to a byte-identical journal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}
