//! E2 — the full pipeline (identify + align + refine) per execution
//! mode (Fig 7). Timing counterpart of the harness' quality table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storypivot_bench::{corpus_fixed_period, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;

fn bench(c: &mut Criterion) {
    let corpus = corpus_fixed_period(800, 8, 11);
    let mut group = c.benchmark_group("e2_full_pipeline");
    group.sample_size(10);
    for (name, cfg) in [
        ("temporal", PivotConfig::temporal(OMEGA)),
        ("complete", PivotConfig::complete()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, corpus.len()), &corpus, |b, corpus| {
            b.iter(|| {
                let mut pivot = pivot_for(corpus, cfg.clone());
                for s in &corpus.snippets {
                    pivot.ingest(s.clone()).unwrap();
                }
                pivot.align();
                pivot.refine();
                pivot.global_stories().len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
