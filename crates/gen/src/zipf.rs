//! Zipf-distributed sampling.
//!
//! Entity popularity in news follows a heavy-tailed law: a few entities
//! (major countries, leaders) appear in a large share of events. The
//! sampler lives in the substrate ([`storypivot_substrate::rng::Zipf`])
//! next to the deterministic RNG it draws from; this module re-exports
//! it under the generator's namespace and keeps the distribution's
//! behavioral tests close to its main consumer.

pub use storypivot_substrate::rng::Zipf;

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_substrate::rng::StdRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(head > n / 3, "head got {head} of {n}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1600..=2400).contains(&c), "rank {i}: {c}");
        }
    }

    #[test]
    fn distinct_sampling_has_no_duplicates() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let got = z.sample_distinct(&mut rng, 10);
        assert_eq!(got.len(), 10);
        let set: std::collections::HashSet<usize> = got.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn distinct_sampling_full_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = z.sample_distinct(&mut rng, 5);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.1);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
