//! Deterministic pseudo-name generation.
//!
//! Entities and description terms need printable names so that (a) the
//! demo modules render readable digests and (b) the document renderer
//! can produce text the extraction pipeline re-annotates. Names are
//! syllable compositions, deterministic per `(seed, index)`.

use storypivot_sketch::mix64;

const ONSETS: &[&str] = &[
    "b", "br", "d", "dr", "f", "g", "gr", "k", "kr", "l", "m", "n", "p", "pr", "r", "s", "st",
    "t", "tr", "v", "z", "sh", "ch", "th",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ia", "ea", "ou"];
const CODAS: &[&str] = &["", "n", "r", "l", "s", "m", "nd", "rk", "st", "x"];

fn syllable(mut h: u64) -> (String, u64) {
    let onset = ONSETS[(h % ONSETS.len() as u64) as usize];
    h = mix64(h);
    let vowel = VOWELS[(h % VOWELS.len() as u64) as usize];
    h = mix64(h);
    let coda = CODAS[(h % CODAS.len() as u64) as usize];
    h = mix64(h);
    (format!("{onset}{vowel}{coda}"), h)
}

/// A pronounceable lowercase pseudo-word of 2–3 syllables for
/// `(seed, index)`.
pub fn pseudo_word(seed: u64, index: u64) -> String {
    let mut h = mix64(seed ^ mix64(index).rotate_left(17));
    let syllables = 2 + (h % 2) as usize;
    h = mix64(h);
    let mut word = String::new();
    for _ in 0..syllables {
        let (s, nh) = syllable(h);
        word.push_str(&s);
        h = nh;
    }
    word
}

/// A capitalized entity name (1–2 words) for `(seed, index)`; e.g.
/// "Velonia" or "Kamara Front".
pub fn entity_name(seed: u64, index: u64) -> String {
    let mut h = mix64(seed.wrapping_add(0xE27) ^ mix64(index));
    let capitalize = |w: String| -> String {
        let mut c = w.chars();
        match c.next() {
            Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
            None => w,
        }
    };
    let first = capitalize(pseudo_word(seed ^ 0xE1, index));
    h = mix64(h);
    if h.is_multiple_of(4) {
        let second = capitalize(pseudo_word(seed ^ 0xE2, index));
        format!("{first} {second}")
    } else {
        first
    }
}

/// A short uppercase alias (3 letters) for an entity, GDELT-actor-code
/// style: "VEL" for "Velonia".
pub fn entity_code(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphabetic())
        .take(3)
        .flat_map(char::to_uppercase)
        .collect()
}

/// A source name for `index`: `The <Word> <Kind>`.
pub fn source_name(seed: u64, index: u64, kind: &str) -> String {
    let w = pseudo_word(seed ^ 0x50CE, index);
    let mut c = w.chars();
    let cap = match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => w,
    };
    format!("The {cap} {kind}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_deterministic() {
        assert_eq!(pseudo_word(1, 5), pseudo_word(1, 5));
        assert_eq!(entity_name(1, 5), entity_name(1, 5));
    }

    #[test]
    fn different_indices_differ_mostly() {
        let names: std::collections::HashSet<String> =
            (0..500).map(|i| entity_name(42, i)).collect();
        // Collisions are possible but must be rare.
        assert!(names.len() > 450, "only {} distinct names", names.len());
    }

    #[test]
    fn words_are_lowercase_ascii() {
        for i in 0..100 {
            let w = pseudo_word(7, i);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 3);
        }
    }

    #[test]
    fn entity_names_are_capitalized() {
        for i in 0..50 {
            let n = entity_name(7, i);
            assert!(n.chars().next().unwrap().is_uppercase(), "{n}");
        }
    }

    #[test]
    fn codes_are_three_uppercase_letters() {
        assert_eq!(entity_code("Velonia"), "VEL");
        assert_eq!(entity_code("Kamara Front"), "KAM");
        assert_eq!(entity_code("ab"), "AB");
    }

    #[test]
    fn source_names_have_kind() {
        let n = source_name(1, 0, "Times");
        assert!(n.starts_with("The "));
        assert!(n.ends_with(" Times"));
    }
}
