//! The sharded, backpressured, crash-safe TCP server.
//!
//! Topology: one acceptor thread, one handler thread per connection,
//! and N *shard* worker threads. Each shard owns a full
//! [`DynamicPivot`] engine holding a disjoint subset of sources
//! (`source id mod N`), so identification — which is per-source by
//! construction (paper §2.1) — is embarrassingly parallel across
//! shards, and alignment runs per shard over its own sources.
//!
//! Handlers never touch an engine: every frame becomes a [`Job`] routed
//! to its shard through a bounded queue ([`substrate::queue::Bounded`]).
//! When an ingest hits a full queue the handler replies BUSY with a
//! retry-after hint instead of buffering — memory is bounded by
//! `shards × queue_depth` jobs no matter how fast clients push. Batch
//! ingests and control frames (query/stats/shutdown) block on the queue
//! instead: they are few, and blocking keeps their semantics simple.
//!
//! # Durability
//!
//! With a `wal_dir` configured, every state-changing job is journaled
//! to the shard's write-ahead log ([`substrate::wal`], payloads are
//! [`core::oplog::ReplayOp`]) *before* it touches the engine. On
//! startup each shard loads its newest valid generation checkpoint
//! (`shard{i}.g{N}.spvc`, written atomically via temp file + rename)
//! and replays the WAL tail on top; replay is idempotent, so the crash
//! window between "checkpoint written" and "WAL truncated" is safe.
//! Once the WAL grows past `checkpoint_every_bytes` the shard writes a
//! fresh generation and truncates the log, bounding recovery time.
//!
//! # Supervision
//!
//! A panic inside an engine apply is caught in the worker
//! (`catch_unwind`); the shard's engine is rebuilt from checkpoint +
//! WAL and the worker keeps draining its queue — other shards never
//! notice. An operation that panics the shard *again* during the
//! rebuild replay is quarantined: appended to the shard's dead-letter
//! file (`shard{i}.dead`), skipped by all future replays, and rejected
//! if resubmitted. STATS reports `restarts` and `quarantined` per
//! shard.
//!
//! SHUTDOWN drains: a `Drain` job is pushed behind all accepted work on
//! every shard, each shard flushes its engine (final alignment +
//! refinement) and writes a checkpoint generation, the queues are
//! closed, and only then is the ack sent.
//!
//! # Observability
//!
//! Each shard owns a private [`substrate::metrics::Registry`]; its
//! engine, WAL, and the per-shard serving gauges (queue depth,
//! restarts, quarantined ops, BUSY rejections — labeled `shard="N"`)
//! all record into it. The `METRICS` opcode snapshots every shard's
//! registry, merges the snapshots (counters add, histograms merge
//! bucket-wise), and renders one Prometheus-style text exposition.
//! Each shard also keeps a fixed-capacity [`substrate::trace::TraceRing`]
//! of recent engine events; when an apply panics, the ring is dumped to
//! stderr (and `shard{i}.trace` next to the durable state) *before* the
//! engine is rebuilt, preserving the lead-up to the crash.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use storypivot_core::checkpoint;
use storypivot_core::config::PivotConfig;
use storypivot_core::metrics::EngineMetrics;
use storypivot_core::oplog::{replay_op, ReplayOp};
use storypivot_core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot_core::refine::story_source;
use storypivot_substrate::metrics::{Gauge, HistogramMetric, Registry, Snapshot};
use storypivot_substrate::queue::{Bounded, PushError};
use storypivot_substrate::timing::Histogram;
use storypivot_substrate::trace::TraceRing;
use storypivot_substrate::wal::{self, SyncPolicy, Wal, WalMetrics};
use storypivot_types::{DocId, Error, Result, Snippet, Source, SourceId, SourceKind, StoryId};

use crate::proto::{frame, read_frame, Request, Response, StorySummary};
use crate::stats::{ServeStats, ShardStats};

/// The maximum number of sources the story-id partitioning scheme
/// supports (see `core::identify::STORY_ID_STRIDE`).
const MAX_SOURCES: u32 = 256;

/// Ingesting a snippet with this exact headline makes the owning shard
/// worker panic — **in debug builds only** — providing a failure
/// injection hook for exercising the supervision path (engine restart,
/// two-strike dead-letter quarantine) from integration tests. Release
/// builds treat it as an ordinary headline.
pub const POISON_HEADLINE: &str = "__pivotd_poison_panic__";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard worker threads (engines). Sources are routed by
    /// `source id mod shards`.
    pub shards: usize,
    /// Bounded depth of each shard's job queue; a full queue turns
    /// single-snippet ingests into BUSY replies.
    pub queue_depth: usize,
    /// Engine configuration applied to every shard.
    pub pivot: PivotConfig,
    /// Per-shard incremental re-alignment period (snippets); see
    /// [`PipelinePolicy::align_every`].
    pub align_every: usize,
    /// Where checkpoint generations are written
    /// (`shard{i}.g{N}.spvc`, atomic temp-file + rename); `None`
    /// disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Where per-shard write-ahead logs live (`shard{i}.wal`); `None`
    /// disables journaling (and with it crash recovery of un-checkpointed
    /// work).
    pub wal_dir: Option<PathBuf>,
    /// When each WAL append is forced to disk.
    pub fsync: SyncPolicy,
    /// Write a checkpoint generation and truncate the WAL once it
    /// exceeds this many bytes (0 disables size-triggered checkpoints;
    /// requires both `wal_dir` and `checkpoint_dir`).
    pub checkpoint_every_bytes: u64,
    /// The retry-after hint carried by BUSY replies, in milliseconds.
    pub retry_after_ms: u32,
    /// Artificial per-job delay in each shard worker. Zero in
    /// production; tests use it to hold a queue full deterministically.
    pub worker_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 1024,
            pivot: PivotConfig::default(),
            align_every: 256,
            checkpoint_dir: None,
            wal_dir: None,
            fsync: SyncPolicy::Always,
            checkpoint_every_bytes: 8 * 1024 * 1024,
            retry_after_ms: 10,
            worker_delay: Duration::ZERO,
        }
    }
}

/// The reply half of a shard job. `sync_channel(1)` so a shard can
/// always deliver without blocking on a slow handler.
type Reply = SyncSender<Response>;

/// Work routed to one shard.
enum Job {
    AddSource(Source, Reply),
    Ingest(Snippet, Reply),
    IngestMany(Vec<Snippet>, Reply),
    Query(Reply),
    GetStory(StoryId, Reply),
    RemoveDoc(DocId, Reply),
    Stats(Reply),
    /// Snapshot the shard's metrics registry (merged by the router).
    Metrics(SyncSender<Snapshot>),
    /// Flush + checkpoint; the shard replies once its state is durable.
    Drain(Reply),
}

/// State shared between the acceptor, handlers, and [`ServerHandle`].
struct Shared {
    queues: Vec<Bounded<Job>>,
    busy_counters: Vec<Arc<AtomicU64>>,
    next_source: AtomicU32,
    shutting_down: AtomicBool,
    done: AtomicBool,
    retry_after_ms: u32,
}

impl Shared {
    fn shard_of_source(&self, source: SourceId) -> usize {
        source.raw() as usize % self.queues.len()
    }
}

/// A running server: its bound address plus the thread handles needed
/// to wait for a client-driven SHUTDOWN.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a SHUTDOWN has completed (queues closed, checkpoints
    /// written, acceptor stopping).
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (a client must send SHUTDOWN),
    /// then join every shard worker and the acceptor.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

/// Bind and start serving. `addr` may use port 0 for an ephemeral port;
/// the bound address is available via [`ServerHandle::addr`].
///
/// Before any client is accepted, every shard recovers: newest valid
/// checkpoint generation, then WAL tail replay. Source-id allocation
/// resumes past the highest recovered source.
pub fn serve<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> Result<ServerHandle> {
    if cfg.shards == 0 {
        return Err(Error::InvalidConfig("serve: shards must be >= 1".into()));
    }
    if cfg.queue_depth == 0 {
        return Err(Error::InvalidConfig("serve: queue_depth must be >= 1".into()));
    }
    cfg.pivot.validate()?;
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let queues: Vec<Bounded<Job>> = (0..cfg.shards).map(|_| Bounded::new(cfg.queue_depth)).collect();
    let busy_counters: Vec<Arc<AtomicU64>> =
        (0..cfg.shards).map(|_| Arc::new(AtomicU64::new(0))).collect();

    // Recover every shard before serving: clients must never observe a
    // partially recovered partition.
    let mut shard_workers = Vec::with_capacity(cfg.shards);
    for (idx, queue) in queues.iter().enumerate() {
        shard_workers.push(ShardWorker::recover(
            idx,
            &cfg,
            Arc::clone(&busy_counters[idx]),
            queue.clone(),
        )?);
    }
    // Resume source-id allocation past everything the checkpoints and
    // WALs brought back.
    let next_source = shard_workers
        .iter()
        .flat_map(|w| w.engine.pivot().sources().into_iter().map(|s| s.id.raw()))
        .max()
        .map_or(0, |m| m + 1);

    let shared = Arc::new(Shared {
        queues: queues.clone(),
        busy_counters,
        next_source: AtomicU32::new(next_source),
        shutting_down: AtomicBool::new(false),
        done: AtomicBool::new(false),
        retry_after_ms: cfg.retry_after_ms,
    });

    let mut workers = Vec::with_capacity(cfg.shards);
    for shard in shard_workers {
        let idx = shard.idx;
        workers.push(
            std::thread::Builder::new()
                .name(format!("pivot-shard-{idx}"))
                .spawn(move || shard.run())
                .map_err(|e| Error::Io(format!("spawn shard worker: {e}")))?,
        );
    }

    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("pivot-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(|e| Error::Io(format!("spawn acceptor: {e}")))?;

    Ok(ServerHandle {
        addr: bound,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.done.load(Ordering::SeqCst) {
            // Grace sweep: the kernel may have completed handshakes (or
            // have SYNs in flight) that dropping the listener would RST
            // mid-request. Serve them for a short window — post-done
            // dispatch acks SHUTDOWN immediately and rejects mutations
            // with a typed shutting-down error — so a client that
            // connected concurrently with shutdown gets a well-formed
            // reply instead of a connection reset.
            let grace = Instant::now() + Duration::from_millis(50);
            while Instant::now() < grace {
                match listener.accept() {
                    Ok((stream, _)) => spawn_handler(stream, &shared),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => spawn_handler(stream, &shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_handler(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let conn_shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name("pivot-conn".into())
        .spawn(move || handle_connection(stream, conn_shared));
}

/// One connection: read frame → route → write response, until the peer
/// closes or a protocol error desynchronises the stream.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    use std::io::Write as _;
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean close at a frame boundary.
            Ok(None) => return,
            Err(e) => {
                // Torn/oversized frame: report once (best effort) and
                // close — the stream position is no longer trustworthy.
                let resp = Response::from_error(&e);
                let _ = writer.write_all(&frame(|b| resp.encode(b)));
                let _ = writer.flush();
                return;
            }
        };
        let (resp, close_after) = match Request::decode(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                (dispatch(&shared, req), is_shutdown)
            }
            // Garbage opcode / truncated body: reply, then close.
            Err(e) => (Response::from_error(&e), true),
        };
        if writer.write_all(&frame(|b| resp.encode(b))).is_err() {
            return;
        }
        let _ = writer.flush();
        if close_after {
            return;
        }
    }
}

fn reply_channel() -> (Reply, std::sync::mpsc::Receiver<Response>) {
    std::sync::mpsc::sync_channel(1)
}

/// Await one shard's reply; a dead shard (worker exited or panicked)
/// becomes an error response rather than a hang.
fn await_reply(rx: std::sync::mpsc::Receiver<Response>) -> Response {
    rx.recv().unwrap_or(Response::Error {
        code: 7,
        message: "shard worker unavailable".into(),
    })
}

/// Push a control-plane job, blocking while the queue is full. Returns
/// an error response when the queue is closed (server shutting down).
fn push_blocking(queue: &Bounded<Job>, job: Job) -> Option<Response> {
    match queue.push(job) {
        Ok(()) => None,
        Err(_) => Some(Response::Error {
            code: 7,
            message: "server is shutting down".into(),
        }),
    }
}

fn dispatch(shared: &Arc<Shared>, req: Request) -> Response {
    match req {
        Request::AddSource { name, kind, lag } => add_source(shared, name, kind, lag),
        Request::IngestSnippet(snippet) => ingest_one(shared, snippet),
        Request::IngestBatch(batch) => ingest_batch(shared, batch),
        Request::QueryStories => broadcast_merge(shared, Job::Query, |responses| {
            let mut stories = Vec::new();
            for r in responses {
                match r {
                    Response::Stories(mut s) => stories.append(&mut s),
                    other => return other,
                }
            }
            stories.sort_unstable_by_key(|s: &StorySummary| s.id);
            Response::Stories(stories)
        }),
        Request::GetStory(id) => {
            let shard = shared.shard_of_source(story_source(id));
            let (tx, rx) = reply_channel();
            if let Some(err) = push_blocking(&shared.queues[shard], Job::GetStory(id, tx)) {
                return err;
            }
            await_reply(rx)
        }
        Request::RemoveDoc(doc) => broadcast_merge(shared, move |tx| Job::RemoveDoc(doc, tx), {
            move |responses| {
                let mut total = 0u32;
                for r in responses {
                    match r {
                        Response::Removed(n) => total += n,
                        other => return other,
                    }
                }
                if total == 0 {
                    Response::from_error(&Error::UnknownDocument(doc))
                } else {
                    Response::Removed(total)
                }
            }
        }),
        Request::Stats => broadcast_merge(shared, Job::Stats, |responses| {
            let mut shards = Vec::new();
            for r in responses {
                match r {
                    Response::Stats(s) => shards.extend(s.shards),
                    other => return other,
                }
            }
            shards.sort_unstable_by_key(|s: &ShardStats| s.shard);
            Response::Stats(ServeStats { shards })
        }),
        Request::Shutdown => shutdown(shared),
        Request::Metrics => metrics_exposition(shared),
    }
}

/// Snapshot every shard's registry, merge, and render one exposition.
fn metrics_exposition(shared: &Arc<Shared>) -> Response {
    let mut pending = Vec::with_capacity(shared.queues.len());
    for queue in &shared.queues {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        if let Some(err) = push_blocking(queue, Job::Metrics(tx)) {
            return err;
        }
        pending.push(rx);
    }
    let mut merged = Snapshot::default();
    for rx in pending {
        match rx.recv() {
            Ok(snap) => merged.merge(&snap),
            Err(_) => {
                return Response::Error {
                    code: 7,
                    message: "shard worker unavailable".into(),
                }
            }
        }
    }
    Response::Metrics {
        text: merged.render(),
    }
}

fn add_source(shared: &Arc<Shared>, name: String, kind: SourceKind, lag: i64) -> Response {
    let id = shared.next_source.fetch_add(1, Ordering::SeqCst);
    if id >= MAX_SOURCES {
        return Response::from_error(&Error::InvalidConfig(format!(
            "source limit reached ({MAX_SOURCES}): story-id partitioning supports at most \
             {MAX_SOURCES} sources"
        )));
    }
    let source = Source::new(SourceId::new(id), name, kind).with_lag(lag);
    let shard = shared.shard_of_source(source.id);
    let (tx, rx) = reply_channel();
    if let Some(err) = push_blocking(&shared.queues[shard], Job::AddSource(source, tx)) {
        return err;
    }
    await_reply(rx)
}

/// The BUSY fast path: one snippet, one `try_push`. A full shard queue
/// is the client's problem (retry after the hint), never the server's
/// memory.
fn ingest_one(shared: &Arc<Shared>, snippet: Snippet) -> Response {
    let shard = shared.shard_of_source(snippet.source);
    let (tx, rx) = reply_channel();
    match shared.queues[shard].try_push(Job::Ingest(snippet, tx)) {
        Ok(()) => await_reply(rx),
        Err(PushError::Full(_)) => {
            shared.busy_counters[shard].fetch_add(1, Ordering::Relaxed);
            Response::Busy {
                retry_after_ms: shared.retry_after_ms,
            }
        }
        Err(PushError::Closed(_)) => Response::Error {
            code: 7,
            message: "server is shutting down".into(),
        },
    }
}

/// Batch ingest: split by shard (preserving order within each shard),
/// block on full queues — a bulk load wants backpressure, not retries —
/// and sum the per-shard counts.
fn ingest_batch(shared: &Arc<Shared>, batch: Vec<Snippet>) -> Response {
    let n_shards = shared.queues.len();
    let mut by_shard: Vec<Vec<Snippet>> = vec![Vec::new(); n_shards];
    for s in batch {
        let shard = shared.shard_of_source(s.source);
        by_shard[shard].push(s);
    }
    let mut pending = Vec::new();
    for (shard, sub) in by_shard.into_iter().enumerate() {
        if sub.is_empty() {
            continue;
        }
        let (tx, rx) = reply_channel();
        if let Some(err) = push_blocking(&shared.queues[shard], Job::IngestMany(sub, tx)) {
            return err;
        }
        pending.push(rx);
    }
    let mut total = 0u32;
    for rx in pending {
        match await_reply(rx) {
            Response::BatchIngested(n) => total += n,
            other => return other,
        }
    }
    Response::BatchIngested(total)
}

/// Send one job to every shard and merge the replies.
fn broadcast_merge(
    shared: &Arc<Shared>,
    make_job: impl Fn(Reply) -> Job,
    merge: impl FnOnce(Vec<Response>) -> Response,
) -> Response {
    let mut pending = Vec::with_capacity(shared.queues.len());
    for queue in &shared.queues {
        let (tx, rx) = reply_channel();
        if let Some(err) = push_blocking(queue, make_job(tx)) {
            return err;
        }
        pending.push(rx);
    }
    merge(pending.into_iter().map(await_reply).collect())
}

/// Drain + checkpoint every shard, close the queues, stop accepting.
/// Idempotent: concurrent or repeated SHUTDOWNs all ack.
fn shutdown(shared: &Arc<Shared>) -> Response {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        // Another connection is already driving the shutdown; wait for
        // it to finish so the ack means "durable".
        while !shared.done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        return Response::ShutdownAck;
    }
    let mut pending = Vec::with_capacity(shared.queues.len());
    for queue in &shared.queues {
        let (tx, rx) = reply_channel();
        // The Drain sits behind all previously accepted work: by the
        // time a shard replies, its queue prefix has been fully applied.
        if push_blocking(queue, Job::Drain(tx)).is_none() {
            pending.push(rx);
        }
    }
    let mut failure = None;
    for rx in pending {
        match await_reply(rx) {
            Response::ShutdownAck => {}
            other => failure = Some(other),
        }
    }
    for queue in &shared.queues {
        queue.close();
    }
    shared.done.store(true, Ordering::SeqCst);
    failure.unwrap_or(Response::ShutdownAck)
}

// ---- shard worker ----------------------------------------------------

/// What a successfully applied mutation produced.
enum Applied {
    Source(SourceId),
    Story(StoryId),
    Removed(u32),
}

/// The debug-only failure-injection hook: runs in both the live apply
/// path and the rebuild replay path, so an injected panic is
/// deterministic across restarts (which is what earns it a second
/// strike and the quarantine).
fn poison_check(op: &ReplayOp) {
    if cfg!(debug_assertions) {
        if let ReplayOp::Ingest(snippet) = op {
            if snippet.content.headline == POISON_HEADLINE {
                panic!("injected poison snippet (debug-only failure hook)");
            }
        }
    }
}

/// Trace-ring label for a mutation.
fn op_label(op: &ReplayOp) -> &'static str {
    match op {
        ReplayOp::AddSource(_) => "add_source",
        ReplayOp::Ingest(_) => "ingest",
        ReplayOp::RemoveDoc(_) => "remove_doc",
    }
}

/// Apply one mutation to a live engine. Shared by the serving path and
/// (via [`replay_op`]'s equivalent semantics) mirrored by recovery.
fn apply_live(engine: &mut DynamicPivot, op: &ReplayOp) -> Result<Applied> {
    poison_check(op);
    match op {
        ReplayOp::AddSource(source) => engine
            .pivot_mut()
            .add_source_registered(source.clone())
            .map(Applied::Source),
        ReplayOp::Ingest(snippet) => engine.ingest(snippet.clone()).map(Applied::Story),
        ReplayOp::RemoveDoc(doc) => match engine.pivot_mut().remove_document(*doc) {
            Ok(n) => Ok(Applied::Removed(n as u32)),
            // Sharding splits documents across engines: "unknown here"
            // just means zero local snippets; the router sums.
            Err(Error::UnknownDocument(_)) => Ok(Applied::Removed(0)),
            Err(e) => Err(e),
        },
    }
}

/// Per-shard serving-layer metric handles, labeled `shard="N"` so the
/// merged exposition keeps them distinguishable across shards.
struct ShardServeMetrics {
    queue_depth: Gauge,
    queue_capacity: Gauge,
    restarts: Gauge,
    quarantined: Gauge,
    busy_rejections: Gauge,
    ingest_latency: HistogramMetric,
}

impl ShardServeMetrics {
    fn register(registry: &Registry, shard: usize) -> Self {
        let id = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &id)];
        ShardServeMetrics {
            queue_depth: registry.gauge_with(
                "storypivot_shard_queue_depth",
                "Jobs currently waiting in the shard's bounded queue.",
                labels,
            ),
            queue_capacity: registry.gauge_with(
                "storypivot_shard_queue_capacity",
                "Capacity of the shard's bounded queue.",
                labels,
            ),
            restarts: registry.gauge_with(
                "storypivot_shard_restarts",
                "Engine rebuilds after a panic on this shard.",
                labels,
            ),
            quarantined: registry.gauge_with(
                "storypivot_shard_quarantined",
                "Operations dead-lettered on this shard.",
                labels,
            ),
            busy_rejections: registry.gauge_with(
                "storypivot_shard_busy_rejections",
                "Ingests rejected with BUSY because the queue was full.",
                labels,
            ),
            ingest_latency: registry.histogram_with(
                "storypivot_shard_ingest_latency_ns",
                "End-to-end shard-side ingest latency (journal + apply) in nanoseconds.",
                labels,
            ),
        }
    }
}

struct ShardWorker {
    idx: usize,
    engine: DynamicPivot,
    /// Engine config + pipeline policy, kept for rebuilds.
    pivot_cfg: PivotConfig,
    policy: PipelinePolicy,
    hist: Histogram,
    ingested: u64,
    queries: u64,
    busy: Arc<AtomicU64>,
    queue: Bounded<Job>,
    /// The shard's private metrics registry; engine, WAL, and serving
    /// gauges all record here, and `METRICS` snapshots it.
    registry: Registry,
    /// Engine handles, re-attached to every rebuilt engine.
    engine_metrics: EngineMetrics,
    serve_metrics: ShardServeMetrics,
    /// Recent engine events, dumped when an apply panics.
    trace: TraceRing,
    /// Where the panic-time trace dump is written (next to the WAL or
    /// checkpoints); `None` keeps the dump on stderr only.
    trace_path: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every_bytes: u64,
    worker_delay: Duration,
    wal: Option<Wal>,
    wal_path: Option<PathBuf>,
    /// Dead-letter file for quarantined ops (next to the WAL, or the
    /// checkpoint dir when journaling is off).
    dead_path: Option<PathBuf>,
    dead: Option<Wal>,
    /// Newest checkpoint generation written or loaded so far.
    generation: u64,
    ops_since_checkpoint: u64,
    restarts: u64,
    quarantined: u64,
    /// Panic count per op fingerprint; two strikes quarantine.
    strikes: HashMap<u64, u32>,
    /// Fingerprints of dead-lettered ops: skipped on replay, rejected
    /// on resubmission.
    quarantine: HashSet<u64>,
}

impl ShardWorker {
    /// Build shard `idx` from durable state: load the dead-letter set,
    /// open (and tail-repair) the WAL, restore the newest valid
    /// checkpoint generation, and replay the WAL tail on top.
    fn recover(
        idx: usize,
        cfg: &ServerConfig,
        busy: Arc<AtomicU64>,
        queue: Bounded<Job>,
    ) -> Result<ShardWorker> {
        let policy = PipelinePolicy {
            align_every: cfg.align_every,
            ..PipelinePolicy::default()
        };
        let state_dir = cfg.wal_dir.as_ref().or(cfg.checkpoint_dir.as_ref());
        let dead_path = state_dir.map(|d| d.join(format!("shard{idx}.dead")));
        let trace_path = state_dir.map(|d| d.join(format!("shard{idx}.trace")));

        let mut quarantine = HashSet::new();
        let mut quarantined = 0u64;
        if let Some(path) = &dead_path {
            match wal::scan(path) {
                Ok(scan) => {
                    for payload in &scan.records {
                        if let Ok(op) = ReplayOp::decode(payload) {
                            if quarantine.insert(op.fingerprint()) {
                                quarantined += 1;
                            }
                        }
                    }
                }
                Err(e) => eprintln!(
                    "pivotd: shard {idx}: dead-letter file {} unreadable: {e}",
                    path.display()
                ),
            }
        }

        let registry = Registry::new();
        let engine_metrics = EngineMetrics::register(&registry);
        let serve_metrics = ShardServeMetrics::register(&registry, idx);

        let mut worker = ShardWorker {
            idx,
            engine: DynamicPivot::new(cfg.pivot.clone(), policy),
            pivot_cfg: cfg.pivot.clone(),
            policy,
            hist: Histogram::new(),
            ingested: 0,
            queries: 0,
            busy,
            queue,
            registry,
            engine_metrics,
            serve_metrics,
            trace: TraceRing::new(256),
            trace_path,
            checkpoint_dir: cfg.checkpoint_dir.clone(),
            checkpoint_every_bytes: cfg.checkpoint_every_bytes,
            worker_delay: cfg.worker_delay,
            wal: None,
            wal_path: None,
            dead_path,
            dead: None,
            generation: 0,
            ops_since_checkpoint: 0,
            restarts: 0,
            quarantined,
            strikes: HashMap::new(),
            quarantine,
        };

        if let Some(wal_dir) = &cfg.wal_dir {
            std::fs::create_dir_all(wal_dir)
                .map_err(|e| Error::Io(format!("create {}: {e}", wal_dir.display())))?;
            let path = wal_dir.join(format!("shard{idx}.wal"));
            let (mut wal, scan) = Wal::open(&path, cfg.fsync)
                .map_err(|e| Error::Io(format!("open wal {}: {e}", path.display())))?;
            let shard_label = idx.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard_label)];
            wal.set_metrics(WalMetrics {
                append_duration: worker.registry.histogram_with(
                    "storypivot_wal_append_duration_ns",
                    "Duration of each WAL append in nanoseconds.",
                    labels,
                ),
                sync_duration: worker.registry.histogram_with(
                    "storypivot_wal_sync_duration_ns",
                    "Duration of each WAL fsync in nanoseconds.",
                    labels,
                ),
                appended_bytes: worker.registry.counter_with(
                    "storypivot_wal_appended_bytes_total",
                    "Journal bytes appended, framing included.",
                    labels,
                ),
            });
            if scan.damaged() {
                eprintln!(
                    "pivotd: shard {idx}: wal {} had a torn tail; dropped {} trailing bytes",
                    path.display(),
                    scan.dropped_bytes
                );
            }
            worker.wal_path = Some(path);
            worker.wal = Some(wal);
        }

        worker.rebuild();
        Ok(worker)
    }

    fn run(mut self) {
        while let Some(job) = self.queue.pop() {
            if !self.worker_delay.is_zero() {
                std::thread::sleep(self.worker_delay);
            }
            // A dropped receiver (handler gone) is not an error.
            match job {
                Job::AddSource(source, reply) => drop(reply.send(self.add_source(source))),
                Job::Ingest(snippet, reply) => drop(reply.send(self.ingest(snippet))),
                Job::IngestMany(batch, reply) => drop(reply.send(self.ingest_many(batch))),
                Job::Query(reply) => drop(reply.send(self.query())),
                Job::GetStory(id, reply) => drop(reply.send(self.get_story(id))),
                Job::RemoveDoc(doc, reply) => drop(reply.send(self.remove_doc(doc))),
                Job::Stats(reply) => drop(reply.send(self.stats())),
                Job::Metrics(reply) => drop(reply.send(self.metrics_snapshot())),
                Job::Drain(reply) => drop(reply.send(self.drain())),
            }
        }
    }

    /// Journal, then apply under `catch_unwind`. A panic rebuilds the
    /// engine from durable state and replies with an error instead of
    /// killing the worker; the op's strike count decides quarantine.
    fn mutate(&mut self, op: ReplayOp) -> Result<Applied> {
        let fp = op.fingerprint();
        self.trace.push(op_label(&op), format!("fp={fp:#018x}"));
        if self.quarantine.contains(&fp) {
            return Err(Error::Invariant(format!(
                "operation {fp:#018x} is quarantined on shard {} \
                 (dead-lettered after repeated panics)",
                self.idx
            )));
        }
        if let Some(w) = &mut self.wal {
            w.append(&op.to_bytes())
                .map_err(|e| Error::Io(format!("shard {} wal append: {e}", self.idx)))?;
        }
        let engine = &mut self.engine;
        match catch_unwind(AssertUnwindSafe(|| apply_live(engine, &op))) {
            Ok(result) => {
                if result.is_ok() {
                    self.ops_since_checkpoint += 1;
                    self.maybe_checkpoint();
                }
                result
            }
            Err(_) => {
                self.restarts += 1;
                *self.strikes.entry(fp).or_insert(0) += 1;
                self.dump_trace(fp);
                self.rebuild();
                let quarantined_now = self.quarantine.contains(&fp);
                Err(Error::Invariant(format!(
                    "shard {} panicked applying the operation; engine rebuilt from \
                     checkpoint + wal{}",
                    self.idx,
                    if quarantined_now {
                        " and the operation was quarantined"
                    } else {
                        ""
                    }
                )))
            }
        }
    }

    /// Dump the shard's recent-event trace before the engine is torn
    /// down: stderr always, plus `shard{i}.trace` when a durable state
    /// directory exists. Best effort — a failed write never blocks the
    /// rebuild.
    fn dump_trace(&mut self, fp: u64) {
        let dump = format!(
            "pivotd: shard {}: panic applying op {fp:#018x}; last {} events:\n{}",
            self.idx,
            self.trace.len(),
            self.trace.render()
        );
        eprintln!("{dump}");
        if let Some(path) = &self.trace_path {
            if let Err(e) = std::fs::write(path, &dump) {
                eprintln!(
                    "pivotd: shard {}: trace dump to {} failed: {e}",
                    self.idx,
                    path.display()
                );
            }
        }
    }

    /// Refresh the serving gauges and snapshot the shard's registry.
    fn metrics_snapshot(&mut self) -> Snapshot {
        self.sync_gauges();
        self.registry.snapshot()
    }

    fn sync_gauges(&self) {
        let m = &self.serve_metrics;
        m.queue_depth.set(self.queue.len() as i64);
        m.queue_capacity.set(self.queue.capacity() as i64);
        m.restarts.set(self.restarts as i64);
        m.quarantined.set(self.quarantined as i64);
        m.busy_rejections.set(self.busy.load(Ordering::Relaxed) as i64);
    }

    /// Reconstruct the engine from the newest valid checkpoint plus the
    /// WAL tail. An op that panics during replay earns a strike; at two
    /// strikes it is dead-lettered, and the replay restarts without it.
    /// Terminates: every restart either quarantines an op or arms its
    /// second strike.
    fn rebuild(&mut self) {
        self.trace.push("rebuild", String::new());
        loop {
            let mut engine = self.engine_from_checkpoint();
            let records = match &self.wal_path {
                Some(path) => match wal::scan(path) {
                    Ok(scan) => scan.records,
                    Err(e) => {
                        eprintln!(
                            "pivotd: shard {}: wal scan failed during rebuild: {e}",
                            self.idx
                        );
                        Vec::new()
                    }
                },
                None => Vec::new(),
            };
            let mut repanicked = false;
            for payload in &records {
                let op = match ReplayOp::decode(payload) {
                    Ok(op) => op,
                    Err(e) => {
                        eprintln!("pivotd: shard {}: undecodable wal record skipped: {e}", self.idx);
                        continue;
                    }
                };
                let fp = op.fingerprint();
                if self.quarantine.contains(&fp) {
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| replay_with_poison(&mut engine, &op))) {
                    Ok(Ok(_)) => {}
                    Ok(Err(e)) => eprintln!(
                        "pivotd: shard {}: replay error (op skipped): {e}",
                        self.idx
                    ),
                    Err(_) => {
                        self.restarts += 1;
                        let strikes = self.strikes.entry(fp).or_insert(0);
                        *strikes += 1;
                        if *strikes >= 2 {
                            self.quarantine_op(&op);
                        }
                        repanicked = true;
                        break;
                    }
                }
            }
            if !repanicked {
                self.engine = engine;
                // A rebuilt engine starts with detached handles; point
                // it back at the shard's registry.
                self.engine.pivot_mut().set_metrics(self.engine_metrics.clone());
                return;
            }
        }
    }

    /// Newest valid checkpoint generation, or a fresh engine.
    fn engine_from_checkpoint(&mut self) -> DynamicPivot {
        if let Some(dir) = &self.checkpoint_dir {
            let timer = self.engine_metrics.checkpoint_load_duration.start();
            match checkpoint::load_newest(dir, self.idx, self.pivot_cfg.clone()) {
                Ok(Some((pivot, generation))) => {
                    drop(timer);
                    self.generation = self.generation.max(generation);
                    return DynamicPivot::from_pivot(pivot, self.policy);
                }
                Ok(None) => timer.discard(),
                Err(e) => {
                    timer.discard();
                    eprintln!(
                        "pivotd: shard {}: checkpoint load failed ({e}); starting empty",
                        self.idx
                    );
                }
            }
        }
        DynamicPivot::new(self.pivot_cfg.clone(), self.policy)
    }

    /// Dead-letter an op: remember its fingerprint and append its bytes
    /// to `shard{i}.dead` so the quarantine survives restarts.
    fn quarantine_op(&mut self, op: &ReplayOp) {
        let fp = op.fingerprint();
        if !self.quarantine.insert(fp) {
            return;
        }
        self.quarantined += 1;
        eprintln!(
            "pivotd: shard {}: quarantining operation {fp:#018x} after repeated panics",
            self.idx
        );
        if let Some(path) = &self.dead_path {
            let outcome = match self.dead.as_mut() {
                Some(d) => d.append(&op.to_bytes()).map(|_| ()),
                None => match Wal::open(path, SyncPolicy::Always) {
                    Ok((mut d, _)) => {
                        let r = d.append(&op.to_bytes()).map(|_| ());
                        self.dead = Some(d);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = outcome {
                eprintln!(
                    "pivotd: shard {}: dead-letter write to {} failed: {e}",
                    self.idx,
                    path.display()
                );
            }
        }
    }

    /// Size-triggered checkpoint: once the WAL is past the threshold,
    /// persist a generation and truncate the log.
    fn maybe_checkpoint(&mut self) {
        if self.checkpoint_every_bytes == 0 || self.checkpoint_dir.is_none() {
            return;
        }
        let due = self
            .wal
            .as_ref()
            .is_some_and(|w| w.len() >= self.checkpoint_every_bytes);
        if due {
            if let Err(e) = self.checkpoint_now() {
                eprintln!("pivotd: shard {}: periodic checkpoint failed: {e}", self.idx);
            }
        }
    }

    /// Write checkpoint generation N+1 (atomic temp-file + rename),
    /// then truncate the WAL. Crashing between the two is safe: replay
    /// of the stale tail is idempotent.
    fn checkpoint_now(&mut self) -> Result<()> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Ok(());
        };
        let bytes = self.engine.pivot().save_checkpoint();
        self.generation += 1;
        self.trace
            .push("checkpoint", format!("generation {}", self.generation));
        checkpoint::write_generation(&dir, self.idx, self.generation, &bytes)?;
        if let Some(w) = &mut self.wal {
            w.reset()
                .map_err(|e| Error::Io(format!("shard {} wal reset: {e}", self.idx)))?;
        }
        self.ops_since_checkpoint = 0;
        Ok(())
    }

    fn add_source(&mut self, source: Source) -> Response {
        match self.mutate(ReplayOp::AddSource(source)) {
            Ok(Applied::Source(id)) => Response::SourceAdded(id),
            Ok(_) => internal_shape_error(),
            Err(e) => Response::from_error(&e),
        }
    }

    fn ingest(&mut self, snippet: Snippet) -> Response {
        let t = Instant::now();
        match self.mutate(ReplayOp::Ingest(snippet)) {
            Ok(Applied::Story(story)) => {
                let elapsed = t.elapsed().as_nanos() as u64;
                self.hist.record(elapsed);
                self.serve_metrics.ingest_latency.record(elapsed);
                self.ingested += 1;
                Response::Ingested(story)
            }
            Ok(_) => internal_shape_error(),
            Err(e) => Response::from_error(&e),
        }
    }

    fn ingest_many(&mut self, batch: Vec<Snippet>) -> Response {
        let mut count = 0u32;
        for snippet in batch {
            let t = Instant::now();
            match self.mutate(ReplayOp::Ingest(snippet)) {
                Ok(Applied::Story(_)) => {
                    let elapsed = t.elapsed().as_nanos() as u64;
                    self.hist.record(elapsed);
                    self.serve_metrics.ingest_latency.record(elapsed);
                    self.ingested += 1;
                    count += 1;
                }
                Ok(_) => return internal_shape_error(),
                Err(e) => {
                    return Response::Error {
                        code: crate::proto::error_code(&e),
                        message: format!("{e} (after {count} snippets of the batch)"),
                    }
                }
            }
        }
        Response::BatchIngested(count)
    }

    fn summaries(&self) -> Vec<StorySummary> {
        let pivot = self.engine.pivot();
        pivot
            .story_partition()
            .into_iter()
            .map(|(id, members)| StorySummary {
                id,
                source: story_source(id),
                lifespan: pivot.story(id).expect("partitioned story exists").lifespan(),
                members,
            })
            .collect()
    }

    fn query(&mut self) -> Response {
        self.queries += 1;
        Response::Stories(self.summaries())
    }

    fn get_story(&mut self, id: StoryId) -> Response {
        self.queries += 1;
        match self.engine.pivot().story(id) {
            Some(state) => {
                let mut members = state.story.members.clone();
                members.sort_unstable();
                Response::Story(StorySummary {
                    id,
                    source: state.source(),
                    lifespan: state.lifespan(),
                    members,
                })
            }
            None => Response::from_error(&Error::UnknownStory(id)),
        }
    }

    fn remove_doc(&mut self, doc: DocId) -> Response {
        match self.mutate(ReplayOp::RemoveDoc(doc)) {
            Ok(Applied::Removed(n)) => Response::Removed(n),
            Ok(_) => internal_shape_error(),
            Err(e) => Response::from_error(&e),
        }
    }

    fn stats(&mut self) -> Response {
        self.sync_gauges();
        let pivot = self.engine.pivot();
        Response::Stats(ServeStats {
            shards: vec![ShardStats {
                shard: self.idx as u32,
                sources: pivot.sources().len() as u32,
                queue_depth: self.queue.len() as u32,
                queue_capacity: self.queue.capacity() as u32,
                stories: pivot.story_count() as u64,
                snippets: pivot.store().len() as u64,
                ingested: self.ingested,
                queries: self.queries,
                busy_rejections: self.busy.load(Ordering::Relaxed),
                ingest_count: self.hist.count(),
                ingest_p50_ns: self.hist.percentile(0.50),
                ingest_p95_ns: self.hist.percentile(0.95),
                ingest_p99_ns: self.hist.percentile(0.99),
                wal_bytes: self.wal.as_ref().map_or(0, |w| w.len()),
                last_checkpoint_age_ops: self.ops_since_checkpoint,
                restarts: self.restarts,
                quarantined: self.quarantined,
            }],
        })
    }

    fn drain(&mut self) -> Response {
        self.trace.push("drain", String::new());
        self.engine.flush();
        if self.checkpoint_dir.is_some() {
            if let Err(e) = self.checkpoint_now() {
                return Response::Error {
                    code: 7,
                    message: format!("shard {} checkpoint failed: {e}", self.idx),
                };
            }
        }
        Response::ShutdownAck
    }
}

/// Recovery-side apply: same idempotent semantics as [`replay_op`],
/// plus the poison hook so an injected panic reproduces during replay.
fn replay_with_poison(engine: &mut DynamicPivot, op: &ReplayOp) -> Result<bool> {
    poison_check(op);
    replay_op(engine, op)
}

fn internal_shape_error() -> Response {
    Response::Error {
        code: 6,
        message: "internal: mutation produced a mismatched result shape".into(),
    }
}
