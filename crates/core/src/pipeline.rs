//! The dynamic ingestion pipeline (paper §2.4).
//!
//! Snippets "are generated dynamically every time a news document is
//! published online", arrive out of temporal order, and sources come and
//! go. [`DynamicPivot`] wraps a [`StoryPivot`] with an online policy:
//! every ingested snippet is identified immediately, and incremental
//! re-alignment (plus optional refinement) runs automatically once
//! enough stories are dirty — keeping global stories fresh without
//! paying full alignment per event.

use storypivot_types::{Result, Snippet, StoryId};

use crate::config::PivotConfig;
use crate::pivot::StoryPivot;

/// Policy of the dynamic pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinePolicy {
    /// Re-align after this many ingested snippets (0 = only on
    /// [`DynamicPivot::flush`]).
    pub align_every: usize,
    /// Additionally re-align whenever *event time* advances by this many
    /// seconds past the last alignment (repositories like GDELT publish
    /// on fixed intervals, §1 — e.g. pass one [`storypivot_types::DAY`]
    /// to re-align at day boundaries). `None` disables.
    pub align_every_event_secs: Option<i64>,
    /// Run a refinement pass after every automatic re-alignment.
    pub refine_on_align: bool,
}

impl Default for PipelinePolicy {
    fn default() -> Self {
        PipelinePolicy {
            align_every: 256,
            align_every_event_secs: None,
            refine_on_align: false,
        }
    }
}

/// A [`StoryPivot`] with automatic incremental alignment.
#[derive(Debug, Clone)]
pub struct DynamicPivot {
    pivot: StoryPivot,
    policy: PipelinePolicy,
    since_align: usize,
    auto_aligns: usize,
    max_event_time: Option<storypivot_types::Timestamp>,
    last_align_event_time: Option<storypivot_types::Timestamp>,
}

impl DynamicPivot {
    /// Build a dynamic pipeline.
    pub fn new(config: PivotConfig, policy: PipelinePolicy) -> Self {
        DynamicPivot {
            pivot: StoryPivot::new(config),
            policy,
            since_align: 0,
            auto_aligns: 0,
            max_event_time: None,
            last_align_event_time: None,
        }
    }

    /// Wrap an already-populated engine (e.g. one restored from a
    /// checkpoint) in a dynamic pipeline. The alignment clock starts
    /// fresh: the first post-restore snippet anchors event time, and
    /// count-based alignment counts from zero.
    pub fn from_pivot(pivot: StoryPivot, policy: PipelinePolicy) -> Self {
        DynamicPivot {
            pivot,
            policy,
            since_align: 0,
            auto_aligns: 0,
            max_event_time: None,
            last_align_event_time: None,
        }
    }

    /// The wrapped engine (read access).
    pub fn pivot(&self) -> &StoryPivot {
        &self.pivot
    }

    /// The wrapped engine (write access — manual operations like source
    /// management go through here).
    pub fn pivot_mut(&mut self) -> &mut StoryPivot {
        &mut self.pivot
    }

    /// The active policy.
    pub fn policy(&self) -> PipelinePolicy {
        self.policy
    }

    /// How many automatic alignment passes have run.
    pub fn auto_align_count(&self) -> usize {
        self.auto_aligns
    }

    /// Ingest one snippet; runs incremental alignment when the policy
    /// says it is due (count-based, event-time-based, or both). Returns
    /// the per-source story the snippet joined.
    pub fn ingest(&mut self, snippet: Snippet) -> Result<StoryId> {
        let at = snippet.timestamp;
        let story = self.pivot.ingest(snippet)?;
        self.since_align += 1;
        self.max_event_time = Some(self.max_event_time.map_or(at, |m| m.max(at)));
        let count_due =
            self.policy.align_every > 0 && self.since_align >= self.policy.align_every;
        let time_due = match (self.policy.align_every_event_secs, self.max_event_time) {
            (Some(step), Some(now)) => match self.last_align_event_time {
                Some(last) => now - last >= step,
                None => false, // first alignment anchors the clock
            },
            _ => false,
        };
        if count_due || time_due {
            self.align_now();
        } else if self.last_align_event_time.is_none() && self.policy.align_every_event_secs.is_some() {
            // Anchor the event-time clock at the first snippet.
            self.last_align_event_time = self.max_event_time;
        }
        Ok(story)
    }

    /// Force an alignment (and refinement, per policy) now.
    pub fn align_now(&mut self) {
        self.pivot.align_incremental();
        if self.policy.refine_on_align {
            self.pivot.refine();
        }
        self.since_align = 0;
        self.auto_aligns += 1;
        self.last_align_event_time = self.max_event_time;
    }

    /// Flush: align + refine regardless of policy, returning the number
    /// of refinement moves. Call before reading final results.
    pub fn flush(&mut self) -> usize {
        self.pivot.align_incremental();
        let report = self.pivot.refine();
        self.since_align = 0;
        report.move_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, SourceKind, TermId, Timestamp, DAY};

    fn make(align_every: usize) -> DynamicPivot {
        DynamicPivot::new(
            PivotConfig::default(),
            PipelinePolicy {
                align_every,
                ..PipelinePolicy::default()
            },
        )
    }

    fn snippet(dp: &mut DynamicPivot, source: storypivot_types::SourceId, day: i64, e: u32) -> Snippet {
        let id = dp.pivot_mut().fresh_snippet_id();
        Snippet::builder(id, source, Timestamp::from_secs(day * DAY))
            .entity(EntityId::new(e), 1.0)
            .entity(EntityId::new(e + 1), 1.0)
            .term(TermId::new(e), 1.0)
            .build()
    }

    #[test]
    fn auto_alignment_fires_on_schedule() {
        let mut dp = make(4);
        let a = dp.pivot_mut().add_source("a", SourceKind::Newspaper);
        for day in 0..8 {
            let s = snippet(&mut dp, a, day, 1);
            dp.ingest(s).unwrap();
        }
        assert_eq!(dp.auto_align_count(), 2);
        assert!(!dp.pivot().global_stories().is_empty());
    }

    #[test]
    fn zero_schedule_never_auto_aligns() {
        let mut dp = make(0);
        let a = dp.pivot_mut().add_source("a", SourceKind::Newspaper);
        for day in 0..10 {
            let s = snippet(&mut dp, a, day, 1);
            dp.ingest(s).unwrap();
        }
        assert_eq!(dp.auto_align_count(), 0);
        assert!(dp.pivot().global_stories().is_empty());
        dp.flush();
        assert!(!dp.pivot().global_stories().is_empty());
    }

    #[test]
    fn out_of_order_stream_converges_to_batch_result() {
        // Ingest the same logical stream in order and shuffled; after a
        // flush both must produce the same snippet partition.
        let run = |order: &[usize]| {
            let mut dp = make(3);
            let a = dp.pivot_mut().add_source("a", SourceKind::Newspaper);
            let b = dp.pivot_mut().add_source("b", SourceKind::Newspaper);
            // Build the stream deterministically: 2 stories × 2 sources × 5 days.
            let mut stream = Vec::new();
            for day in 0..5i64 {
                for (src, e) in [(a, 1u32), (a, 50), (b, 1), (b, 50)] {
                    stream.push((src, day, e));
                }
            }
            let mut dpx = dp;
            for &i in order {
                let (src, day, e) = stream[i];
                let id = dpx.pivot_mut().fresh_snippet_id();
                let s = Snippet::builder(id, src, Timestamp::from_secs(day * DAY))
                    .entity(EntityId::new(e), 1.0)
                    .entity(EntityId::new(e + 1), 1.0)
                    .term(TermId::new(e), 1.0)
                    .build();
                dpx.ingest(s).unwrap();
            }
            dpx.flush();
            // Partition as sets of (source, entity-signature) member keys,
            // ignoring snippet ids (which differ between orders).
            let mut partition: Vec<Vec<(u32, i64, u32)>> = dpx
                .pivot()
                .global_stories()
                .iter()
                .map(|g| {
                    let mut v: Vec<(u32, i64, u32)> = g
                        .members
                        .iter()
                        .map(|&(m, _)| {
                            let sn = dpx.pivot().store().get(m).unwrap();
                            let e = sn.entities().keys().next().unwrap().raw();
                            (sn.source.raw(), sn.timestamp.secs(), e)
                        })
                        .collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            partition.sort();
            partition
        };

        let in_order: Vec<usize> = (0..20).collect();
        // A fixed "late local coverage" shuffle: reverse within days.
        let mut shuffled: Vec<usize> = Vec::new();
        for chunk in (0..20).collect::<Vec<_>>().chunks(4) {
            let mut c = chunk.to_vec();
            c.reverse();
            shuffled.extend(c);
        }
        assert_eq!(run(&in_order), run(&shuffled));
    }
}

#[cfg(test)]
mod event_time_policy_tests {
    use super::*;
    use storypivot_types::{EntityId, SourceKind, TermId, Timestamp, DAY};

    #[test]
    fn event_time_policy_aligns_at_day_boundaries() {
        let mut dp = DynamicPivot::new(
            crate::config::PivotConfig::default(),
            PipelinePolicy {
                align_every: 0, // count-based off
                align_every_event_secs: Some(2 * DAY),
                refine_on_align: false,
            },
        );
        let a = dp.pivot_mut().add_source("a", SourceKind::Newspaper);
        for day in 0..9i64 {
            let id = dp.pivot_mut().fresh_snippet_id();
            let s = Snippet::builder(id, a, Timestamp::from_secs(day * DAY))
                .entity(EntityId::new(1), 1.0)
                .term(TermId::new(1), 1.0)
                .build();
            dp.ingest(s).unwrap();
        }
        // Event time advanced 8 days past the anchor with a 2-day step:
        // roughly one alignment per 2 days.
        assert!(
            (3..=5).contains(&dp.auto_align_count()),
            "got {} auto alignments",
            dp.auto_align_count()
        );
        assert!(!dp.pivot().global_stories().is_empty());
    }

    #[test]
    fn out_of_order_events_do_not_rewind_the_clock() {
        let mut dp = DynamicPivot::new(
            crate::config::PivotConfig::default(),
            PipelinePolicy {
                align_every: 0,
                align_every_event_secs: Some(10 * DAY),
                refine_on_align: false,
            },
        );
        let a = dp.pivot_mut().add_source("a", SourceKind::Newspaper);
        // Day 0 anchors; a late day-1 arrival after day 5 must not
        // trigger (5-1 < 10) nor rewind the max-seen clock.
        for day in [0i64, 5, 1, 6] {
            let id = dp.pivot_mut().fresh_snippet_id();
            let s = Snippet::builder(id, a, Timestamp::from_secs(day * DAY))
                .entity(EntityId::new(1), 1.0)
                .build();
            dp.ingest(s).unwrap();
        }
        assert_eq!(dp.auto_align_count(), 0);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use storypivot_types::{EntityId, SourceKind, TermId, Timestamp, DAY};

    #[test]
    fn refine_on_align_policy_runs_refinement() {
        let mut dp = DynamicPivot::new(
            crate::config::PivotConfig::default(),
            PipelinePolicy {
                align_every: 5,
                refine_on_align: true,
                ..PipelinePolicy::default()
            },
        );
        let a = dp.pivot_mut().add_source("a", SourceKind::Newspaper);
        let b = dp.pivot_mut().add_source("b", SourceKind::Newspaper);
        for day in 0..10i64 {
            for src in [a, b] {
                let id = dp.pivot_mut().fresh_snippet_id();
                let s = storypivot_types::Snippet::builder(id, src, Timestamp::from_secs(day * DAY))
                    .entity(EntityId::new(1), 1.0)
                    .entity(EntityId::new(2), 1.0)
                    .term(TermId::new(1), 1.0)
                    .build();
                dp.ingest(s).unwrap();
            }
        }
        assert!(dp.auto_align_count() >= 3);
        // Alignment (and thus refinement) has run: results are available
        // without an explicit flush.
        assert!(!dp.pivot().global_stories().is_empty());
        dp.pivot().check_invariants().unwrap();
    }
}
