//! `pivot-tsv` — run StoryPivot over an event-tuple TSV file.
//!
//! The input format is the paper's tuple (§1), one per line:
//!
//! ```text
//! source \t event_type \t entity;entity;… \t description words \t timestamp \t headline
//! ```
//!
//! ```text
//! cargo run -p storypivot-demo --bin pivot-tsv -- events.tsv
//! cat events.tsv | cargo run -p storypivot-demo --bin pivot-tsv -- - --complete --refine
//! pivot-tsv events.tsv --omega 30 --story 0
//! pivot-tsv events.tsv --find "Ukraine"
//! ```

use std::io::Read;
use std::process::ExitCode;

use storypivot_core::config::PivotConfig;
use storypivot_core::pivot::StoryPivot;
use storypivot_core::query::{query_stories, StoryQuery};
use storypivot_demo::modules;
use storypivot_demo::names::CatalogNames;
use storypivot_extract::TupleReader;
use storypivot_types::{GlobalStoryId, DAY};

struct Args {
    path: String,
    complete: bool,
    omega_days: i64,
    refine: bool,
    story: Option<u32>,
    find: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        complete: false,
        omega_days: 14,
        refine: false,
        story: None,
        find: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--complete" => args.complete = true,
            "--refine" => args.refine = true,
            "--omega" => {
                args.omega_days = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--omega needs a number of days")?;
            }
            "--story" => {
                args.story = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--story needs a numeric id")?,
                );
            }
            "--find" => {
                args.find = Some(it.next().ok_or("--find needs an entity name")?);
            }
            "--help" | "-h" => {
                return Err("usage: pivot-tsv <file.tsv|-> [--complete] [--omega DAYS] \
                            [--refine] [--story N] [--find ENTITY]"
                    .into())
            }
            other if args.path.is_empty() => args.path = other.to_string(),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if args.path.is_empty() {
        return Err("missing input file (use `-` for stdin); see --help".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // ---- read tuples -------------------------------------------------
    let text = if args.path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("reading stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&args.path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("reading {}: {e}", args.path);
                return ExitCode::FAILURE;
            }
        }
    };
    let mut reader = TupleReader::new();
    let (sources, snippets) = match reader.read_str(&text) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("parsing tuples: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "read {} snippets from {} sources",
        snippets.len(),
        sources.len()
    );

    // ---- detect stories -------------------------------------------------
    let config = if args.complete {
        PivotConfig::complete()
    } else {
        PivotConfig::temporal(args.omega_days * DAY)
    };
    let mut pivot = StoryPivot::new(config);
    for s in &sources {
        pivot.add_source(s.name.clone(), s.kind);
    }
    for s in snippets {
        if let Err(e) = pivot.ingest(s) {
            eprintln!("ingest: {e}");
            return ExitCode::FAILURE;
        }
    }
    pivot.align();
    if args.refine {
        let report = pivot.refine();
        eprintln!("refinement moved {} snippets", report.move_count());
    }

    // ---- render ------------------------------------------------------------
    let names = CatalogNames(&reader.catalog);
    if let Some(entity_name) = &args.find {
        match reader.catalog.entities.get(entity_name) {
            None => {
                eprintln!("entity {entity_name:?} does not occur in the input");
                return ExitCode::FAILURE;
            }
            Some(e) => {
                for hit in query_stories(&pivot, &StoryQuery::entity(e)) {
                    print!("{}", modules::story_information(&pivot, hit.story, &names));
                }
            }
        }
    } else if let Some(id) = args.story {
        print!(
            "{}",
            modules::snippets_per_story(&pivot, GlobalStoryId::new(id), &names)
        );
    } else {
        print!("{}", modules::story_overview(&pivot, &names));
        eprintln!(
            "\n{} per-source stories, {} global stories ({} cross-source)",
            pivot.story_count(),
            pivot.global_stories().len(),
            pivot
                .alignment()
                .map(|o| o.cross_source_stories().count())
                .unwrap_or(0),
        );
    }
    ExitCode::SUCCESS
}
