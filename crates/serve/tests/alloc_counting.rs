//! Counting-allocator proof for the zero-copy decode path: once a
//! connection's read buffer holds a small frame, parsing and decoding
//! it must not touch the heap at all. A regression here (say, an
//! accidental `to_vec` inside `decode_borrowed`) turns every request
//! on a 10k-connection box back into allocator traffic, which is
//! exactly what the multiplexed runtime was built to avoid.
//!
//! This lives in its own integration-test binary because a
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use storypivot_serve::proto::{frame, frame_into, frame_ready, Request, RequestRef, Response};
use storypivot_types::{DocId, SourceKind, StoryId};

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

/// Allocations observed while running `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn small_frame_decode_is_allocation_free_at_steady_state() {
    // The frames the server sees per-request on the hot path. AddSource
    // borrows its name from the frame; GetStory/RemoveDoc/Query/Stats
    // are fixed-size.
    let frames: Vec<Vec<u8>> = vec![
        frame(|b| Request::QueryStories.encode(b)),
        frame(|b| Request::GetStory(StoryId::new(7)).encode(b)),
        frame(|b| Request::RemoveDoc(DocId::new(9)).encode(b)),
        frame(|b| Request::Stats.encode(b)),
        frame(|b| Request::Metrics.encode(b)),
        frame(|b| {
            Request::AddSource {
                name: "zero copy herald".into(),
                kind: SourceKind::Newspaper,
                lag: 3600,
            }
            .encode(b)
        }),
    ];

    // Warm-up pass: any lazy one-time setup happens here.
    for f in &frames {
        let total = frame_ready(f).unwrap().unwrap();
        let _ = Request::decode_borrowed(&f[4..total]).unwrap();
    }

    for f in &frames {
        let n = allocs_during(|| {
            for _ in 0..100 {
                let total = frame_ready(f).unwrap().unwrap();
                let req = Request::decode_borrowed(&f[4..total]).unwrap();
                // Touch the decoded value so the borrow is real work,
                // not dead code.
                match req {
                    RequestRef::AddSource { name, .. } => assert!(!name.is_empty()),
                    RequestRef::GetStory(id) => assert_eq!(id.raw(), 7),
                    RequestRef::RemoveDoc(id) => assert_eq!(id.raw(), 9),
                    _ => {}
                }
            }
        });
        assert_eq!(n, 0, "borrowed decode of {:?} allocated {n} times in 100 iterations", &f[4..5]);
    }
}

#[test]
fn small_response_encode_into_warm_buffer_is_allocation_free() {
    // The server's reply path: frame_into re-encodes into a pooled
    // buffer whose capacity survives from the previous checkout.
    let responses = [
        Response::Ingested(StoryId::new(3)),
        Response::Removed(12),
        Response::Busy { retry_after_ms: 25 },
        Response::ShutdownAck,
    ];
    let mut buf = Vec::with_capacity(256);
    // Warm-up establishes capacity.
    for r in &responses {
        frame_into(&mut buf, |b| r.encode(b));
    }
    let n = allocs_during(|| {
        for _ in 0..100 {
            for r in &responses {
                frame_into(&mut buf, |b| r.encode(b));
            }
        }
    });
    assert_eq!(n, 0, "steady-state reply encode allocated {n} times");
}
