//! Deterministic pseudo-random numbers.
//!
//! [`StdRng`] is a xoshiro256\*\* generator seeded through SplitMix64,
//! the construction recommended by the xoshiro authors: a single `u64`
//! seed expands into a well-mixed 256-bit state, and distinct seeds give
//! statistically independent streams. It is *not* cryptographically
//! secure — it exists so corpora, property tests, and experiments are
//! exactly reproducible from a printed seed.
//!
//! The surface mirrors the parts of `rand` the workspace used:
//! [`RngExt::random`], [`RngExt::random_range`], [`RngExt::random_bool`],
//! and [`SliceRandom::shuffle`], plus the heavy-tailed [`Zipf`] sampler
//! and a [`WeightedIndex`] for ad-hoc discrete distributions.

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Used for seeding and for deriving per-case seeds in the
/// property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// The substrate's standard generator: xoshiro256\*\* with SplitMix64
/// seeding. Named `StdRng` so call sites read the same as they did under
/// `rand`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Deterministically seed from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference).
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Uniform draw in `[0, n)` without modulo bias (Lemire's multiply-shift
/// with rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types drawable uniformly from their "natural" distribution via
/// [`RngExt::random`]: full range for integers, `[0, 1)` for floats,
/// fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range that [`RngExt::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u64, usize, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience draws on top of any [`RngCore`]. The method set matches
/// what the workspace previously used from `rand`.
pub trait RngExt: RngCore {
    /// Draw from the type's natural distribution (see [`StandardSample`]).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a (half-open or inclusive) range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// In-place Fisher–Yates shuffling, as `slice.shuffle(&mut rng)`.
pub trait SliceRandom {
    /// Uniformly permute the slice.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// A discrete distribution over `0..weights.len()` proportional to the
/// given non-negative weights; `O(log n)` sampling via the cumulative
/// table.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Build from weights.
    ///
    /// # Panics
    /// Panics when `weights` is empty, contains a negative or non-finite
    /// weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "WeightedIndex needs at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for c in &mut cdf {
            *c /= acc;
        }
        WeightedIndex { cdf }
    }

    /// Draw one index.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        sample_cdf(&self.cdf, rng)
    }
}

fn sample_cdf<R: RngCore + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u = f64::sample(rng);
    match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`. Entity popularity in news follows a
/// heavy-tailed law — a few entities (major countries, leaders) appear
/// in a large share of events. The sampler precomputes the cumulative
/// distribution and draws in `O(log n)` via binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s ≥ 0` (0 =
    /// uniform).
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        sample_cdf(&self.cdf, rng)
    }

    /// Draw `k` *distinct* ranks (by rejection; `k` must not exceed the
    /// number of ranks).
    pub fn sample_distinct<R: RngCore + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(k <= self.len(), "cannot draw {k} distinct from {}", self.len());
        let mut out = Vec::with_capacity(k);
        let mut guard = 0usize;
        while out.len() < k {
            let x = self.sample(rng);
            if !out.contains(&x) {
                out.push(x);
            }
            guard += 1;
            if guard > 64 * k + 1024 {
                // Pathological exponents: fall back to filling with the
                // smallest unused ranks to guarantee termination.
                for r in 0..self.len() {
                    if out.len() == k {
                        break;
                    }
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(0xFEED);
        let mut b = StdRng::seed_from_u64(0xFEED);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn known_answer_is_stable_across_runs() {
        // Pins the generator's output so accidental algorithm changes
        // (which would silently invalidate every recorded experiment
        // table) fail loudly.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x: i64 = rng.random_range(-50..50);
            assert!((-50..50).contains(&x));
            let y: usize = rng.random_range(0..7);
            assert!(y < 7);
            let z: i64 = rng.random_range(3..=5);
            assert!((3..=5).contains(&z));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_floats_are_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 4000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
        assert_eq!((0..100).filter(|_| rng.random_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.random_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts = [0u32; 3];
        for _ in 0..8000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2, "{counts:?}");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        assert!(head > n / 3, "head got {head} of {n}");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1600..=2400).contains(&c), "rank {i}: {c}");
        }
    }
}
