//! E5 — ingestion of the realistic out-of-order delivery stream vs the
//! event-time-sorted stream (§2.4).

use storypivot_bench::{corpus_fixed_period, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;

fn main() {
    let corpus = corpus_fixed_period(800, 8, 19);
    let sorted = corpus.snippets_by_event_time();
    let mut group = BenchGroup::from_env("e5_out_of_order");
    for (name, stream) in [("delivery_order", &corpus.snippets), ("event_time_order", &sorted)] {
        group.bench(name, || {
            let mut pivot = pivot_for(&corpus, PivotConfig::temporal(OMEGA));
            for s in stream.iter() {
                pivot.ingest(s.clone()).unwrap();
            }
            pivot.align();
            pivot.global_stories().len()
        });
    }
    group.finish();
}
