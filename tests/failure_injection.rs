//! Failure injection: the engine must degrade gracefully, not panic, on
//! hostile inputs — duplicates, vacuous content, unknown references,
//! clock-skewed sources, and mid-stream mutations.

use storypivot::core::config::PivotConfig;
use storypivot::prelude::*;

fn pivot_with_sources(n: u32) -> (StoryPivot, Vec<SourceId>) {
    let mut pivot = StoryPivot::new(PivotConfig::default());
    let ids = (0..n)
        .map(|i| pivot.add_source(format!("s{i}"), SourceKind::Newspaper))
        .collect();
    (pivot, ids)
}

fn snip(id: u32, source: SourceId, t: Timestamp) -> Snippet {
    Snippet::builder(SnippetId::new(id), source, t)
        .entity(EntityId::new(id % 7), 1.0)
        .term(TermId::new(id % 11), 1.0)
        .build()
}

#[test]
fn duplicate_snippet_ids_are_rejected_not_corrupting() {
    let (mut pivot, src) = pivot_with_sources(1);
    let s = snip(0, src[0], Timestamp::EPOCH);
    pivot.ingest(s.clone()).unwrap();
    assert!(pivot.ingest(s).is_err());
    assert_eq!(pivot.store().len(), 1);
    assert_eq!(pivot.story_count(), 1);
}

#[test]
fn vacuous_snippets_form_singleton_stories() {
    let (mut pivot, src) = pivot_with_sources(1);
    for i in 0..3 {
        let empty = Snippet::builder(SnippetId::new(i), src[0], Timestamp::from_secs(i as i64))
            .headline("nothing extracted")
            .build();
        pivot.ingest(empty).unwrap();
    }
    // No shared content → no similarity → three separate stories.
    assert_eq!(pivot.story_count(), 3);
    pivot.align();
    assert_eq!(pivot.global_stories().len(), 3);
}

#[test]
fn unknown_references_error_cleanly() {
    let (mut pivot, src) = pivot_with_sources(1);
    assert!(pivot.remove_snippet(SnippetId::new(9)).is_err());
    assert!(pivot.remove_document(DocId::new(9)).is_err());
    assert!(pivot.remove_source(SourceId::new(42)).is_err());
    assert!(pivot.reassign_snippet(SnippetId::new(9), StoryId::new(0)).is_err());
    // The engine still works afterwards.
    pivot.ingest(snip(0, src[0], Timestamp::EPOCH)).unwrap();
    pivot.align();
    assert_eq!(pivot.global_stories().len(), 1);
}

#[test]
fn extreme_timestamps_do_not_break_windows_or_alignment() {
    let (mut pivot, src) = pivot_with_sources(2);
    pivot.ingest(snip(0, src[0], Timestamp::MAX - 10)).unwrap();
    pivot.ingest(snip(1, src[1], Timestamp::MIN + 10)).unwrap();
    pivot.ingest(snip(2, src[0], Timestamp::EPOCH)).unwrap();
    pivot.align();
    assert_eq!(pivot.store().len(), 3);
    assert!(!pivot.global_stories().is_empty());
}

#[test]
fn clock_skewed_source_still_aligns_within_tolerance() {
    let mut cfg = PivotConfig::default();
    cfg.align.max_lag_buckets = 3;
    let mut pivot = StoryPivot::new(cfg);
    let a = pivot.add_source("punctual", SourceKind::Wire);
    let b = pivot.add_source("skewed", SourceKind::Magazine);
    let day = |d: i64| Timestamp::from_secs(d * DAY);
    let mut id = 0u32;
    for d in 0..5 {
        for (source, skew) in [(a, 0i64), (b, 2)] {
            let s = Snippet::builder(SnippetId::new(id), source, day(d + skew))
                .entity(EntityId::new(1), 1.0)
                .entity(EntityId::new(2), 1.0)
                .term(TermId::new(1), 1.0)
                .build();
            pivot.ingest(s).unwrap();
            id += 1;
        }
    }
    pivot.align();
    let cross = pivot.alignment().unwrap().cross_source_stories().count();
    assert_eq!(cross, 1, "2-day skew must be absorbed by lag tolerance");
}

#[test]
fn mutating_while_streaming_never_panics() {
    let (mut pivot, src) = pivot_with_sources(2);
    for i in 0..50u32 {
        pivot
            .ingest(snip(i, src[(i % 2) as usize], Timestamp::from_secs(i as i64 * 3_600)))
            .unwrap();
        match i % 10 {
            3 => {
                pivot.remove_snippet(SnippetId::new(i)).unwrap();
            }
            5 => {
                pivot.align_incremental();
            }
            7 => {
                pivot.refine();
            }
            _ => {}
        }
    }
    pivot.align();
    pivot.refine();
    // 5 of 50 snippets were removed (i % 10 == 3).
    assert_eq!(pivot.store().len(), 45);
    let covered: usize = pivot.global_stories().iter().map(|g| g.len()).sum();
    assert_eq!(covered, 45);
}

#[test]
fn removing_everything_leaves_a_clean_engine() {
    let (mut pivot, src) = pivot_with_sources(1);
    for i in 0..10u32 {
        pivot
            .ingest(snip(i, src[0], Timestamp::from_secs(i as i64)))
            .unwrap();
    }
    pivot.align();
    for i in 0..10u32 {
        pivot.remove_snippet(SnippetId::new(i)).unwrap();
    }
    pivot.align_incremental();
    assert_eq!(pivot.store().len(), 0);
    assert_eq!(pivot.story_count(), 0);
    assert!(pivot.global_stories().is_empty());
    // And it can start over.
    pivot.ingest(snip(100, src[0], Timestamp::EPOCH)).unwrap();
    pivot.align_incremental();
    assert_eq!(pivot.global_stories().len(), 1);
}

#[test]
fn same_document_snippets_share_doc_removal() {
    let (mut pivot, src) = pivot_with_sources(1);
    let doc = DocId::new(7);
    for i in 0..3u32 {
        let s = Snippet::builder(SnippetId::new(i), src[0], Timestamp::from_secs(i as i64))
            .doc(doc)
            .entity(EntityId::new(1), 1.0)
            .term(TermId::new(1), 1.0)
            .build();
        pivot.ingest(s).unwrap();
    }
    assert_eq!(pivot.remove_document(doc).unwrap(), 3);
    assert!(pivot.store().is_empty());
}

// ---- wire-protocol faults against a live server ----------------------
//
// The serving layer faces the network, so its failure injection runs
// against a real loopback pivotd: torn frames, oversized length
// prefixes, garbage opcodes, and mid-frame disconnects must produce
// clean protocol errors (or a clean close) — never a panic, a wedged
// acceptor, or a leaked shard thread. Each scenario ends by proving the
// server still serves and shuts down gracefully.

mod wire_faults {
    use std::io::{Read, Write};
    use std::net::TcpStream;

    use storypivot::serve::client::Client;
    use storypivot::serve::proto::{frame, read_frame, Request, Response, MAX_FRAME_LEN};
    use storypivot::serve::server::{serve, ServerConfig, ServerHandle};
    use storypivot::types::{EntityId, Snippet, SnippetId, SourceId, SourceKind, Timestamp};

    fn tiny_server() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            ServerConfig {
                shards: 2,
                align_every: 0,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    /// The liveness probe every scenario ends with: a fresh client can
    /// register, ingest, query, and gracefully stop the server — and
    /// `join` returns, i.e. no shard or acceptor thread leaked.
    fn assert_alive_and_shutdown(handle: ServerHandle) {
        let mut client = Client::connect(handle.addr()).unwrap();
        client.add_source("probe", SourceKind::Wire, 0).unwrap();
        let snippet = Snippet::builder(SnippetId::new(0), SourceId::new(0), Timestamp::EPOCH)
            .entity(EntityId::new(1), 1.0)
            .build();
        client.ingest_retry(&snippet, 100).unwrap();
        assert_eq!(client.query_stories().unwrap().len(), 1);
        client.shutdown().unwrap();
        handle.join();
    }

    fn read_error_response(stream: &mut TcpStream) -> Response {
        let payload = read_frame(stream).unwrap().expect("server must reply before closing");
        Response::decode(&payload).unwrap()
    }

    #[test]
    fn torn_length_prefix_is_a_clean_close() {
        let handle = tiny_server();
        {
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&[0x07, 0x00]).unwrap(); // 2 of 4 length bytes
            // Dropping the stream tears the frame mid-prefix.
        }
        assert_alive_and_shutdown(handle);
    }

    #[test]
    fn mid_frame_disconnect_does_not_wedge_the_server() {
        let handle = tiny_server();
        {
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&100u32.to_le_bytes()).unwrap();
            raw.write_all(&[0x04; 10]).unwrap(); // 10 of the promised 100 bytes
        }
        assert_alive_and_shutdown(handle);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_with_an_error_frame() {
        let handle = tiny_server();
        {
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
            match read_error_response(&mut raw) {
                Response::Error { code, message } => {
                    assert_eq!(code, 4, "oversized frame is a codec error: {message}");
                    assert!(message.contains(&MAX_FRAME_LEN.to_string()));
                }
                other => panic!("expected an error response, got {other:?}"),
            }
            // The server closes the desynchronised stream afterwards.
            let mut rest = Vec::new();
            raw.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty());
        }
        assert_alive_and_shutdown(handle);
    }

    #[test]
    fn garbage_opcode_gets_an_error_response() {
        let handle = tiny_server();
        {
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&1u32.to_le_bytes()).unwrap();
            raw.write_all(&[0x7F]).unwrap(); // no such opcode
            match read_error_response(&mut raw) {
                Response::Error { code, .. } => assert_eq!(code, 4),
                other => panic!("expected an error response, got {other:?}"),
            }
        }
        assert_alive_and_shutdown(handle);
    }

    #[test]
    fn truncated_request_body_gets_an_error_response() {
        let handle = tiny_server();
        {
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            // A valid GET_STORY frame is 5 bytes (opcode + u32); promise
            // and deliver only the opcode plus two body bytes.
            raw.write_all(&3u32.to_le_bytes()).unwrap();
            raw.write_all(&[0x05, 0x01, 0x02]).unwrap();
            match read_error_response(&mut raw) {
                Response::Error { code, .. } => assert_eq!(code, 4),
                other => panic!("expected an error response, got {other:?}"),
            }
        }
        assert_alive_and_shutdown(handle);
    }

    #[test]
    fn metrics_opcode_survives_torn_and_oversized_frames() {
        let handle = tiny_server();
        {
            // METRICS carries an empty body; a trailing byte is a codec
            // error, not a panic.
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&2u32.to_le_bytes()).unwrap();
            raw.write_all(&[0x09, 0xEE]).unwrap();
            match read_error_response(&mut raw) {
                Response::Error { code, .. } => assert_eq!(code, 4),
                other => panic!("expected an error response, got {other:?}"),
            }
        }
        {
            // Torn frame: promise a 1-byte METRICS request, deliver
            // nothing, drop the connection.
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&1u32.to_le_bytes()).unwrap();
        }
        {
            // Oversized length prefix in front of the metrics opcode.
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&(MAX_FRAME_LEN + 9).to_le_bytes()).unwrap();
            raw.write_all(&[0x09]).unwrap();
            match read_error_response(&mut raw) {
                Response::Error { code, .. } => assert_eq!(code, 4),
                other => panic!("expected an error response, got {other:?}"),
            }
        }
        {
            // After the barrage a clean raw METRICS round trip works.
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            raw.write_all(&frame(|b| Request::Metrics.encode(b))).unwrap();
            let payload = read_frame(&mut raw).unwrap().unwrap();
            match Response::decode(&payload).unwrap() {
                Response::Metrics { text } => {
                    assert!(text.contains("storypivot_ingest_total"), "exposition:\n{text}");
                    assert!(text.contains("storypivot_shard_queue_capacity"));
                }
                other => panic!("expected a Metrics response, got {other:?}"),
            }
        }
        assert_alive_and_shutdown(handle);
    }

    #[test]
    fn fault_barrage_then_normal_traffic() {
        // Many hostile connections in a row, mixed shapes, then the
        // liveness probe — the acceptor must survive all of it.
        let handle = tiny_server();
        for i in 0..20u32 {
            let mut raw = TcpStream::connect(handle.addr()).unwrap();
            match i % 4 {
                0 => raw.write_all(&[0xFF]).unwrap(),
                1 => {
                    raw.write_all(&((MAX_FRAME_LEN) + 1 + i).to_le_bytes()).unwrap();
                }
                2 => {
                    raw.write_all(&8u32.to_le_bytes()).unwrap();
                    raw.write_all(&[0xAA; 3]).unwrap();
                }
                _ => {
                    // A syntactically valid frame whose body is noise.
                    let junk = frame(|b| {
                        Request::GetStory(storypivot::types::StoryId::new(i)).encode(b);
                        b.extend_from_slice(&[0xEE; 5]); // trailing bytes
                    });
                    raw.write_all(&junk).unwrap();
                }
            }
            // Connections drop immediately; the server may or may not
            // manage to reply — either way it must not wedge.
        }
        assert_alive_and_shutdown(handle);
    }
}

/// Shard supervision under injected panics. The poison hook only exists
/// in debug builds ([`storypivot::serve::server::POISON_HEADLINE`]), so
/// this module is compiled out of release test runs.
#[cfg(debug_assertions)]
mod shard_supervision {
    use std::path::{Path, PathBuf};

    use storypivot::serve::client::Client;
    use storypivot::serve::server::{serve, ServerConfig, POISON_HEADLINE};
    use storypivot::substrate::wal::SyncPolicy;
    use storypivot::types::{EntityId, Snippet, SnippetId, SourceId, SourceKind, Timestamp};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("storypivot-poison-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_config(wal: &Path, ckpt: &Path) -> ServerConfig {
        ServerConfig {
            shards: 2,
            align_every: 0,
            wal_dir: Some(wal.to_path_buf()),
            checkpoint_dir: Some(ckpt.to_path_buf()),
            fsync: SyncPolicy::Always,
            ..ServerConfig::default()
        }
    }

    fn snippet(id: u32, source: u32, headline: &str) -> Snippet {
        Snippet::builder(SnippetId::new(id), SourceId::new(source), Timestamp::EPOCH)
            .entity(EntityId::new(1), 1.0)
            .headline(headline)
            .build()
    }

    #[test]
    fn poisoned_shard_restarts_quarantines_and_keeps_siblings_serving() {
        let wal = scratch("wal");
        let ckpt = scratch("ckpt");
        let handle = serve("127.0.0.1:0", durable_config(&wal, &ckpt)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();

        // Source 0 → shard 0, source 1 → shard 1.
        client.add_source("victim", SourceKind::Wire, 0).unwrap();
        client.add_source("bystander", SourceKind::Wire, 0).unwrap();
        client.ingest_retry(&snippet(0, 0, "fine"), 10).unwrap();
        client.ingest_retry(&snippet(1, 1, "fine too"), 10).unwrap();

        // Strike 1: the live apply panics. Strike 2: the op re-panics
        // out of the WAL during the rebuild replay. One submission is
        // therefore enough to dead-letter it.
        let poison = snippet(2, 0, POISON_HEADLINE);
        let err = client.ingest(&poison).expect_err("poison must surface as an error");
        let msg = err.to_string();
        assert!(msg.contains("panicked"), "unexpected error: {msg}");

        // The poisoned shard restarted and keeps serving its queue...
        client.ingest_retry(&snippet(3, 0, "still alive"), 10).unwrap();
        // ...and the sibling shard never noticed.
        client.ingest_retry(&snippet(4, 1, "unaffected"), 10).unwrap();

        let stats = client.stats().unwrap();
        assert_eq!(stats.shards.len(), 2);
        assert!(
            stats.shards[0].restarts >= 2,
            "live panic + replay panic, got {}",
            stats.shards[0].restarts
        );
        assert_eq!(stats.shards[0].quarantined, 1);
        assert_eq!(stats.shards[1].restarts, 0);
        assert_eq!(stats.shards[1].quarantined, 0);
        assert!(wal.join("shard0.dead").exists(), "quarantine must be dead-lettered");

        // Resubmitting the identical op is rejected *before* the engine
        // (no new panic, no new restart).
        let err = client.ingest(&poison).expect_err("quarantined op must be rejected");
        assert!(err.to_string().contains("quarantined"), "got: {err}");
        let stats2 = client.stats().unwrap();
        assert_eq!(stats2.shards[0].restarts, stats.shards[0].restarts);

        // The partition holds exactly the four good snippets.
        let stories = client.query_stories().unwrap();
        let members: usize = stories.iter().map(|s| s.members.len()).sum();
        assert_eq!(members, 4);

        client.shutdown().unwrap();
        handle.join();
        let _ = std::fs::remove_dir_all(&wal);
        let _ = std::fs::remove_dir_all(&ckpt);
    }

    #[test]
    fn quarantine_survives_a_clean_restart() {
        let wal = scratch("wal-persist");
        let ckpt = scratch("ckpt-persist");
        {
            let handle = serve("127.0.0.1:0", durable_config(&wal, &ckpt)).unwrap();
            let mut client = Client::connect(handle.addr()).unwrap();
            client.add_source("victim", SourceKind::Wire, 0).unwrap();
            client.ingest_retry(&snippet(0, 0, "good"), 10).unwrap();
            client.ingest(&snippet(1, 0, POISON_HEADLINE)).expect_err("poison");
            client.shutdown().unwrap();
            handle.join();
        }
        // Same durable state, fresh process (in-process stand-in): the
        // dead-letter file re-arms the quarantine before any replay.
        let handle = serve("127.0.0.1:0", durable_config(&wal, &ckpt)).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.shards[0].quarantined, 1);
        assert_eq!(stats.shards[0].restarts, 0, "no replay panic: the op is skipped");
        let err = client.ingest(&snippet(1, 0, POISON_HEADLINE)).expect_err("still dead");
        assert!(err.to_string().contains("quarantined"), "got: {err}");
        // Recovered data intact, engine fully serviceable.
        let stories = client.query_stories().unwrap();
        assert_eq!(stories.iter().map(|s| s.members.len()).sum::<usize>(), 1);
        client.ingest_retry(&snippet(2, 0, "fresh"), 10).unwrap();
        client.shutdown().unwrap();
        handle.join();
        let _ = std::fs::remove_dir_all(&wal);
        let _ = std::fs::remove_dir_all(&ckpt);
    }
}

// ---- slow-loris / idle reaping ---------------------------------------
//
// The multiplexed runtime holds per-connection buffers; a client that
// opens a socket and then dribbles (or stops entirely) must not pin
// them forever. With `idle_timeout` set, the server reaps connections
// whose last *completed* frame is older than the deadline — partial
// bytes do not count as progress, so a byte-at-a-minute client cannot
// hold its buffer hostage.

mod slow_loris {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    use storypivot::serve::client::Client;
    use storypivot::serve::server::{serve, ServerConfig, ServerHandle};
    use storypivot::types::SourceKind;

    fn reaping_server() -> ServerHandle {
        serve(
            "127.0.0.1:0",
            ServerConfig {
                shards: 2,
                align_every: 0,
                idle_timeout: Some(Duration::from_millis(250)),
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn stalled_half_frame_client_is_reaped_while_healthy_traffic_flows() {
        let handle = reaping_server();

        // The loris: promise a frame, deliver one length byte, stall.
        let mut loris = TcpStream::connect(handle.addr()).unwrap();
        loris.write_all(&[0x09]).unwrap();
        loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        // While it stalls, a healthy client on the same workers is
        // entirely unaffected.
        let mut client = Client::connect(handle.addr()).unwrap();
        client.add_source("healthy", SourceKind::Wire, 0).unwrap();
        assert!(client.query_stories().unwrap().is_empty());

        // The server reaps the loris: EOF arrives within a few idle
        // periods (the 10s read timeout above is the failure mode).
        let start = Instant::now();
        let mut sink = Vec::new();
        loris.read_to_end(&mut sink).expect("reap closes the socket cleanly");
        assert!(sink.is_empty(), "no reply is owed to half a frame");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "reap took {:?}, idle timeout is 250ms",
            start.elapsed()
        );

        // The "healthy" client has now been idle past the deadline too
        // and was reaped along the way — deliberately: the deadline is
        // about idleness, not byte rate. A fresh connection stops the
        // server.
        drop(client);
        let mut fresh = Client::connect(handle.addr()).unwrap();
        fresh.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn dripping_bytes_does_not_reset_the_deadline() {
        let handle = reaping_server();

        // Promise a 64-byte frame and drip filler far too slowly to
        // ever finish it. Only completed frames count as progress, so
        // the trickle must not keep the connection alive.
        let mut loris = TcpStream::connect(handle.addr()).unwrap();
        loris.write_all(&64u32.to_le_bytes()).unwrap();
        let start = Instant::now();
        let mut reaped = false;
        while start.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(50));
            if loris.write_all(&[0x00]).and_then(|()| loris.flush()).is_err() {
                reaped = true;
                break;
            }
        }
        assert!(reaped, "drip-feeding one byte per 50ms held the connection open for 10s");

        let mut client = Client::connect(handle.addr()).unwrap();
        client.add_source("after", SourceKind::Wire, 0).unwrap();
        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn without_idle_timeout_idle_connections_are_left_alone() {
        // Reaping is opt-in: the default config must keep quiet
        // connections open indefinitely (kill -9 recovery tests and
        // long-lived monitoring clients depend on it).
        let handle = serve(
            "127.0.0.1:0",
            ServerConfig { shards: 2, align_every: 0, ..ServerConfig::default() },
        )
        .unwrap();
        let mut idle = Client::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(600));
        // Still serviceable after sitting idle well past the reaping
        // test's deadline.
        idle.add_source("patient", SourceKind::Wire, 0).unwrap();
        idle.shutdown().unwrap();
        handle.join();
    }
}
