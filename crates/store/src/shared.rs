//! Concurrent access to an [`EventStore`].
//!
//! The demo serves interactive module queries (Figures 4–6) while the
//! ingestion pipeline keeps writing (§2.4). [`SharedEventStore`] wraps
//! the store in the substrate's [`Shared`] readers–writer handle: many
//! concurrent readers, exclusive writers, no poisoning surfaced.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

use storypivot_substrate::Shared;
use storypivot_types::{Result, Snippet, SnippetId};

use crate::event_store::EventStore;

/// A cloneable, thread-safe handle to an [`EventStore`].
#[derive(Debug, Clone, Default)]
pub struct SharedEventStore {
    inner: Shared<EventStore>,
}

impl SharedEventStore {
    /// Wrap an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an existing store.
    pub fn from_store(store: EventStore) -> Self {
        SharedEventStore {
            inner: Shared::new(store),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, EventStore> {
        self.inner.read()
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, EventStore> {
        self.inner.write()
    }

    /// Convenience: insert one snippet under a short-lived write lock.
    pub fn insert(&self, snippet: Snippet) -> Result<()> {
        self.inner.write().insert(snippet)
    }

    /// Convenience: remove one snippet under a short-lived write lock.
    pub fn remove(&self, id: SnippetId) -> Result<Snippet> {
        self.inner.write().remove(id)
    }

    /// Convenience: snippet count under a read lock.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Run a closure with read access (keeps the guard scoped).
    pub fn with_read<T>(&self, f: impl FnOnce(&EventStore) -> T) -> T {
        self.inner.with_read(f)
    }

    /// Run a closure with write access.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut EventStore) -> T) -> T {
        self.inner.with_write(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, Source, SourceId, SourceKind, TimeRange, Timestamp};

    fn snip(id: u32, t: i64) -> Snippet {
        Snippet::builder(SnippetId::new(id), SourceId::new(0), Timestamp::from_secs(t))
            .entity(EntityId::new(id % 5), 1.0)
            .build()
    }

    fn shared() -> SharedEventStore {
        let mut store = EventStore::new();
        store
            .register_source(Source::new(SourceId::new(0), "s0", SourceKind::Wire))
            .unwrap();
        SharedEventStore::from_store(store)
    }

    #[test]
    fn basic_shared_operations() {
        let s = shared();
        assert!(s.is_empty());
        s.insert(snip(0, 10)).unwrap();
        assert_eq!(s.len(), 1);
        let got = s.with_read(|st| st.get(SnippetId::new(0)).cloned());
        assert!(got.is_some());
        s.remove(SnippetId::new(0)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let a = shared();
        let b = a.clone();
        a.insert(snip(1, 5)).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let store = shared();
        let writers = 4u32;
        let per_writer = 250u32;

        std::thread::scope(|scope| {
            // Writers insert disjoint id ranges.
            for w in 0..writers {
                let handle = store.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let id = w * per_writer + i;
                        handle.insert(snip(id, id as i64)).unwrap();
                    }
                });
            }
            // Readers continuously run window queries.
            for _ in 0..4 {
                let handle = store.clone();
                scope.spawn(move || {
                    for _ in 0..200 {
                        let n = handle.with_read(|st| {
                            st.range(SourceId::new(0), TimeRange::ALL).len()
                        });
                        assert!(n <= (writers * per_writer) as usize);
                    }
                });
            }
        });

        assert_eq!(store.len(), (writers * per_writer) as usize);
        // Every inserted snippet is retrievable and indexed.
        store.with_read(|st| {
            for id in 0..writers * per_writer {
                assert!(st.contains(SnippetId::new(id)), "missing {id}");
            }
            assert_eq!(st.stats().snippet_count, (writers * per_writer) as usize);
        });
    }
}
