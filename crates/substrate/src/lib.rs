//! The zero-dependency substrate underneath every StoryPivot crate.
//!
//! The build environment for this reproduction is hermetic: there is no
//! crates.io registry, so the workspace cannot depend on `rand`,
//! `proptest`, `criterion`, `bytes`, `parking_lot`, or `crossbeam`.
//! This crate provides the narrow slices of those libraries the system
//! actually uses, built only on `std`:
//!
//! * [`rng`] — a deterministic pseudo-random generator (SplitMix64
//!   seeding + xoshiro256\*\* core) with uniform/weighted/Zipf/shuffle
//!   helpers. Replaces `rand`.
//! * [`buf`] — little-endian, length-prefixed byte reading/writing via
//!   the [`buf::Buf`]/[`buf::BufMut`] traits. Replaces `bytes`.
//! * [`shared`] — [`shared::Shared<T>`], a cloneable readers–writer
//!   handle on [`std::sync::RwLock`] that recovers from poisoning.
//!   Replaces `parking_lot` (and, with [`std::thread::scope`],
//!   `crossbeam`).
//! * [`prop`] — a minimal property-testing harness: deterministic
//!   per-case seeds, generator helpers, and failing-seed replay via an
//!   environment variable. Replaces `proptest`.
//! * [`timing`] — a micro-benchmark runner (warmup + timed iterations,
//!   median/p95 reporting) plus a log-bucketed latency
//!   [`timing::Histogram`]. Replaces `criterion`.
//! * [`queue`] — [`queue::Bounded<T>`], a bounded MPMC queue with depth
//!   gauges and close-and-drain semantics (the slice of
//!   `crossbeam-channel` the serving layer needs).
//! * [`pool`] — [`pool::BufferPool`], a checkout/checkin byte-buffer
//!   pool with outstanding/high-water accounting, so the serving hot
//!   path recycles frame buffers instead of allocating per request.
//! * [`net`] — a minimal `poll(2)` readiness poller plus a socketpair
//!   wake channel (the slice of `mio` the connection-multiplexing
//!   serving runtime needs). This module contains the workspace's only
//!   FFI declaration, wrapped behind a safe slice-based API.
//! * [`wal`] — a generic CRC-framed append-only journal with
//!   configurable fsync policy and torn-tail repair, the durability
//!   primitive under `pivotd`'s per-shard write-ahead logs.
//! * [`metrics`] — a lock-cheap metrics registry (counters, gauges,
//!   histograms) with labeled families, mergeable snapshots, and a
//!   Prometheus-style text exposition encoder (the slice of
//!   `prometheus`/`metrics` the observability layer needs).
//! * [`trace`] — [`trace::TraceRing`], a fixed-capacity ring buffer of
//!   recent engine events, dumped on shard panic so supervision leaves
//!   a diagnosable artifact behind.
//! * [`fault`] — seeded, debug/test-gated deterministic fault
//!   injection ([`fault::FaultPlan`]): the durability and replication
//!   paths consult per-site hooks so chaos tests can inject
//!   short-write/ENOSPC-style disk faults and connection drops
//!   reproducibly.
//!
//! Everything here is deterministic: the same seed produces the same
//! corpus, the same property-test cases, and the same experiment tables
//! on every run and every machine.

// `deny` rather than `forbid`: the `net` module carries one scoped
// `#[allow(unsafe_code)]` around the `poll(2)` FFI call; everything
// else in the crate still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod buf;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod prop;
pub mod queue;
pub mod rng;
pub mod shared;
pub mod timing;
pub mod trace;
pub mod wal;

pub use buf::{Buf, BufMut, ByteBuf};
pub use fault::{FaultHook, FaultPlan};
pub use metrics::Registry;
pub use pool::BufferPool;
pub use queue::Bounded;
pub use timing::Histogram;
pub use rng::{RngCore, RngExt, SliceRandom, StdRng, Zipf};
pub use shared::Shared;
pub use trace::TraceRing;
pub use wal::{SyncPolicy, Wal, WalFaults};
