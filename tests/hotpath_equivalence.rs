//! Cache-correctness: the hot-story cache must be invisible to results.
//!
//! Identification partitions have to be **byte-identical** with the
//! cache disabled, enabled at default capacity, and enabled at a
//! pathologically small capacity (constant eviction churn). The cache
//! only changes *where* a story's windowed fold is accumulated, never
//! its value — `SparseVec::merge_add` applies the same additions in the
//! same order whether a fold is resumed from a cached prefix or rebuilt
//! from scratch, and the cached norm is always a pure function of the
//! entries. These tests prove that end to end on a seeded Zipf corpus.

use storypivot::core::config::PivotConfig;
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::prelude::StoryPivot;
use storypivot::types::{SnippetId, StoryId};

fn partition_with_cache(capacity: usize, seed: u64) -> Vec<(StoryId, Vec<SnippetId>)> {
    let corpus = CorpusBuilder::new(
        GenConfig::default()
            .with_sources(4)
            .with_seed(seed)
            .with_target_snippets(1200),
    )
    .build();
    let mut config = PivotConfig::default();
    config.identify.hot_cache_capacity = capacity;
    let mut pivot = StoryPivot::new(config);
    for src in &corpus.sources {
        pivot.add_source_with_lag(src.name.clone(), src.kind, src.typical_lag);
    }
    for s in &corpus.snippets {
        pivot.ingest(s.clone()).expect("valid corpus snippet");
    }
    pivot.check_invariants().expect("engine invariants hold");
    pivot.story_partition()
}

#[test]
fn partitions_identical_with_cache_on_and_off() {
    let off = partition_with_cache(0, 20140717);
    let on = partition_with_cache(512, 20140717);
    assert!(!off.is_empty());
    assert_eq!(off, on, "hot-story cache changed the partition");
}

#[test]
fn partitions_identical_under_eviction_churn() {
    // Capacity 2 forces constant admission/eviction; results must not
    // depend on which stories happen to be resident.
    let off = partition_with_cache(0, 99);
    let tiny = partition_with_cache(2, 99);
    assert_eq!(off, tiny, "eviction churn changed the partition");
}
