//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a seeded table of per-site failure rates. Code on
//! the durability and replication paths asks the plan for a
//! [`FaultHook`] at startup (one per site × instance, e.g. per shard)
//! and consults it at each fault point. Every hook owns an independent
//! splitmix64 stream derived from `seed ^ fnv(site) ^ instance`, so a
//! given plan injects *exactly* the same faults at the same operations
//! on every run — chaos tests replay bit-for-bit.
//!
//! Injection is debug/test-gated: in release builds [`FaultHook::fire`]
//! is always `false` and the hooks compile down to a counter bump, the
//! same stance as the serving layer's `POISON_HEADLINE` panic injection.
//! Production binaries cannot be talked into failing by an environment
//! variable.
//!
//! Plan specs are comma-separated `key=value` pairs; rates are in
//! permille (so CI smoke rates like `wal_enospc=25` read as 2.5%):
//!
//! ```text
//! seed=7,wal_enospc=100,wal_short=50,checkpoint=200,repl_drop=100
//! ```
//!
//! Site names are free-form — the plan stores whatever keys the spec
//! carries and hands out inert hooks for sites it never mentions. The
//! sites currently consulted in-tree are `wal_enospc` (append fails
//! before writing), `wal_short` (append tears mid-record, then repairs
//! to the last whole-record boundary exactly like a crash-and-reopen),
//! `checkpoint` (generation write fails), and `repl_drop` (a follower's
//! leader connection is dropped mid-tail).

use crate::rng::splitmix64;

/// Seeded per-site fault rates. Parsed from a spec string (see the
/// module docs) or built empty via `Default` — an empty plan hands out
/// inert hooks everywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rates: Vec<(String, u32)>,
}

/// FNV-1a, so each site name perturbs the seed differently.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// Parse a plan spec: comma-separated `key=value` pairs where
    /// `seed=N` sets the stream seed and any other key sets that
    /// site's failure rate in permille (0..=1000).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault seed {value:?} is not a u64"))?;
                continue;
            }
            let rate: u32 = value
                .parse()
                .map_err(|_| format!("fault rate {value:?} for {key:?} is not a u32"))?;
            if rate > 1000 {
                return Err(format!("fault rate {rate} for {key:?} exceeds 1000 permille"));
            }
            match plan.rates.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = rate,
                None => plan.rates.push((key.to_string(), rate)),
            }
        }
        Ok(plan)
    }

    /// Read a plan from the `STORYPIVOT_FAULTS` environment variable.
    /// Absent/empty → `None`; a malformed spec panics (a chaos run with
    /// a typo'd plan silently testing nothing is worse than a crash).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("STORYPIVOT_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(FaultPlan::parse(&spec).expect("malformed STORYPIVOT_FAULTS"))
    }

    /// The rate configured for `site`, in permille.
    pub fn rate(&self, site: &str) -> u32 {
        self.rates
            .iter()
            .find(|(k, _)| k == site)
            .map(|&(_, r)| r)
            .unwrap_or(0)
    }

    /// A hook for one fault site. `instance` separates streams that
    /// share a site name (e.g. one per shard): two hooks with the same
    /// `(site, instance)` fire identically, different instances draw
    /// from unrelated streams.
    pub fn hook(&self, site: &str, instance: u64) -> FaultHook {
        FaultHook {
            rate_permille: self.rate(site),
            state: self.seed ^ fnv1a(site) ^ instance.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            fired: 0,
        }
    }
}

/// One fault site's injection state: a failure rate plus a private
/// deterministic stream. Obtain via [`FaultPlan::hook`]; a
/// default-constructed hook is inert.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    rate_permille: u32,
    state: u64,
    fired: u64,
}

impl FaultHook {
    /// A hook that never fires (for code paths with no plan attached).
    pub fn inert() -> FaultHook {
        FaultHook::default()
    }

    /// Whether this hook can ever fire in this build. False for
    /// zero-rate hooks, and always false in release builds.
    pub fn is_active(&self) -> bool {
        cfg!(debug_assertions) && self.rate_permille > 0
    }

    /// Advance the stream one step and report whether the fault fires
    /// at this operation. Release builds never fire (the stream does
    /// not even advance, keeping the hot path untouched).
    pub fn fire(&mut self) -> bool {
        if !self.is_active() {
            return false;
        }
        let draw = splitmix64(&mut self.state) % 1000;
        if draw < self.rate_permille as u64 {
            self.fired += 1;
            true
        } else {
            false
        }
    }

    /// How many times this hook has fired.
    pub fn fired(&self) -> u64 {
        self.fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rates_and_seed() {
        let p = FaultPlan::parse("seed=7, wal_enospc=100, wal_short=50").unwrap();
        assert_eq!(p.rate("wal_enospc"), 100);
        assert_eq!(p.rate("wal_short"), 50);
        assert_eq!(p.rate("checkpoint"), 0);
        assert_eq!(p.seed, 7);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("wal_enospc").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("wal_enospc=1001").is_err());
        assert!(FaultPlan::parse("wal_enospc=-3").is_err());
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" , ,").unwrap(), FaultPlan::default());
    }

    #[test]
    fn duplicate_keys_keep_the_last_rate() {
        let p = FaultPlan::parse("checkpoint=10,checkpoint=900").unwrap();
        assert_eq!(p.rate("checkpoint"), 900);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn streams_are_deterministic_and_instance_separated() {
        let plan = FaultPlan::parse("seed=42,wal_short=500").unwrap();
        let draws = |mut h: FaultHook| (0..64).map(|_| h.fire()).collect::<Vec<_>>();
        let a = draws(plan.hook("wal_short", 0));
        let b = draws(plan.hook("wal_short", 0));
        let c = draws(plan.hook("wal_short", 1));
        assert_eq!(a, b, "same (site, instance) must replay identically");
        assert_ne!(a, c, "different instances must draw different streams");
        assert!(a.iter().any(|&f| f), "a 50% hook must fire within 64 draws");
        assert!(a.iter().any(|&f| !f), "and must not fire every time");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn fire_rate_tracks_the_configured_permille() {
        let plan = FaultPlan::parse("seed=1,site=100").unwrap();
        let mut h = plan.hook("site", 3);
        for _ in 0..10_000 {
            h.fire();
        }
        let rate = h.fired() as f64 / 10_000.0;
        assert!((0.07..0.13).contains(&rate), "got {rate}, wanted ≈0.10");
    }

    #[test]
    fn zero_rate_and_inert_hooks_never_fire() {
        let plan = FaultPlan::parse("seed=9,other=1000").unwrap();
        let mut h = plan.hook("unmentioned", 0);
        let mut i = FaultHook::inert();
        for _ in 0..256 {
            assert!(!h.fire());
            assert!(!i.fire());
        }
        assert!(!h.is_active());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn release_builds_never_fire() {
        let plan = FaultPlan::parse("seed=1,site=1000").unwrap();
        let mut h = plan.hook("site", 0);
        for _ in 0..256 {
            assert!(!h.fire(), "release builds must be immune to fault plans");
        }
        assert!(!h.is_active());
    }
}
