//! Story identification within one data source (paper §2.2).
//!
//! The identifier processes snippets *incrementally*: for every incoming
//! snippet it finds the most likely story and joins it, or opens a new
//! story around the snippet — exactly the loop described in §2.1. The
//! comparison scope depends on the [`MatchMode`]:
//!
//! * **Temporal** (Figure 2b): only snippets with timestamps in
//!   `[t-ω, t+ω]` are candidates — faster, and robust to story drift.
//! * **Complete** (Figure 2a): every prior snippet of the source is a
//!   candidate — the baseline that "overfits stories".
//!
//! Stories evolve, so the identifier also supports **merge** (an
//! incoming snippet that strongly matches two stories is evidence they
//! are one) and **split** (a maintenance pass that breaks a story whose
//! member-similarity graph has fallen apart) — the incremental record
//! linkage behaviour the paper cites.

use std::collections::HashMap;

use storypivot_sketch::HashFamily;
use storypivot_store::EventStore;
use storypivot_types::ids::IdGen;
use storypivot_types::{kernel, EntityId, Snippet, SnippetId, SourceId, SparseVec, StoryId, TermId};

use crate::config::{IdentifyConfig, MatchMode, SketchConfig};
use crate::hotcache::HotStoryCache;
use crate::state::StoryState;
use crate::unionfind::UnionFind;

/// Number of story-id slots reserved per source (story ids are
/// partitioned by source so identifiers can run in parallel without a
/// shared allocator).
pub const STORY_ID_STRIDE: u32 = 1 << 24;

/// What happened when a snippet was identified.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifyDecision {
    /// The story the snippet ended up in.
    pub story: StoryId,
    /// Whether that story was newly created for this snippet.
    pub created: bool,
    /// The best candidate score observed (0 when there were no candidates).
    pub best_score: f64,
    /// Stories merged into `story` as a side effect of this snippet.
    pub merged: Vec<StoryId>,
    /// Number of snippet comparisons performed (drives experiment E1).
    pub compared: usize,
    /// Hot-story-cache hits while scoring this snippet (candidate
    /// stories whose windowed fold was reused or merely extended).
    pub cache_hits: usize,
    /// Hot-story-cache misses (stories folded from scratch, whether
    /// admitted to the cache or accumulated in local scratch).
    pub cache_misses: usize,
}

/// Report of a maintenance pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceReport {
    /// Each entry: a story that split, with the ids of the fragments
    /// (the original id is reused for the largest fragment).
    pub splits: Vec<(StoryId, Vec<StoryId>)>,
}

/// Where a candidate story's windowed fold lives for the current probe.
/// Phase 2 sets this for every live slot; phase 3 reads the fold back
/// at array-index cost (no per-story hashing in the batch kernels).
#[derive(Debug, Clone, Copy)]
enum Fold {
    /// Hot-cache slab index (read with [`HotStoryCache::by_index`]).
    Cached(u32),
    /// Pooled local scratch buffer index.
    Local(u32),
}

/// One candidate story's accumulation state during a probe.
#[derive(Debug, Clone)]
struct Slot {
    story: StoryId,
    /// Best single-pair similarity seen so far.
    pair: f64,
    /// Indices into the probe's candidate list belonging to this story,
    /// in window (fold) order.
    cand_idx: Vec<u32>,
    /// Fold location; the placeholder is always overwritten in phase 2.
    fold: Fold,
}

impl Slot {
    fn reset(&mut self, story: StoryId) {
        self.story = story;
        self.pair = 0.0;
        self.cand_idx.clear();
        self.fold = Fold::Local(0);
    }
}

/// Reusable per-probe scoring state. Every buffer is pooled: a probe
/// clears and refills them, so steady-state candidate scoring performs
/// no allocation at all (the old code allocated a freshly merged vector
/// per candidate — O(story size) allocations per probe).
#[derive(Debug, Clone, Default)]
struct ScoreScratch {
    /// Story → slot index as a stamped dense array ("sparse set").
    /// Story ids are allocated sequentially per source, so the id
    /// offset from the source's base indexes directly — no hashing on
    /// the per-candidate path. `si_of[off]` is valid for the current
    /// probe iff `stamp[off] == probe`.
    stamp: Vec<u32>,
    si_of: Vec<u32>,
    probe: u32,
    /// Slot pool; only `slots[..live]` belong to the current probe.
    slots: Vec<Slot>,
    live: usize,
    /// Pool of fold buffers for stories that could not use the cache.
    locals: Vec<(SparseVec<EntityId>, SparseVec<TermId>)>,
    live_locals: usize,
    /// Batch cosine outputs, indexed like `slots`.
    ent_scores: Vec<f64>,
    term_scores: Vec<f64>,
    /// `(story, blended score)` ranking buffer.
    ranked: Vec<(StoryId, f64)>,
}

impl ScoreScratch {
    fn begin(&mut self) {
        self.probe = self.probe.wrapping_add(1);
        if self.probe == 0 {
            // Stamp wrapped (once per 2^32 probes): old stamps could
            // collide, so reset them all and restart at 1.
            self.stamp.fill(0);
            self.probe = 1;
        }
        self.live = 0;
        self.live_locals = 0;
    }

    /// Index of the slot for `story` (id offset `off` from the source's
    /// story-id base), acquiring one from the pool on first sight.
    /// Slots are issued in first-seen order, exactly as the hash-map
    /// entry API this replaces.
    fn slot(&mut self, story: StoryId, off: usize) -> usize {
        if off >= self.stamp.len() {
            self.stamp.resize(off + 1, 0);
            self.si_of.resize(off + 1, 0);
        }
        if self.stamp[off] == self.probe {
            return self.si_of[off] as usize;
        }
        let si = self.live;
        self.live += 1;
        if si == self.slots.len() {
            self.slots.push(Slot {
                story,
                pair: 0.0,
                cand_idx: Vec::new(),
                fold: Fold::Local(0),
            });
        } else {
            self.slots[si].reset(story);
        }
        self.stamp[off] = self.probe;
        self.si_of[off] = si as u32;
        si
    }
}

/// Incremental story identifier for one data source.
#[derive(Debug, Clone)]
pub struct Identifier {
    source: SourceId,
    cfg: IdentifyConfig,
    sketch_cfg: SketchConfig,
    family: HashFamily,
    stories: HashMap<StoryId, StoryState>,
    assignment: HashMap<SnippetId, StoryId>,
    /// Dense mirror of `assignment` indexed by snippet raw id, for the
    /// per-candidate lookup on the scoring hot path (`u32::MAX` ⇒ not
    /// assigned, or — pathologically — a story whose raw id is
    /// `u32::MAX`; lookups fall back to the map for that value).
    assign_dense: Vec<u32>,
    ids: IdGen<StoryId>,
    since_maintenance: usize,
    cache: HotStoryCache,
    scratch: ScoreScratch,
}

impl Identifier {
    /// A fresh identifier for `source`.
    pub fn new(source: SourceId, cfg: IdentifyConfig, sketch_cfg: SketchConfig) -> Self {
        Identifier {
            source,
            family: HashFamily::new(sketch_cfg.seed, sketch_cfg.minhash_k),
            stories: HashMap::new(),
            assignment: HashMap::new(),
            assign_dense: Vec::new(),
            ids: IdGen::starting_at(source.raw().wrapping_mul(STORY_ID_STRIDE)),
            since_maintenance: 0,
            cache: HotStoryCache::new(cfg.hot_cache_capacity),
            scratch: ScoreScratch::default(),
            cfg,
            sketch_cfg,
        }
    }

    /// The source this identifier owns.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Number of (non-empty) stories.
    pub fn story_count(&self) -> usize {
        self.stories.len()
    }

    /// All story states (arbitrary order).
    pub fn stories(&self) -> impl Iterator<Item = &StoryState> + '_ {
        self.stories.values()
    }

    /// Story ids sorted ascending (deterministic iteration).
    pub fn story_ids(&self) -> Vec<StoryId> {
        let mut v: Vec<StoryId> = self.stories.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// One story's state.
    pub fn story(&self, id: StoryId) -> Option<&StoryState> {
        self.stories.get(&id)
    }

    /// The story a snippet is assigned to.
    pub fn story_of(&self, snippet: SnippetId) -> Option<StoryId> {
        self.assignment.get(&snippet).copied()
    }

    /// Number of assigned snippets.
    pub fn assigned_count(&self) -> usize {
        self.assignment.len()
    }

    /// Iterate all `(snippet, story)` assignments (arbitrary order).
    pub fn assignments(&self) -> impl Iterator<Item = (SnippetId, StoryId)> + '_ {
        self.assignment.iter().map(|(&s, &c)| (s, c))
    }

    /// Raw value of the next story id this identifier would allocate
    /// (checkpointing).
    pub fn next_story_id_raw(&self) -> u32 {
        self.ids.allocated()
    }

    /// Restore the story-id allocator position (checkpoint load).
    pub fn restore_next_story_id(&mut self, raw: u32) {
        self.ids = IdGen::starting_at(raw);
    }

    /// The hash family used by this identifier's sketches.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Record `snippet → story` in both the map and the dense mirror.
    /// Every assignment mutation must go through this or
    /// [`Identifier::erase_assignment`] to keep the mirror truthful.
    fn record_assignment(&mut self, snippet: SnippetId, story: StoryId) {
        self.assignment.insert(snippet, story);
        let off = snippet.index();
        if off >= self.assign_dense.len() {
            self.assign_dense.resize(off + 1, u32::MAX);
        }
        self.assign_dense[off] = story.raw();
    }

    /// Remove `snippet` from both the map and the dense mirror.
    fn erase_assignment(&mut self, snippet: SnippetId) -> Option<StoryId> {
        let prev = self.assignment.remove(&snippet);
        if prev.is_some() {
            self.assign_dense[snippet.index()] = u32::MAX;
        }
        prev
    }

    /// Identify one snippet. The snippet must already be stored in
    /// `store` (so window queries can see it); it must belong to this
    /// identifier's source.
    ///
    /// Returns the decision; also runs the periodic maintenance pass
    /// when due (its effect is visible through the story table, not the
    /// returned decision).
    pub fn assign(&mut self, snippet: &Snippet, store: &EventStore) -> IdentifyDecision {
        let (compared, cache_hits, cache_misses) = self.score_probe(snippet, store);
        self.decide(snippet, compared, cache_hits, cache_misses)
    }

    /// The scoring phases of [`Identifier::assign`]: score `snippet`
    /// against every candidate story and leave the ranked `(story,
    /// score)` list in the internal scratch. Mutates only the hot-story
    /// cache (folds, admissions, LFU popularity) — never assignments or
    /// the story table — so running it without the subsequent decision
    /// is harmless, and running it twice makes the second pass a
    /// guaranteed cache hit. Returns `(compared, cache_hits,
    /// cache_misses)`.
    ///
    /// Public so the benchmark harness can time the similarity hot path
    /// in isolation, symmetric with the preserved legacy scorer.
    pub fn score_probe(&mut self, snippet: &Snippet, store: &EventStore) -> (usize, usize, usize) {
        debug_assert_eq!(snippet.source, self.source);

        // ---- phase 1: pair scoring, group candidates by story ----------
        //
        // Score = pair_blend·best-pair + (1-pair_blend)·window-centroid.
        // The best-pair (single-link) component lets evolving stories
        // chain through their most recent snippets; the centroid of the
        // story's *windowed* members keeps one spuriously similar pair
        // from chaining unrelated stories together (the incremental
        // record-linkage failure mode at scale). E10 ablates the blend.
        let candidates: Vec<&Snippet> = match self.cfg.mode {
            MatchMode::Temporal { omega } => store.window(self.source, snippet.timestamp, omega),
            MatchMode::Complete => store.snippets_of_source(self.source),
        };
        let mut compared = 0usize;
        let scorer = self.cfg.weights.probe(&snippet.content);
        let id_base = self.source.raw().wrapping_mul(STORY_ID_STRIDE);
        self.scratch.begin();
        for (ci, cand) in candidates.iter().enumerate() {
            if cand.id == snippet.id {
                continue;
            }
            let story = match self.assign_dense.get(cand.id.index()) {
                Some(&raw) if raw != u32::MAX => StoryId::new(raw),
                // Sentinel collision or unmirrored id: the map decides.
                _ => match self.assignment.get(&cand.id) {
                    Some(&s) => s,
                    None => continue, // not yet identified (later batch position)
                },
            };
            compared += 1;
            let s = scorer.score(&cand.content);
            let off = story.raw().wrapping_sub(id_base) as usize;
            let si = self.scratch.slot(story, off);
            let slot = &mut self.scratch.slots[si];
            if s > slot.pair {
                slot.pair = s;
            }
            slot.cand_idx.push(ci as u32);
        }

        // ---- phase 2: bring each story's windowed fold current ---------
        //
        // The fold (sum of the story's windowed members' vectors) is the
        // expensive part; hot stories are served from the cache, which
        // only has to extend the fold by the members that newly entered
        // the window. Everything else is refolded into pooled scratch.
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        {
            let ScoreScratch {
                stamp,
                probe,
                slots,
                live,
                locals,
                live_locals,
                ..
            } = &mut self.scratch;
            // A story is part of the current probe iff its stamp slot
            // carries this probe's stamp — the sparse-set equivalent of
            // the old `slot_of.contains_key`.
            let in_probe = |s: StoryId| {
                let off = s.raw().wrapping_sub(id_base) as usize;
                stamp.get(off).is_some_and(|&st| st == *probe)
            };
            for slot in &mut slots[..*live] {
                if let Some((idx, entry)) = self.cache.get_mut_indexed(slot.story) {
                    let is_prefix = entry.members.len() <= slot.cand_idx.len()
                        && entry
                            .members
                            .iter()
                            .zip(&slot.cand_idx)
                            .all(|(&m, &ci)| m == candidates[ci as usize].id);
                    if is_prefix {
                        // Exact hit or trailing-edge growth: fold only
                        // the members beyond the cached list.
                        for &ci in &slot.cand_idx[entry.members.len()..] {
                            let c = candidates[ci as usize];
                            entry.entities.merge_add(c.entities());
                            entry.terms.merge_add(c.terms());
                            entry.members.push(c.id);
                        }
                        entry.uses += 1;
                        cache_hits += 1;
                    } else {
                        // Window slid or membership changed: refold in
                        // place, keeping the entry's LFU popularity.
                        let uses = entry.uses;
                        entry.reset();
                        entry.uses = uses + 1;
                        for &ci in &slot.cand_idx {
                            let c = candidates[ci as usize];
                            entry.entities.merge_add(c.entities());
                            entry.terms.merge_add(c.terms());
                            entry.members.push(c.id);
                        }
                        cache_misses += 1;
                    }
                    slot.fold = Fold::Cached(idx);
                    continue;
                }
                if let Some((idx, entry)) = self.cache.admit(slot.story, &in_probe) {
                    entry.uses = 1;
                    for &ci in &slot.cand_idx {
                        let c = candidates[ci as usize];
                        entry.entities.merge_add(c.entities());
                        entry.terms.merge_add(c.terms());
                        entry.members.push(c.id);
                    }
                    cache_misses += 1;
                    slot.fold = Fold::Cached(idx);
                    continue;
                }
                // Cache disabled or full of protected entries: fold into
                // a pooled local buffer. Bit-identical either way.
                let li = *live_locals;
                *live_locals += 1;
                if li == locals.len() {
                    locals.push((SparseVec::new(), SparseVec::new()));
                }
                let (ents, terms) = &mut locals[li];
                ents.clear();
                terms.clear();
                for &ci in &slot.cand_idx {
                    let c = candidates[ci as usize];
                    ents.merge_add(c.entities());
                    terms.merge_add(c.terms());
                }
                cache_misses += 1;
                slot.fold = Fold::Local(li as u32);
            }
        }

        // ---- phase 3: batch-score the probe, rank stories --------------
        {
            let ScoreScratch {
                slots,
                live,
                locals,
                ent_scores,
                term_scores,
                ranked,
                ..
            } = &mut self.scratch;
            let cache = &self.cache;
            kernel::cosine_batch(
                snippet.entities().as_slice(),
                snippet.entities().norm(),
                slots[..*live].iter().map(|slot| {
                    let v = match slot.fold {
                        Fold::Local(li) => &locals[li as usize].0,
                        Fold::Cached(ci) => &cache.by_index(ci).entities,
                    };
                    (v.as_slice(), v.norm())
                }),
                ent_scores,
            );
            kernel::cosine_batch(
                snippet.terms().as_slice(),
                snippet.terms().norm(),
                slots[..*live].iter().map(|slot| {
                    let v = match slot.fold {
                        Fold::Local(li) => &locals[li as usize].1,
                        Fold::Cached(ci) => &cache.by_index(ci).terms,
                    };
                    (v.as_slice(), v.norm())
                }),
                term_scores,
            );
            let w = &self.cfg.weights;
            ranked.clear();
            for (si, slot) in slots[..*live].iter().enumerate() {
                let type_affinity = snippet.content.event_type.affinity(
                    self.stories
                        .get(&slot.story)
                        .map(|s| s.dominant_event_type())
                        .unwrap_or(snippet.content.event_type),
                );
                let centroid = (w.entity * ent_scores[si]
                    + w.term * term_scores[si]
                    + w.event * type_affinity)
                    / w.total();
                ranked.push((
                    slot.story,
                    self.cfg.pair_blend * slot.pair + (1.0 - self.cfg.pair_blend) * centroid,
                ));
            }
            // total_cmp keeps this a strict weak order even when a
            // degenerate weight config produces NaN scores; NaN ranks
            // first but fails the match threshold, so the decision stays
            // deterministic instead of depending on sort internals.
            ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        (compared, cache_hits, cache_misses)
    }

    /// The decision phase of [`Identifier::assign`]: consume the ranked
    /// list left in scratch by [`Identifier::score_probe`] and commit
    /// the assignment (story creation, merges, bookkeeping).
    fn decide(
        &mut self,
        snippet: &Snippet,
        compared: usize,
        cache_hits: usize,
        cache_misses: usize,
    ) -> IdentifyDecision {
        // ---- pick the best story, detect merge evidence ---------------
        let decision = match self.scratch.ranked.first().copied() {
            Some((best_story, best_score)) if best_score >= self.cfg.match_threshold => {
                // Merge every other story that also matches strongly.
                let mut merged = Vec::new();
                for i in 1..self.scratch.ranked.len() {
                    let (other, score) = self.scratch.ranked[i];
                    if score >= self.cfg.merge_threshold {
                        if let Some(other_state) = self.stories.remove(&other) {
                            for &m in &other_state.story.members {
                                self.record_assignment(m, best_story);
                            }
                            self.stories
                                .get_mut(&best_story)
                                .expect("best story exists")
                                .absorb(&other_state);
                            self.cache.invalidate(other);
                            merged.push(other);
                        }
                    }
                }
                if !merged.is_empty() {
                    self.cache.invalidate(best_story);
                }
                let state = self.stories.get_mut(&best_story).expect("best story exists");
                state.add_snippet(snippet, &self.family);
                self.record_assignment(snippet.id, best_story);
                IdentifyDecision {
                    story: best_story,
                    created: false,
                    best_score,
                    merged,
                    compared,
                    cache_hits,
                    cache_misses,
                }
            }
            other => {
                let best_score = other.map_or(0.0, |(_, s)| s);
                let id = self.ids.next_id();
                let mut state = StoryState::new(
                    id,
                    self.source,
                    &self.family,
                    &self.sketch_cfg,
                    self.cfg_bucket_width(),
                );
                state.add_snippet(snippet, &self.family);
                self.stories.insert(id, state);
                self.record_assignment(snippet.id, id);
                IdentifyDecision {
                    story: id,
                    created: true,
                    best_score,
                    merged: Vec::new(),
                    compared,
                    cache_hits,
                    cache_misses,
                }
            }
        };

        self.since_maintenance += 1;
        decision
    }

    /// Whether the periodic merge/split maintenance pass is due. Owners
    /// call [`Identifier::maintain`] when it is (the pass is separate so
    /// the caller can observe the split report, e.g. for dirty-story
    /// tracking in incremental alignment).
    pub fn maintenance_due(&self) -> bool {
        self.cfg.maintenance_every > 0 && self.since_maintenance >= self.cfg.maintenance_every
    }

    /// Bucket width for story evolution signatures. Identification keeps
    /// day-granularity signatures; alignment may rebucket.
    fn cfg_bucket_width(&self) -> i64 {
        storypivot_types::DAY
    }

    /// Remove a snippet from its story (document removal / refinement).
    /// Rebuilds the story's aggregates exactly; drops the story when it
    /// becomes empty. Returns the story it was removed from.
    pub fn remove_snippet(&mut self, snippet: &Snippet, store: &EventStore) -> Option<StoryId> {
        let story_id = self.erase_assignment(snippet.id)?;
        self.cache.invalidate(story_id);
        let state = self.stories.get_mut(&story_id)?;
        state.story.remove_member(snippet.id);
        if state.story.is_empty() {
            self.stories.remove(&story_id);
        } else {
            let members: Vec<&Snippet> = state
                .story
                .members
                .iter()
                .filter_map(|&m| store.get(m))
                .collect();
            let family = self.family.clone();
            let cfg = self.sketch_cfg;
            self.stories
                .get_mut(&story_id)
                .expect("story exists")
                .rebuild(members, &family, &cfg);
        }
        Some(story_id)
    }

    /// Force-assign a snippet to a specific story (used by refinement to
    /// propagate alignment decisions back, Figure 1d). Creates the story
    /// if it does not exist.
    pub fn force_assign(&mut self, snippet: &Snippet, story: StoryId) {
        debug_assert_eq!(snippet.source, self.source);
        self.cache.invalidate(story);
        let state = self.stories.entry(story).or_insert_with(|| {
            StoryState::new(
                story,
                self.source,
                &self.family,
                &self.sketch_cfg,
                storypivot_types::DAY,
            )
        });
        state.add_snippet(snippet, &self.family);
        self.record_assignment(snippet.id, story);
    }

    /// Allocate a fresh story id (for refinement moves that need a new
    /// story).
    pub fn fresh_story_id(&mut self) -> StoryId {
        self.ids.next_id()
    }

    /// Run the merge/split maintenance pass now.
    ///
    /// Split: inside each story, member snippets stay connected when
    /// their pairwise similarity reaches `split_threshold` *and* (in
    /// temporal mode) they lie within `2ω` of each other. Stories whose
    /// member graph decomposes are split into their components.
    pub fn maintain(&mut self, store: &EventStore) -> MaintenanceReport {
        self.since_maintenance = 0;
        let mut report = MaintenanceReport::default();
        let story_ids = self.story_ids();
        for story_id in story_ids {
            let members: Vec<&Snippet> = {
                let state = &self.stories[&story_id];
                if state.len() < 3 {
                    continue;
                }
                state
                    .story
                    .members
                    .iter()
                    .filter_map(|&m| store.get(m))
                    .collect()
            };
            if members.len() < 3 {
                continue;
            }
            let mut uf = UnionFind::new(members.len());
            let max_gap = self.cfg.mode.omega().map(|w| 2 * w);
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if let Some(gap) = max_gap {
                        if members[i].timestamp.distance(members[j].timestamp) > gap {
                            continue;
                        }
                    }
                    if self.cfg.weights.snippet_sim(members[i], members[j])
                        >= self.cfg.split_threshold
                    {
                        uf.union(i, j);
                    }
                }
            }
            if uf.component_count() == 1 {
                continue;
            }
            // Split: largest component keeps the id, others get new ids.
            self.cache.invalidate(story_id);
            let mut groups = uf.groups();
            groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
            let family = self.family.clone();
            let sketch_cfg = self.sketch_cfg;
            let mut fragment_ids = Vec::new();

            // Rebuild the surviving story from the largest group.
            let keep: Vec<&Snippet> = groups[0].iter().map(|&i| members[i]).collect();
            self.stories
                .get_mut(&story_id)
                .expect("story exists")
                .rebuild(keep.iter().copied(), &family, &sketch_cfg);
            fragment_ids.push(story_id);

            for group in &groups[1..] {
                let new_id = self.ids.next_id();
                let mut state = StoryState::new(
                    new_id,
                    self.source,
                    &family,
                    &sketch_cfg,
                    storypivot_types::DAY,
                );
                for &i in group {
                    state.add_snippet(members[i], &family);
                    self.record_assignment(members[i].id, new_id);
                }
                self.stories.insert(new_id, state);
                fragment_ids.push(new_id);
            }
            report.splits.push((story_id, fragment_ids));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, EventType, Source, SourceKind, TermId, Timestamp, DAY};

    fn store() -> EventStore {
        let mut s = EventStore::new();
        s.register_source(Source::new(SourceId::new(0), "s0", SourceKind::Newspaper))
            .unwrap();
        s
    }

    fn snip(id: u32, day: i64, entities: &[u32], terms: &[u32]) -> Snippet {
        let mut b = Snippet::builder(
            SnippetId::new(id),
            SourceId::new(0),
            Timestamp::from_secs(day * DAY),
        )
        .event_type(EventType::Accident);
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        b.build()
    }

    fn ident(mode: MatchMode) -> Identifier {
        let cfg = IdentifyConfig {
            mode,
            maintenance_every: 0,
            ..IdentifyConfig::default()
        };
        Identifier::new(SourceId::new(0), cfg, SketchConfig::default())
    }

    fn ingest(st: &mut EventStore, id: &mut Identifier, s: Snippet) -> IdentifyDecision {
        st.insert(s.clone()).unwrap();
        id.assign(&s, st)
    }

    #[test]
    fn first_snippet_creates_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let d = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        assert!(d.created);
        assert_eq!(d.best_score, 0.0);
        assert_eq!(id.story_count(), 1);
        assert_eq!(id.story_of(SnippetId::new(0)), Some(d.story));
    }

    #[test]
    fn similar_snippets_join_the_same_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        let d1 = ingest(&mut st, &mut id, snip(1, 1, &[1, 2], &[10, 11]));
        assert!(!d1.created);
        assert_eq!(d1.story, d0.story);
        assert_eq!(id.story_count(), 1);
        assert!(d1.best_score > 0.9);
    }

    #[test]
    fn dissimilar_snippets_get_separate_stories() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        let d = ingest(&mut st, &mut id, snip(1, 0, &[7, 8], &[20]));
        assert!(d.created);
        assert_eq!(id.story_count(), 2);
    }

    #[test]
    fn temporal_mode_ignores_out_of_window_candidates() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 2 * DAY });
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        // Identical content but 100 days later: outside the window.
        let d1 = ingest(&mut st, &mut id, snip(1, 100, &[1, 2], &[10]));
        assert!(d1.created);
        assert_ne!(d1.story, d0.story);
        assert_eq!(d1.compared, 0);
    }

    #[test]
    fn complete_mode_chains_across_time() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        let d1 = ingest(&mut st, &mut id, snip(1, 100, &[1, 2], &[10]));
        assert_eq!(d1.story, d0.story);
        assert!(d1.compared >= 1);
    }

    #[test]
    fn complete_comparisons_grow_with_corpus() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let mut last = 0;
        for i in 0..20 {
            let d = ingest(&mut st, &mut id, snip(i, i as i64, &[i, i + 100], &[i]));
            last = d.compared;
        }
        assert_eq!(last, 19, "complete mode compares against all prior snippets");
    }

    #[test]
    fn temporal_comparisons_stay_bounded() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 3 * DAY });
        let mut last = 0;
        for i in 0..50 {
            let d = ingest(&mut st, &mut id, snip(i, i as i64, &[1], &[1]));
            last = d.compared;
        }
        assert!(last <= 7, "window bounds comparisons, got {last}");
    }

    #[test]
    fn bridging_snippet_merges_stories() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        // Two initially distinct stories...
        let da = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        let db = ingest(&mut st, &mut id, snip(1, 1, &[3, 4], &[12, 13]));
        assert_ne!(da.story, db.story);
        // ...bridged by a snippet strongly matching both.
        let d = ingest(&mut st, &mut id, snip(2, 2, &[1, 2, 3, 4], &[10, 11, 12, 13]));
        assert_eq!(id.story_count(), 1, "stories should merge");
        assert_eq!(d.merged.len(), 1);
        // All three snippets now share one story.
        let s0 = id.story_of(SnippetId::new(0)).unwrap();
        let s1 = id.story_of(SnippetId::new(1)).unwrap();
        let s2 = id.story_of(SnippetId::new(2)).unwrap();
        assert_eq!(s0, s1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn maintenance_splits_disconnected_story() {
        let mut st = store();
        // High merge threshold so the bridge joins but doesn't merge, low
        // split threshold so the split check uses pure connectivity.
        let cfg = IdentifyConfig {
            mode: MatchMode::Complete,
            match_threshold: 0.2,
            merge_threshold: 0.99,
            split_threshold: 0.3,
            maintenance_every: 0,
            ..IdentifyConfig::default()
        };
        let mut id = Identifier::new(SourceId::new(0), cfg, SketchConfig::default());
        // A story built from a chain a-bridge-b where a and b are
        // unrelated; removing the bridge disconnects them.
        ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        ingest(&mut st, &mut id, snip(1, 1, &[1, 2, 3, 4], &[10, 11, 12, 13]));
        ingest(&mut st, &mut id, snip(2, 2, &[3, 4], &[12, 13]));
        assert_eq!(id.story_count(), 1);
        // Remove the bridge.
        let bridge = st.get(SnippetId::new(1)).unwrap().clone();
        st.remove(SnippetId::new(1)).unwrap();
        id.remove_snippet(&bridge, &st);
        let report = id.maintain(&st);
        // Two members left with sim 0 → still one story of 2? No:
        // stories under 3 members are skipped. Add a third to each side
        // and re-check.
        assert_eq!(report.splits.len(), 0);
        ingest(&mut st, &mut id, snip(3, 0, &[1, 2], &[10, 11]));
        ingest(&mut st, &mut id, snip(4, 2, &[3, 4], &[12, 13]));
        let report = id.maintain(&st);
        assert_eq!(report.splits.len(), 1);
        assert_eq!(id.story_count(), 2);
        // The two sides are now distinct stories.
        let sa = id.story_of(SnippetId::new(0)).unwrap();
        let sb = id.story_of(SnippetId::new(2)).unwrap();
        assert_ne!(sa, sb);
        assert_eq!(id.story_of(SnippetId::new(3)), Some(sa));
        assert_eq!(id.story_of(SnippetId::new(4)), Some(sb));
    }

    #[test]
    fn remove_snippet_drops_empty_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let s = snip(0, 0, &[1], &[10]);
        ingest(&mut st, &mut id, s.clone());
        st.remove(SnippetId::new(0)).unwrap();
        let removed_from = id.remove_snippet(&s, &st);
        assert!(removed_from.is_some());
        assert_eq!(id.story_count(), 0);
        assert_eq!(id.story_of(SnippetId::new(0)), None);
    }

    #[test]
    fn out_of_order_arrival_joins_existing_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 5 * DAY });
        ingest(&mut st, &mut id, snip(0, 10, &[1, 2], &[10]));
        // A late-arriving snippet dated *before* the first one.
        let d = ingest(&mut st, &mut id, snip(1, 8, &[1, 2], &[10]));
        assert!(!d.created, "symmetric window must catch late arrivals");
        assert_eq!(id.story_count(), 1);
    }

    #[test]
    fn story_ids_are_partitioned_by_source() {
        let a = Identifier::new(SourceId::new(0), IdentifyConfig::default(), SketchConfig::default());
        let b = Identifier::new(SourceId::new(1), IdentifyConfig::default(), SketchConfig::default());
        let mut a = a;
        let mut b = b;
        assert_ne!(a.fresh_story_id(), b.fresh_story_id());
    }

    #[test]
    fn adversarial_weights_keep_assignment_deterministic() {
        // Infinite weights drive every blended score to NaN (inf·0 and
        // inf/inf both appear). The old partial_cmp/unwrap_or(Equal)
        // comparator was not a strict weak order under mixed NaN, so the
        // ranking — and thus the partition — depended on sort internals.
        // With total_cmp the sort is well-defined and NaN fails the
        // match threshold, so every run yields the same partition.
        use crate::sim::SimWeights;
        let run = || {
            let cfg = IdentifyConfig {
                mode: MatchMode::Complete,
                weights: SimWeights {
                    entity: f64::INFINITY,
                    term: 1.0,
                    event: 0.0,
                },
                maintenance_every: 0,
                ..IdentifyConfig::default()
            };
            let mut st = store();
            let mut id = Identifier::new(SourceId::new(0), cfg, SketchConfig::default());
            let mut out = Vec::new();
            for i in 0..16u32 {
                let d = ingest(&mut st, &mut id, snip(i, (i / 3) as i64, &[i % 4], &[i % 3]));
                out.push((d.story, d.created));
            }
            out
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // NaN never satisfies the threshold: every snippet opens a story.
        assert!(a.iter().all(|&(_, created)| created));
    }

    #[test]
    fn hot_cache_hits_on_repeated_probes_of_the_same_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 5 * DAY });
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        assert_eq!(d0.cache_hits + d0.cache_misses, 0, "no candidate stories yet");
        let d1 = ingest(&mut st, &mut id, snip(1, 0, &[1, 2], &[10, 11]));
        assert_eq!((d1.cache_hits, d1.cache_misses), (0, 1), "first fold of the story");
        let d2 = ingest(&mut st, &mut id, snip(2, 0, &[1, 2], &[10, 11]));
        assert_eq!(
            (d2.cache_hits, d2.cache_misses),
            (1, 0),
            "cached fold extends at the trailing edge"
        );
    }

    #[test]
    fn disabled_cache_counts_only_misses() {
        let mut st = store();
        let cfg = IdentifyConfig {
            mode: MatchMode::Complete,
            maintenance_every: 0,
            hot_cache_capacity: 0,
            ..IdentifyConfig::default()
        };
        let mut id = Identifier::new(SourceId::new(0), cfg, SketchConfig::default());
        ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        ingest(&mut st, &mut id, snip(1, 0, &[1, 2], &[10, 11]));
        let d = ingest(&mut st, &mut id, snip(2, 0, &[1, 2], &[10, 11]));
        assert_eq!(d.cache_hits, 0);
        assert_eq!(d.cache_misses, 1, "one candidate story, folded locally");
    }

    #[test]
    fn force_assign_moves_snippet() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let s = snip(0, 0, &[1], &[10]);
        ingest(&mut st, &mut id, s.clone());
        let target = id.fresh_story_id();
        id.remove_snippet(&s, &st);
        id.force_assign(&s, target);
        assert_eq!(id.story_of(SnippetId::new(0)), Some(target));
        assert_eq!(id.story(target).unwrap().len(), 1);
    }
}
