//! Per-story aggregate state.
//!
//! A [`StoryState`] carries everything the matching phases need to know
//! about one per-source story without touching its member snippets:
//! centroid entity/term vectors, a MinHash sketch, a temporal evolution
//! signature, heavy-hitter digests, and the event-type histogram. All of
//! it updates incrementally in `O(content + k)` per added snippet — the
//! "sketch" abstraction of paper §2.4.

use storypivot_sketch::{HashFamily, MinHash, TemporalSignature, TopK};
use storypivot_types::{
    kernel, EntityId, EventType, Snippet, SourceId, SparseVec, StoryId, TermId, TimeRange,
};

use crate::config::SketchConfig;

/// Map an entity id into the shared 64-bit sketch item space.
#[inline]
pub fn entity_item(e: EntityId) -> u64 {
    (1u64 << 32) | e.raw() as u64
}

/// Map a term id into the shared 64-bit sketch item space.
#[inline]
pub fn term_item(t: TermId) -> u64 {
    (2u64 << 32) | t.raw() as u64
}

/// Aggregate state of one per-source story.
#[derive(Debug, Clone)]
pub struct StoryState {
    /// The story's membership and lifespan.
    pub story: storypivot_types::Story,
    /// Summed entity weights over all member snippets (centroid × n).
    pub entities: SparseVec<EntityId>,
    /// Summed term weights over all member snippets.
    pub terms: SparseVec<TermId>,
    /// MinHash sketch of the union of member entity/term sets.
    pub sketch: MinHash,
    /// Bucketed activity curve of the story's evolution.
    pub signature: TemporalSignature,
    /// Heavy-hitter entity digest (`{UKR,5}; {NTH,2}; …` in Figure 4).
    pub entity_counts: TopK,
    /// Heavy-hitter description-term digest.
    pub term_counts: TopK,
    /// Histogram of member event types.
    pub event_types: [u32; EventType::COUNT],
    /// Cached argmax of `event_types` (ties break by discriminant),
    /// refreshed on every histogram mutation so the identification
    /// ranking loop reads a field instead of rescanning.
    dominant: EventType,
}

impl StoryState {
    /// A new empty story in `source`.
    pub fn new(id: StoryId, source: SourceId, family: &HashFamily, cfg: &SketchConfig, bucket_width: i64) -> Self {
        StoryState {
            story: storypivot_types::Story::new(id, source),
            entities: SparseVec::new(),
            terms: SparseVec::new(),
            sketch: MinHash::empty(family.len()),
            signature: TemporalSignature::new(bucket_width),
            entity_counts: TopK::new(cfg.topk_capacity),
            term_counts: TopK::new(cfg.topk_capacity),
            event_types: [0; EventType::COUNT],
            dominant: EventType::Other,
        }
    }

    /// Story id.
    #[inline]
    pub fn id(&self) -> StoryId {
        self.story.id
    }

    /// Owning source.
    #[inline]
    pub fn source(&self) -> SourceId {
        self.story.source
    }

    /// Number of member snippets.
    #[inline]
    pub fn len(&self) -> usize {
        self.story.len()
    }

    /// Whether the story has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.story.is_empty()
    }

    /// Story lifespan.
    #[inline]
    pub fn lifespan(&self) -> TimeRange {
        self.story.lifespan
    }

    /// Fold a snippet into every aggregate.
    pub fn add_snippet(&mut self, snippet: &Snippet, family: &HashFamily) {
        debug_assert_eq!(snippet.source, self.story.source, "cross-source story member");
        self.story.add_member(snippet.id, snippet.timestamp);
        self.entities.merge_add(snippet.entities());
        self.terms.merge_add(snippet.terms());
        for e in snippet.entities().keys() {
            self.sketch.insert(family, entity_item(e));
            self.entity_counts.add(e.raw() as u64, 1);
        }
        for t in snippet.terms().keys() {
            self.sketch.insert(family, term_item(t));
            self.term_counts.add(t.raw() as u64, 1);
        }
        self.signature.add(snippet.timestamp, 1.0);
        self.event_types[snippet.content.event_type.code() as usize] += 1;
        self.refresh_dominant();
    }

    /// Remove a snippet from the *subtractable* aggregates. MinHash and
    /// TopK cannot subtract; callers that need them tight after removal
    /// rebuild via [`StoryState::rebuild`]. Returns whether the snippet
    /// was a member.
    pub fn remove_snippet(&mut self, snippet: &Snippet) -> bool {
        if !self.story.remove_member(snippet.id) {
            return false;
        }
        self.entities.merge_sub(snippet.entities());
        self.terms.merge_sub(snippet.terms());
        self.signature.remove(snippet.timestamp, 1.0);
        let ty = snippet.content.event_type.code() as usize;
        self.event_types[ty] = self.event_types[ty].saturating_sub(1);
        self.refresh_dominant();
        true
    }

    /// Rebuild every aggregate exactly from the given member snippets
    /// (used after removals and splits). The membership list is replaced
    /// by the snippets passed in.
    pub fn rebuild<'a, I>(&mut self, members: I, family: &HashFamily, cfg: &SketchConfig)
    where
        I: IntoIterator<Item = &'a Snippet>,
    {
        let id = self.story.id;
        let source = self.story.source;
        let bucket_width = self.signature.bucket_width();
        *self = StoryState::new(id, source, family, cfg, bucket_width);
        for s in members {
            self.add_snippet(s, family);
        }
    }

    /// Absorb all aggregates of `other` (story merge). Membership and
    /// lifespan merge too; `other` should be discarded afterwards.
    pub fn absorb(&mut self, other: &StoryState) {
        for &m in &other.story.members {
            if let Err(pos) = self.story.members.binary_search(&m) {
                self.story.members.insert(pos, m);
            }
        }
        self.story.lifespan = self.story.lifespan.cover(other.story.lifespan);
        self.entities.merge_add(&other.entities);
        self.terms.merge_add(&other.terms);
        self.sketch.merge(&other.sketch);
        self.signature.merge(&other.signature);
        self.entity_counts.merge(&other.entity_counts);
        self.term_counts.merge(&other.term_counts);
        for (a, &b) in self.event_types.iter_mut().zip(&other.event_types) {
            *a += b;
        }
        self.refresh_dominant();
    }

    /// The story's dominant event type (ties break by discriminant).
    #[inline]
    pub fn dominant_event_type(&self) -> EventType {
        self.dominant
    }

    /// Recompute the cached dominant event type from the histogram.
    fn refresh_dominant(&mut self) {
        let mut best = EventType::Other;
        let mut best_count = 0u32;
        for (i, &c) in self.event_types.iter().enumerate() {
            if c > best_count {
                best_count = c;
                best = EventType::ALL[i];
            }
        }
        self.dominant = best;
    }

    /// Centroid-normalized entity vector (weights divided by member
    /// count) — used for cohesion scoring.
    pub fn entity_centroid(&self) -> SparseVec<EntityId> {
        let mut v = self.entities.clone();
        if !self.is_empty() {
            v.scale(1.0 / self.len() as f32);
        }
        v
    }

    /// Exact content similarity between two stories: weighted Jaccard of
    /// entity mass plus cosine of term mass, averaged.
    pub fn content_sim_exact(&self, other: &StoryState) -> f64 {
        let e = kernel::weighted_jaccard(self.entities.as_slice(), other.entities.as_slice());
        let t = kernel::cosine(
            self.terms.as_slice(),
            self.terms.norm(),
            other.terms.as_slice(),
            other.terms.norm(),
        );
        0.6 * e + 0.4 * t
    }

    /// Sketched content similarity: MinHash Jaccard estimate over the
    /// union item sets (entities + terms).
    pub fn content_sim_sketch(&self, other: &StoryState) -> f64 {
        self.sketch.estimate_jaccard(&other.sketch)
    }

    /// Top `n` entities with (approximate) occurrence counts.
    pub fn top_entities(&self, n: usize) -> Vec<(EntityId, u64)> {
        self.entity_counts
            .top(n)
            .into_iter()
            .map(|(item, c)| (EntityId::new(item as u32), c))
            .collect()
    }

    /// Top `n` description terms with (approximate) occurrence counts.
    pub fn top_terms(&self, n: usize) -> Vec<(TermId, u64)> {
        self.term_counts
            .top(n)
            .into_iter()
            .map(|(item, c)| (TermId::new(item as u32), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{SnippetId, Timestamp, DAY};

    fn family() -> HashFamily {
        HashFamily::new(SketchConfig::default().seed, 64)
    }

    fn state() -> StoryState {
        StoryState::new(StoryId::new(0), SourceId::new(0), &family(), &SketchConfig::default(), DAY)
    }

    fn snip(id: u32, day: i64, entities: &[u32], terms: &[u32]) -> Snippet {
        let mut b = Snippet::builder(
            SnippetId::new(id),
            SourceId::new(0),
            Timestamp::from_secs(day * DAY),
        );
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        b.event_type(EventType::Accident).build()
    }

    #[test]
    fn add_updates_all_aggregates() {
        let f = family();
        let mut s = state();
        s.add_snippet(&snip(0, 0, &[1, 2], &[10]), &f);
        s.add_snippet(&snip(1, 2, &[1], &[10, 11]), &f);
        assert_eq!(s.len(), 2);
        assert_eq!(s.entities.get(&EntityId::new(1)), Some(2.0));
        assert_eq!(s.terms.get(&TermId::new(10)), Some(2.0));
        assert!(!s.sketch.is_empty());
        assert_eq!(s.signature.total(), 2.0);
        assert_eq!(s.dominant_event_type(), EventType::Accident);
        assert_eq!(s.top_entities(1), vec![(EntityId::new(1), 2)]);
        assert_eq!(
            s.lifespan(),
            TimeRange::new(Timestamp::from_secs(0), Timestamp::from_secs(2 * DAY))
        );
    }

    #[test]
    fn remove_subtracts() {
        let f = family();
        let mut s = state();
        let a = snip(0, 0, &[1, 2], &[10]);
        let b = snip(1, 1, &[1], &[11]);
        s.add_snippet(&a, &f);
        s.add_snippet(&b, &f);
        assert!(s.remove_snippet(&a));
        assert!(!s.remove_snippet(&a), "second removal is a no-op");
        assert_eq!(s.len(), 1);
        assert_eq!(s.entities.get(&EntityId::new(2)), None);
        assert_eq!(s.entities.get(&EntityId::new(1)), Some(1.0));
        assert_eq!(s.signature.total(), 1.0);
    }

    #[test]
    fn rebuild_restores_exact_state() {
        let f = family();
        let cfg = SketchConfig::default();
        let mut s = state();
        let a = snip(0, 0, &[1], &[10]);
        let b = snip(1, 1, &[2], &[11]);
        s.add_snippet(&a, &f);
        s.add_snippet(&b, &f);
        s.remove_snippet(&a);
        // Sketch is stale (still contains a's items); rebuild fixes it.
        s.rebuild([&b], &f, &cfg);
        let mut fresh = state();
        fresh.add_snippet(&b, &f);
        assert_eq!(s.sketch, fresh.sketch);
        assert_eq!(s.entities, fresh.entities);
        assert_eq!(s.story.members, fresh.story.members);
        assert_eq!(s.lifespan(), fresh.lifespan());
    }

    #[test]
    fn absorb_merges_everything() {
        let f = family();
        let mut a = state();
        a.add_snippet(&snip(0, 0, &[1], &[10]), &f);
        let mut b = StoryState::new(StoryId::new(1), SourceId::new(0), &f, &SketchConfig::default(), DAY);
        b.add_snippet(&snip(1, 5, &[2], &[11]), &f);
        a.absorb(&b);
        assert_eq!(a.len(), 2);
        assert!(a.story.contains(SnippetId::new(1)));
        assert_eq!(a.entities.len(), 2);
        assert_eq!(a.signature.total(), 2.0);
        assert_eq!(
            a.lifespan(),
            TimeRange::new(Timestamp::from_secs(0), Timestamp::from_secs(5 * DAY))
        );
    }

    #[test]
    fn similar_stories_have_high_content_sim() {
        let f = family();
        let mut a = state();
        let mut b = StoryState::new(StoryId::new(1), SourceId::new(1), &f, &SketchConfig::default(), DAY);
        for i in 0..5 {
            a.add_snippet(&snip(i, i as i64, &[1, 2, 3], &[10, 11]), &f);
        }
        for i in 5..10 {
            let mut s = snip(i, (i - 5) as i64, &[1, 2, 3], &[10, 11]);
            s.source = SourceId::new(1);
            b.add_snippet(&s, &f);
        }
        assert!(a.content_sim_exact(&b) > 0.8);
        assert!(a.content_sim_sketch(&b) > 0.8);

        let mut c = StoryState::new(StoryId::new(2), SourceId::new(1), &f, &SketchConfig::default(), DAY);
        let mut s = snip(20, 0, &[7, 8], &[20]);
        s.source = SourceId::new(1);
        c.add_snippet(&s, &f);
        assert!(a.content_sim_exact(&c) < 0.1);
        assert!(a.content_sim_sketch(&c) < 0.2);
    }

    #[test]
    fn centroid_divides_by_member_count() {
        let f = family();
        let mut s = state();
        s.add_snippet(&snip(0, 0, &[1], &[]), &f);
        s.add_snippet(&snip(1, 0, &[1], &[]), &f);
        let c = s.entity_centroid();
        assert!((c.get(&EntityId::new(1)).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn item_spaces_do_not_collide() {
        assert_ne!(entity_item(EntityId::new(5)), term_item(TermId::new(5)));
    }
}
