//! Micro-benchmarks of the substrate layers: text annotation, sketches,
//! and the event store. These bound the per-event budget available to
//! the story-detection phases above them.

use storypivot_bench::corpus_fixed_period;
use storypivot_gen::render_document;
use storypivot_sketch::{HashFamily, MinHash, TemporalSignature};
use storypivot_store::codec::{decode_store, encode_store};
use storypivot_store::EventStore;
use storypivot_substrate::timing::BenchGroup;
use storypivot_text::{porter_stem, tokenize, AhoCorasickBuilder, GazetteerBuilder};
use storypivot_types::{EntityId, Timestamp, DAY};

fn text_benches() {
    let corpus = corpus_fixed_period(200, 4, 3);
    // Realistic article text rendered from the corpus.
    let articles: Vec<String> = corpus
        .snippets
        .iter()
        .take(50)
        .map(|s| {
            let (title, body) = render_document(s, &corpus.entity_names, &corpus.term_names);
            format!("{title}. {body}")
        })
        .collect();

    let mut group = BenchGroup::from_env("text");
    group.bench("tokenize_50_articles", || {
        let mut tokens = 0usize;
        for a in &articles {
            tokens += tokenize(a).len();
        }
        tokens
    });

    let words: Vec<String> = articles
        .iter()
        .flat_map(|a| tokenize(a))
        .map(|t| t.norm)
        .collect();
    group.bench("porter_stem_corpus", || {
        let mut len = 0usize;
        for w in &words {
            len += porter_stem(w).len();
        }
        len
    });

    // Gazetteer with the full 500-entity catalog.
    let mut gz = GazetteerBuilder::new();
    for (i, name) in corpus.entity_names.iter().enumerate() {
        gz.add_entity(EntityId::new(i as u32), name, &[]);
    }
    let gazetteer = gz.build();
    group.bench("gazetteer_recognize_50_articles", || {
        let mut found = 0usize;
        for a in &articles {
            found += gazetteer.recognize(&tokenize(a)).len();
        }
        found
    });

    let mut ac = AhoCorasickBuilder::new();
    for name in corpus.entity_names.iter().take(200) {
        ac.add_pattern(name.to_ascii_lowercase());
    }
    let automaton = ac.build();
    let haystack: String = articles.join(" ").to_ascii_lowercase();
    group.bench("aho_corasick_scan", || automaton.find_all(haystack.as_bytes()).len());
    group.finish();
}

fn sketch_benches() {
    let mut group = BenchGroup::from_env("sketch");
    let family = HashFamily::new(1, 128);
    group.bench("minhash_insert_100_items_k128", || {
        let mut mh = MinHash::empty(128);
        for i in 0..100u64 {
            mh.insert(&family, i);
        }
        mh
    });
    let a = MinHash::from_items(&family, 0..100u64);
    let bqs = MinHash::from_items(&family, 50..150u64);
    group.bench("minhash_estimate_k128", || a.estimate_jaccard(&bqs));

    let mut sig_a = TemporalSignature::new(DAY);
    let mut sig_b = TemporalSignature::new(DAY);
    for d in 0..180 {
        sig_a.add(Timestamp::from_secs(d * DAY), (d % 5) as f32);
        sig_b.add(Timestamp::from_secs((d + 2) * DAY), (d % 3) as f32);
    }
    group.bench("temporal_containment_180d_lag3", || {
        sig_a.containment_similarity(&sig_b, 3)
    });
    group.finish();
}

fn store_benches() {
    let corpus = corpus_fixed_period(2_000, 8, 5);
    let mut group = BenchGroup::from_env("store");
    group.bench("ingest_out_of_order", || {
        let mut store = EventStore::new();
        for s in &corpus.sources {
            store.register_source(s.clone()).unwrap();
        }
        for s in &corpus.snippets {
            store.insert(s.clone()).unwrap();
        }
        store.len()
    });

    let mut store = EventStore::new();
    for s in &corpus.sources {
        store.register_source(s.clone()).unwrap();
    }
    for s in &corpus.snippets {
        store.insert(s.clone()).unwrap();
    }
    let mid = corpus.config.start + 90 * DAY;
    group.bench("window_query_14d", || {
        let mut n = 0usize;
        for src in &corpus.sources {
            n += store.window(src.id, mid, 14 * DAY).len();
        }
        n
    });
    group.bench("entity_candidates", || {
        store
            .candidates_by_entities((0..8u32).map(EntityId::new))
            .len()
    });

    let encoded = encode_store(&store);
    group.bench("codec_encode", || encode_store(&store).len());
    group.bench("codec_decode", || decode_store(&encoded).unwrap().len());
    group.finish();
}

fn main() {
    text_benches();
    sketch_benches();
    store_benches();
}
