//! Sketches for fast story/snippet comparison.
//!
//! Paper §2.4: *"we propose to abstract from snippets and stories into
//! one common format which we refer to as a sketch — a (smaller) unified
//! representation of the snippet or story that allows for fast and
//! efficient similarity comparisons"* (citing Muthukrishnan's data
//! streams monograph).
//!
//! This crate provides the sketch toolbox:
//!
//! * [`minhash`] — fixed-size MinHash signatures estimating Jaccard
//!   similarity of entity/term sets; signatures of snippets *merge* into
//!   signatures of stories in `O(k)`.
//! * [`countmin`] — Count-Min sketches for approximate term frequencies.
//! * [`topk`] — Space-Saving heavy-hitter tracking (drives the
//!   `{crash,3}; {plane,3}; …` story digests of the paper's Figures 4–6).
//! * [`temporal`] — bucketed activity signatures whose lag-tolerant
//!   similarity compares *story evolution* over time (paper §2.3).
//! * [`hash`] — the seeded 64-bit hash family everything above shares.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod countmin;
pub mod hash;
pub mod minhash;
pub mod temporal;
pub mod topk;

pub use countmin::CountMin;
pub use hash::{mix64, HashFamily};
pub use minhash::MinHash;
pub use temporal::TemporalSignature;
pub use topk::TopK;
