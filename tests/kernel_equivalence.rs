//! Differential property suite for the flat similarity kernels.
//!
//! The hot path (`storypivot_types::kernel`) re-implements the sparse
//! similarity measures as branch-light merges over raw entry slices,
//! with cosine fed by the cached per-vector norm. These tests pit every
//! kernel against an independently written naive reference (per-key
//! lookups over a sorted key union, full-pass norms) across random
//! vectors — including the shapes that break merge loops: empty,
//! disjoint, single-entry, and heavily-overlapping — and require
//! agreement to 1e-12. A second group proves the `merge_add` in-place
//! fast paths (append, subset, backward merge) leave the entry list and
//! the cached norm bit-identical to a from-scratch rebuild.

use std::collections::BTreeSet;

use storypivot::substrate::prop;
use storypivot::substrate::rng::{RngExt, StdRng};
use storypivot::types::kernel;
use storypivot::types::sparse::SparseVec;

// ---- naive references -------------------------------------------------
//
// Deliberately structured differently from the kernels: iterate the
// sorted union of keys and look each key up on both sides.

fn get(v: &[(u32, f32)], key: u32) -> Option<f32> {
    v.iter().find(|&&(k, _)| k == key).map(|&(_, w)| w)
}

fn key_union(a: &[(u32, f32)], b: &[(u32, f32)]) -> BTreeSet<u32> {
    a.iter().map(|&(k, _)| k).chain(b.iter().map(|&(k, _)| k)).collect()
}

fn naive_dot(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
    key_union(a, b)
        .into_iter()
        .filter_map(|k| Some(get(a, k)? as f64 * get(b, k)? as f64))
        .sum()
}

fn naive_norm(a: &[(u32, f32)]) -> f64 {
    a.iter().map(|&(_, w)| (w as f64).powi(2)).sum::<f64>().sqrt()
}

fn naive_cosine(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
    let denom = naive_norm(a) * naive_norm(b);
    if denom == 0.0 {
        0.0
    } else {
        (naive_dot(a, b) / denom).clamp(0.0, 1.0)
    }
}

fn naive_jaccard(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
    let ka: BTreeSet<u32> = a.iter().map(|&(k, _)| k).collect();
    let kb: BTreeSet<u32> = b.iter().map(|&(k, _)| k).collect();
    let inter = ka.intersection(&kb).count();
    let union = ka.union(&kb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

fn naive_weighted_jaccard(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
    let (mut num, mut den) = (0f64, 0f64);
    for k in key_union(a, b) {
        let wa = get(a, k).unwrap_or(0.0) as f64;
        let wb = get(b, k).unwrap_or(0.0) as f64;
        num += wa.min(wb);
        den += wa.max(wb);
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

// ---- generators -------------------------------------------------------

fn arb_vec(rng: &mut StdRng, max_len: usize, key_space: u32) -> SparseVec<u32> {
    let pairs = prop::vec_with(rng, 0, max_len, |r| {
        (r.random_range(0..key_space), r.random_range(0.01f32..10.0))
    });
    SparseVec::from_pairs(pairs)
}

/// The shapes the suite must cover, cycled per case: generic sparse,
/// heavily-overlapping (tiny key space), disjoint (even vs. odd keys),
/// single-entry, and empty-on-one-side.
fn arb_pair(rng: &mut StdRng, case: u32) -> (SparseVec<u32>, SparseVec<u32>) {
    match case % 5 {
        0 => (arb_vec(rng, 40, 10_000), arb_vec(rng, 40, 10_000)),
        1 => (arb_vec(rng, 40, 12), arb_vec(rng, 40, 12)),
        2 => {
            let a = prop::vec_with(rng, 1, 30, |r| {
                (2 * r.random_range(0..500u32), r.random_range(0.01f32..10.0))
            });
            let b = prop::vec_with(rng, 1, 30, |r| {
                (2 * r.random_range(0..500u32) + 1, r.random_range(0.01f32..10.0))
            });
            (SparseVec::from_pairs(a), SparseVec::from_pairs(b))
        }
        3 => (arb_vec(rng, 1, 4), arb_vec(rng, 1, 4)),
        _ => {
            let v = arb_vec(rng, 40, 100);
            if case.is_multiple_of(2) {
                (SparseVec::new(), v)
            } else {
                (v, SparseVec::new())
            }
        }
    }
}

// ---- kernel vs. reference ---------------------------------------------

#[test]
fn kernels_agree_with_naive_references() {
    let mut case = 0u32;
    prop::run(1000, |rng| {
        let (a, b) = arb_pair(rng, case);
        case += 1;
        let (sa, sb) = (a.as_slice(), b.as_slice());

        let d = kernel::dot(sa, sb);
        assert!((d - naive_dot(sa, sb)).abs() < 1e-12, "dot {sa:?} {sb:?}");

        let n = kernel::norm(sa);
        assert!((n - naive_norm(sa)).abs() < 1e-12, "norm {sa:?}");

        let c = kernel::cosine(sa, a.norm(), sb, b.norm());
        assert!((c - naive_cosine(sa, sb)).abs() < 1e-12, "cosine {sa:?} {sb:?}");

        let j = kernel::jaccard(sa, sb);
        assert!((j - naive_jaccard(sa, sb)).abs() < 1e-12, "jaccard {sa:?} {sb:?}");

        let wj = kernel::weighted_jaccard(sa, sb);
        assert!(
            (wj - naive_weighted_jaccard(sa, sb)).abs() < 1e-12,
            "weighted_jaccard {sa:?} {sb:?}"
        );
    });
}

#[test]
fn sparse_vec_methods_delegate_to_kernels() {
    let mut case = 0u32;
    prop::run(300, |rng| {
        let (a, b) = arb_pair(rng, case);
        case += 1;
        assert_eq!(a.dot(&b).to_bits(), kernel::dot(a.as_slice(), b.as_slice()).to_bits());
        assert_eq!(
            a.cosine(&b).to_bits(),
            kernel::cosine(a.as_slice(), a.norm(), b.as_slice(), b.norm()).to_bits()
        );
        assert_eq!(
            a.jaccard(&b).to_bits(),
            kernel::jaccard(a.as_slice(), b.as_slice()).to_bits()
        );
        assert_eq!(
            a.weighted_jaccard(&b).to_bits(),
            kernel::weighted_jaccard(a.as_slice(), b.as_slice()).to_bits()
        );
    });
}

#[test]
fn cosine_batch_matches_pairwise_cosine() {
    prop::run(200, |rng| {
        let probe = arb_vec(rng, 30, 50);
        let n = rng.random_range(0..8usize);
        let cands: Vec<SparseVec<u32>> = (0..n).map(|_| arb_vec(rng, 30, 50)).collect();
        let mut out = Vec::new();
        kernel::cosine_batch(
            probe.as_slice(),
            probe.norm(),
            cands.iter().map(|c| (c.as_slice(), c.norm())),
            &mut out,
        );
        assert_eq!(out.len(), cands.len());
        for (score, c) in out.iter().zip(&cands) {
            assert_eq!(score.to_bits(), probe.cosine(c).to_bits());
        }
    });
}

// ---- merge_add fast paths vs. from-scratch rebuild ---------------------

/// Rebuild `a + b` from raw pairs and demand bit-identical entries *and*
/// bit-identical cached norm, whatever fast path `merge_add` picked.
fn assert_merge_matches_rebuild(a: &SparseVec<u32>, b: &SparseVec<u32>) {
    let mut merged = a.clone();
    merged.merge_add(b);
    let mut all: Vec<(u32, f32)> = a.as_slice().to_vec();
    all.extend_from_slice(b.as_slice());
    let rebuilt = SparseVec::from_pairs(all);
    assert_eq!(merged.as_slice(), rebuilt.as_slice(), "a={a:?} b={b:?}");
    assert_eq!(
        merged.norm().to_bits(),
        rebuilt.norm().to_bits(),
        "cached norm drifted: a={a:?} b={b:?}"
    );
}

#[test]
fn merge_add_matches_from_scratch_rebuild() {
    let mut case = 0u32;
    prop::run(1000, |rng| {
        let (a, b) = arb_pair(rng, case);
        case += 1;
        assert_merge_matches_rebuild(&a, &b);
    });
}

#[test]
fn merge_add_subset_path_matches_rebuild() {
    prop::run(300, |rng| {
        let a = arb_vec(rng, 30, 60);
        if a.is_empty() {
            return;
        }
        // b's keys are a subset of a's keys.
        let keys: Vec<u32> = a.keys().collect();
        let b_pairs = prop::vec_with(rng, 1, keys.len(), |r| {
            (keys[r.random_range(0..keys.len())], r.random_range(0.01f32..10.0))
        });
        assert_merge_matches_rebuild(&a, &SparseVec::from_pairs(b_pairs));
    });
}

#[test]
fn merge_add_append_path_matches_rebuild() {
    prop::run(300, |rng| {
        let a = arb_vec(rng, 30, 100);
        // b's keys all sort after a's keys.
        let b_pairs = prop::vec_with(rng, 1, 30, |r| {
            (100 + r.random_range(0..100u32), r.random_range(0.01f32..10.0))
        });
        assert_merge_matches_rebuild(&a, &SparseVec::from_pairs(b_pairs));
    });
}

#[test]
fn merge_add_chain_keeps_norm_fresh() {
    // A long accumulation chain (the story-centroid usage pattern) must
    // keep the cached norm equal to a recomputation at every step.
    prop::run(100, |rng| {
        let mut acc: SparseVec<u32> = SparseVec::new();
        for _ in 0..12 {
            let v = arb_vec(rng, 10, 40);
            acc.merge_add(&v);
            assert_eq!(acc.norm().to_bits(), kernel::norm(acc.as_slice()).to_bits());
        }
    });
}
