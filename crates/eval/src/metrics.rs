//! Clustering quality metrics.
//!
//! Story identification and alignment are clustering problems, so their
//! quality against ground truth is measured with standard clustering
//! metrics: pairwise precision/recall/F1 (the paper's "F-Measure" panel
//! in Figure 7), B-Cubed, NMI, and the adjusted Rand index. All metrics
//! are computed over the *intersection* of items present in both the
//! predicted and the reference clustering.

use std::collections::HashMap;

/// A clustering: item → cluster id. Items and clusters are opaque
/// `u64`s; callers map their typed ids in.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clustering {
    assignment: HashMap<u64, u64>,
}

impl Clustering {
    /// Empty clustering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(item, cluster)` pairs (later pairs overwrite).
    pub fn from_pairs<I: IntoIterator<Item = (u64, u64)>>(pairs: I) -> Self {
        Clustering {
            assignment: pairs.into_iter().collect(),
        }
    }

    /// Assign one item.
    pub fn assign(&mut self, item: u64, cluster: u64) {
        self.assignment.insert(item, cluster);
    }

    /// The cluster of an item.
    pub fn cluster_of(&self, item: u64) -> Option<u64> {
        self.assignment.get(&item).copied()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether no items are assigned.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of distinct clusters.
    pub fn cluster_count(&self) -> usize {
        let set: std::collections::HashSet<u64> = self.assignment.values().copied().collect();
        set.len()
    }

    /// Iterate `(item, cluster)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.assignment.iter().map(|(&i, &c)| (i, c))
    }
}

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Scores {
    /// Precision in `[0,1]`.
    pub precision: f64,
    /// Recall in `[0,1]`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Scores {
    /// Build from precision and recall.
    pub fn from_pr(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Scores { precision, recall, f1 }
    }
}

/// Raw pairwise counts, summable across evaluation slices (used to
/// micro-average identification quality across sources).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairCounts {
    /// Pairs clustered together in both prediction and truth.
    pub true_positive: u64,
    /// Pairs clustered together in the prediction.
    pub predicted_positive: u64,
    /// Pairs clustered together in the truth.
    pub actual_positive: u64,
}

impl PairCounts {
    /// Merge counts from another slice.
    pub fn add(&mut self, other: PairCounts) {
        self.true_positive += other.true_positive;
        self.predicted_positive += other.predicted_positive;
        self.actual_positive += other.actual_positive;
    }

    /// Convert to precision/recall/F1. With no positive pairs anywhere,
    /// scores are 1.0 by convention (nothing to get wrong).
    pub fn scores(&self) -> Scores {
        if self.predicted_positive == 0 && self.actual_positive == 0 {
            return Scores {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0,
            };
        }
        let p = if self.predicted_positive > 0 {
            self.true_positive as f64 / self.predicted_positive as f64
        } else {
            // Nothing predicted together: vacuously precise.
            1.0
        };
        let r = if self.actual_positive > 0 {
            self.true_positive as f64 / self.actual_positive as f64
        } else {
            1.0
        };
        Scores::from_pr(p, r)
    }
}

fn choose2(n: u64) -> u64 {
    n * n.saturating_sub(1) / 2
}

/// Contingency statistics of two clusterings over their shared items.
struct Contingency {
    n: u64,
    cells: HashMap<(u64, u64), u64>,
    pred_sizes: HashMap<u64, u64>,
    true_sizes: HashMap<u64, u64>,
}

fn contingency(pred: &Clustering, truth: &Clustering) -> Contingency {
    let mut cells: HashMap<(u64, u64), u64> = HashMap::new();
    let mut pred_sizes: HashMap<u64, u64> = HashMap::new();
    let mut true_sizes: HashMap<u64, u64> = HashMap::new();
    let mut n = 0u64;
    for (item, p) in pred.iter() {
        let Some(t) = truth.cluster_of(item) else { continue };
        n += 1;
        *cells.entry((p, t)).or_insert(0) += 1;
        *pred_sizes.entry(p).or_insert(0) += 1;
        *true_sizes.entry(t).or_insert(0) += 1;
    }
    Contingency {
        n,
        cells,
        pred_sizes,
        true_sizes,
    }
}

/// Raw pairwise counts of `pred` against `truth` over shared items.
pub fn pairwise_counts(pred: &Clustering, truth: &Clustering) -> PairCounts {
    let c = contingency(pred, truth);
    PairCounts {
        true_positive: c.cells.values().map(|&x| choose2(x)).sum(),
        predicted_positive: c.pred_sizes.values().map(|&x| choose2(x)).sum(),
        actual_positive: c.true_sizes.values().map(|&x| choose2(x)).sum(),
    }
}

/// Pairwise precision/recall/F1 (the paper's F-measure).
pub fn pairwise(pred: &Clustering, truth: &Clustering) -> Scores {
    pairwise_counts(pred, truth).scores()
}

/// B-Cubed precision/recall/F1.
pub fn bcubed(pred: &Clustering, truth: &Clustering) -> Scores {
    let c = contingency(pred, truth);
    if c.n == 0 {
        return Scores::from_pr(1.0, 1.0);
    }
    // Per-item precision: |pred∩true| / |pred cluster|; averaging over
    // items is equivalent to summing n_ij²/a_i over cells.
    let mut p_sum = 0.0f64;
    let mut r_sum = 0.0f64;
    for (&(p, t), &nij) in &c.cells {
        let nij = nij as f64;
        p_sum += nij * nij / c.pred_sizes[&p] as f64;
        r_sum += nij * nij / c.true_sizes[&t] as f64;
    }
    Scores::from_pr(p_sum / c.n as f64, r_sum / c.n as f64)
}

/// Normalized mutual information in `[0,1]` (geometric-mean
/// normalization; 1.0 when both clusterings are the same single
/// partition by convention).
pub fn nmi(pred: &Clustering, truth: &Clustering) -> f64 {
    let c = contingency(pred, truth);
    if c.n == 0 {
        return 1.0;
    }
    let n = c.n as f64;
    let mut mi = 0.0f64;
    for (&(p, t), &nij) in &c.cells {
        let nij = nij as f64;
        let a = c.pred_sizes[&p] as f64;
        let b = c.true_sizes[&t] as f64;
        if nij > 0.0 {
            mi += (nij / n) * ((n * nij) / (a * b)).ln();
        }
    }
    let h = |sizes: &HashMap<u64, u64>| -> f64 {
        sizes
            .values()
            .map(|&s| {
                let f = s as f64 / n;
                -f * f.ln()
            })
            .sum()
    };
    let (hp, ht) = (h(&c.pred_sizes), h(&c.true_sizes));
    if hp == 0.0 && ht == 0.0 {
        return 1.0; // both trivial single-cluster partitions
    }
    if hp == 0.0 || ht == 0.0 {
        return 0.0;
    }
    (mi / (hp * ht).sqrt()).clamp(0.0, 1.0)
}

/// Purity and inverse purity.
///
/// *Purity*: every predicted cluster votes for its majority true label;
/// purity is the fraction of items covered by those majorities. High
/// purity with many tiny clusters is easy, hence *inverse purity*
/// (computed with the roles of prediction and truth swapped) as the
/// complementary measure. Returned as `(purity, inverse_purity)`.
pub fn purity(pred: &Clustering, truth: &Clustering) -> (f64, f64) {
    fn one_direction(c: &Contingency) -> f64 {
        if c.n == 0 {
            return 1.0;
        }
        // For each predicted cluster, the size of its largest cell.
        let mut best: HashMap<u64, u64> = HashMap::new();
        for (&(p, _), &nij) in &c.cells {
            let e = best.entry(p).or_insert(0);
            if nij > *e {
                *e = nij;
            }
        }
        best.values().sum::<u64>() as f64 / c.n as f64
    }
    let forward = contingency(pred, truth);
    let backward = contingency(truth, pred);
    (one_direction(&forward), one_direction(&backward))
}

/// Adjusted Rand index in `[-1,1]` (1 = identical partitions, ~0 =
/// random agreement).
pub fn adjusted_rand_index(pred: &Clustering, truth: &Clustering) -> f64 {
    let c = contingency(pred, truth);
    if c.n < 2 {
        return 1.0;
    }
    let sum_cells: f64 = c.cells.values().map(|&x| choose2(x) as f64).sum();
    let sum_a: f64 = c.pred_sizes.values().map(|&x| choose2(x) as f64).sum();
    let sum_b: f64 = c.true_sizes.values().map(|&x| choose2(x) as f64).sum();
    let total = choose2(c.n) as f64;
    let expected = sum_a * sum_b / total;
    let max = 0.5 * (sum_a + sum_b);
    if (max - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_cells - expected) / (max - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cl(pairs: &[(u64, u64)]) -> Clustering {
        Clustering::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn identical_clusterings_score_one() {
        let a = cl(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2)]);
        for s in [pairwise(&a, &a), bcubed(&a, &a)] {
            assert_eq!(s.precision, 1.0);
            assert_eq!(s.recall, 1.0);
            assert_eq!(s.f1, 1.0);
        }
        assert_eq!(nmi(&a, &a), 1.0);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relabeling_does_not_matter() {
        let truth = cl(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let pred = cl(&[(0, 77), (1, 77), (2, 5), (3, 5)]);
        assert_eq!(pairwise(&pred, &truth).f1, 1.0);
        assert_eq!(nmi(&pred, &truth), 1.0);
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_singletons_have_perfect_precision_zero_recall() {
        let truth = cl(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let pred = cl(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let s = pairwise(&pred, &truth);
        assert_eq!(s.precision, 1.0); // vacuous: no predicted pairs
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn one_big_cluster_has_perfect_recall_low_precision() {
        let truth = cl(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let pred = cl(&[(0, 9), (1, 9), (2, 9), (3, 9)]);
        let s = pairwise(&pred, &truth);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn known_pairwise_value() {
        // truth: {0,1,2} {3,4}; pred: {0,1} {2,3} {4}
        let truth = cl(&[(0, 0), (1, 0), (2, 0), (3, 1), (4, 1)]);
        let pred = cl(&[(0, 0), (1, 0), (2, 1), (3, 1), (4, 2)]);
        let s = pairwise(&pred, &truth);
        // TP = 1 ({0,1}); PP = 2; AP = 4.
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bcubed_known_value() {
        // truth: {0,1} {2}; pred: {0,1,2}
        let truth = cl(&[(0, 0), (1, 0), (2, 1)]);
        let pred = cl(&[(0, 0), (1, 0), (2, 0)]);
        let s = bcubed(&pred, &truth);
        // precision: items 0,1 → 2/3 each; item 2 → 1/3. avg = 5/9.
        assert!((s.precision - 5.0 / 9.0).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn metrics_use_intersection_of_items() {
        let truth = cl(&[(0, 0), (1, 0)]);
        let pred = cl(&[(0, 0), (1, 0), (99, 5)]); // 99 missing from truth
        assert_eq!(pairwise(&pred, &truth).f1, 1.0);
    }

    #[test]
    fn empty_intersection_is_perfect_by_convention() {
        let truth = cl(&[(0, 0)]);
        let pred = cl(&[(1, 0)]);
        assert_eq!(pairwise(&pred, &truth).f1, 1.0);
        assert_eq!(nmi(&pred, &truth), 1.0);
    }

    #[test]
    fn ari_near_zero_for_random_like_split() {
        // Orthogonal partitions of 4 items.
        let truth = cl(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let pred = cl(&[(0, 0), (1, 1), (2, 0), (3, 1)]);
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari.abs() < 0.5, "ari {ari}");
    }

    #[test]
    fn pair_counts_merge_across_slices() {
        let truth_a = cl(&[(0, 0), (1, 0)]);
        let pred_a = cl(&[(0, 0), (1, 0)]);
        let truth_b = cl(&[(2, 0), (3, 1)]);
        let pred_b = cl(&[(2, 0), (3, 0)]);
        let mut total = pairwise_counts(&pred_a, &truth_a);
        total.add(pairwise_counts(&pred_b, &truth_b));
        assert_eq!(total.true_positive, 1);
        assert_eq!(total.predicted_positive, 2);
        assert_eq!(total.actual_positive, 1);
        let s = total.scores();
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn purity_known_values() {
        // truth: {0,1} {2,3}; pred: {0,1,2} {3}
        let truth = cl(&[(0, 0), (1, 0), (2, 1), (3, 1)]);
        let pred = cl(&[(0, 9), (1, 9), (2, 9), (3, 8)]);
        let (p, ip) = purity(&pred, &truth);
        // Cluster 9's majority is label 0 (2 of 3); cluster 8 is pure.
        assert!((p - 3.0 / 4.0).abs() < 1e-12);
        // Inverse: label 0 fully inside cluster 9 (2), label 1 splits (1+1 → 1).
        assert!((ip - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn purity_is_one_on_identical_partitions() {
        let a = cl(&[(0, 0), (1, 0), (2, 1)]);
        assert_eq!(purity(&a, &a), (1.0, 1.0));
    }

    #[test]
    fn singletons_are_pure_but_not_inverse_pure() {
        let truth = cl(&[(0, 0), (1, 0), (2, 0), (3, 0)]);
        let pred = cl(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let (p, ip) = purity(&pred, &truth);
        assert_eq!(p, 1.0);
        assert!((ip - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clustering_api() {
        let mut c = Clustering::new();
        assert!(c.is_empty());
        c.assign(3, 1);
        c.assign(4, 1);
        c.assign(5, 2);
        assert_eq!(c.len(), 3);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.cluster_of(3), Some(1));
        assert_eq!(c.cluster_of(9), None);
    }
}
