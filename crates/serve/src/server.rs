//! The sharded, backpressured, crash-safe TCP server.
//!
//! Topology: one acceptor thread, a fixed pool of connection-
//! multiplexing *I/O worker* threads, and N *shard* worker threads.
//! Each shard owns a full [`DynamicPivot`] engine holding a disjoint
//! subset of sources (`source id mod N`), so identification — which is
//! per-source by construction (paper §2.1) — is embarrassingly
//! parallel across shards, and alignment runs per shard over its own
//! sources.
//!
//! # The serving runtime
//!
//! Connections are nonblocking sockets owned by I/O workers; each
//! worker drives its set through a [`substrate::net`] `poll(2)` loop
//! and a per-connection state machine: accumulate bytes into a pooled
//! read buffer ([`substrate::pool`]), peel complete frames with
//! [`frame_ready`], decode them *in place* with
//! [`Request::decode_borrowed`] (zero heap allocations for small
//! frames), dispatch, and stream responses back through queued
//! vectored writes. Requests pipeline: a connection may have up to
//! `max_pipeline` requests in flight, and responses are re-sequenced
//! (a per-request `seq` plus a reorder map) so the wire order always
//! matches the request order, exactly as the one-thread-per-connection
//! runtime behaved. An optional `idle_timeout` reaps connections that
//! complete no frame for the configured window, which also bounds
//! slow-loris readers.
//!
//! I/O workers never block: every frame becomes a [`Job`] routed to
//! its shard through a bounded queue ([`substrate::queue::Bounded`]),
//! and the shard replies by posting a completion event back to the
//! owning worker's inbox (a wake-channel nudges the poller). When an
//! ingest hits a full queue the worker replies BUSY with a retry-after
//! hint instead of buffering — memory is bounded by
//! `shards × queue_depth` jobs no matter how fast clients push. Batch
//! ingests and control frames (query/stats/shutdown) want
//! backpressure, not retries: their pushes park in a pending list (the
//! connection stops parsing, preserving per-connection order) and are
//! retried until queue space frees up.
//!
//! # Durability
//!
//! With a `wal_dir` configured, every state-changing job is journaled
//! to the shard's write-ahead log ([`substrate::wal`], payloads are
//! [`core::oplog::ReplayOp`]) *before* it touches the engine. On
//! startup each shard loads its newest valid generation checkpoint
//! (`shard{i}.g{N}.spvc`, written atomically via temp file + rename)
//! and replays the WAL tail on top; replay is idempotent, so the crash
//! window between "checkpoint written" and "WAL truncated" is safe.
//! Once the WAL grows past `checkpoint_every_bytes` the shard writes a
//! fresh generation and truncates the log, bounding recovery time.
//!
//! # Supervision
//!
//! A panic inside an engine apply is caught in the worker
//! (`catch_unwind`); the shard's engine is rebuilt from checkpoint +
//! WAL and the worker keeps draining its queue — other shards never
//! notice. An operation that panics the shard *again* during the
//! rebuild replay is quarantined: appended to the shard's dead-letter
//! file (`shard{i}.dead`), skipped by all future replays, and rejected
//! if resubmitted. STATS reports `restarts` and `quarantined` per
//! shard.
//!
//! SHUTDOWN drains: a dedicated orchestrator thread pushes a `Drain`
//! job behind all accepted work on every shard, each shard flushes its
//! engine (final alignment + refinement) and writes a checkpoint
//! generation, the queues are closed, and only then is the ack sent
//! (to the initiator and to every connection that sent a concurrent
//! SHUTDOWN).
//!
//! # Observability
//!
//! Each shard owns a private [`substrate::metrics::Registry`]; its
//! engine, WAL, and the per-shard serving gauges (queue depth,
//! restarts, quarantined ops, BUSY rejections — labeled `shard="N"`)
//! all record into it. The server additionally keeps one registry for
//! the I/O layer: open connections, pipeline depth, buffer-pool
//! checkouts and byte high-water, and transient accept failures. The
//! `METRICS` opcode snapshots every shard's registry plus the server
//! registry, merges the snapshots (counters add, histograms merge
//! bucket-wise), and renders one Prometheus-style text exposition.
//! Each shard also keeps a fixed-capacity [`substrate::trace::TraceRing`]
//! of recent engine events; when an apply panics, the ring is dumped to
//! stderr (and `shard{i}.trace` next to the durable state) *before* the
//! engine is rebuilt, preserving the lead-up to the crash.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use storypivot_core::checkpoint;
use storypivot_core::config::PivotConfig;
use storypivot_core::metrics::EngineMetrics;
use storypivot_core::oplog::{replay_op, ReplayOp};
use storypivot_core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot_core::refine::story_source;
use storypivot_substrate::fault::FaultHook;
use storypivot_substrate::metrics::{Counter, Gauge, HistogramMetric, Registry, Snapshot};
use storypivot_substrate::net;
use storypivot_substrate::pool::{BufferPool, PooledBuf};
use storypivot_substrate::queue::{Bounded, PushError};
use storypivot_substrate::timing::Histogram;
use storypivot_substrate::trace::TraceRing;
use storypivot_substrate::wal::{self, SyncPolicy, Wal, WalMetrics};
use storypivot_types::{DocId, Error, Result, Snippet, Source, SourceId, StoryId};

use crate::proto::{frame_into, frame_ready, Request, RequestRef, Response, StorySummary};
use crate::replica;
use crate::snapshot::{ShardSnapshot, SnapshotSlot};
use crate::stats::{ServeStats, ShardStats};

/// The maximum number of sources the story-id partitioning scheme
/// supports (see `core::identify::STORY_ID_STRIDE`).
const MAX_SOURCES: u32 = 256;

/// Upper bound on WAL bytes shipped per REPL_FRAME. Whole records
/// only — the read is trimmed to the last record boundary — and well
/// under `MAX_FRAME_LEN` with response framing around it.
const REPL_BATCH_BYTES: usize = 1 << 20;

/// Ingesting a snippet with this exact headline makes the owning shard
/// worker panic — **in debug builds only** — providing a failure
/// injection hook for exercising the supervision path (engine restart,
/// two-strike dead-letter quarantine) from integration tests. Release
/// builds treat it as an ordinary headline.
pub const POISON_HEADLINE: &str = "__pivotd_poison_panic__";

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard worker threads (engines). Sources are routed by
    /// `source id mod shards`.
    pub shards: usize,
    /// Bounded depth of each shard's job queue; a full queue turns
    /// single-snippet ingests into BUSY replies.
    pub queue_depth: usize,
    /// Engine configuration applied to every shard.
    pub pivot: PivotConfig,
    /// Per-shard incremental re-alignment period (snippets); see
    /// [`PipelinePolicy::align_every`].
    pub align_every: usize,
    /// Where checkpoint generations are written
    /// (`shard{i}.g{N}.spvc`, atomic temp-file + rename); `None`
    /// disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Where per-shard write-ahead logs live (`shard{i}.wal`); `None`
    /// disables journaling (and with it crash recovery of un-checkpointed
    /// work).
    pub wal_dir: Option<PathBuf>,
    /// When each WAL append is forced to disk.
    pub fsync: SyncPolicy,
    /// Write a checkpoint generation and truncate the WAL once it
    /// exceeds this many bytes (0 disables size-triggered checkpoints;
    /// requires both `wal_dir` and `checkpoint_dir`).
    pub checkpoint_every_bytes: u64,
    /// The retry-after hint carried by BUSY replies, in milliseconds.
    pub retry_after_ms: u32,
    /// Artificial per-job delay in each shard worker. Zero in
    /// production; tests use it to hold a queue full deterministically.
    pub worker_delay: Duration,
    /// Number of connection-multiplexing I/O worker threads. Every
    /// connection is pinned to one worker for its lifetime.
    pub io_workers: usize,
    /// Maximum requests a single connection may have in flight
    /// (dispatched, response not yet queued for write) before the
    /// worker stops reading from it.
    pub max_pipeline: usize,
    /// Reap a connection that completes no frame for this long
    /// (also bounds slow-loris readers); `None` never reaps.
    pub idle_timeout: Option<Duration>,
    /// Run as a read-only follower replica of the leader at this
    /// address: bootstrap each shard from the leader's newest
    /// checkpoint, tail its WAL over REPL_SUBSCRIBE, serve reads from
    /// snapshots, and answer every write with a NOT_LEADER redirect.
    /// Requires `wal_dir` (the follower keeps a byte-identical WAL
    /// copy as its durable replication cursor).
    pub leader: Option<String>,
    /// Publish a fresh read snapshot after this many applied
    /// mutations. The default of 1 republishes after every op, which
    /// preserves exact read-your-writes; raising it trades staleness
    /// (bounded by `snapshot_max_age_ms`) for less copying on hot
    /// write paths.
    pub snapshot_every_ops: u64,
    /// Also republish whenever the current snapshot is older than this
    /// many milliseconds *and* ops have been applied since it was
    /// built (checked as the worker processes jobs).
    pub snapshot_max_age_ms: u64,
    /// Per-request deadline budget for single-snippet ingests, in
    /// milliseconds. A write that has already waited in its shard queue
    /// longer than this is shed (SHED reply, counted in
    /// `storypivot_shed_total`) instead of applied late. Zero disables
    /// shedding.
    pub deadline_ms: u64,
    /// Deterministic fault-injection plan consulted by WAL appends,
    /// checkpoint writes, and replica-tail connections. `None` (and any
    /// release build) injects nothing; `pivotd` fills it from the
    /// `STORYPIVOT_FAULTS` environment variable.
    pub faults: Option<storypivot_substrate::fault::FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 1024,
            pivot: PivotConfig::default(),
            align_every: 256,
            checkpoint_dir: None,
            wal_dir: None,
            fsync: SyncPolicy::Always,
            checkpoint_every_bytes: 8 * 1024 * 1024,
            retry_after_ms: 10,
            worker_delay: Duration::ZERO,
            io_workers: 2,
            max_pipeline: 64,
            idle_timeout: None,
            leader: None,
            snapshot_every_ops: 1,
            snapshot_max_age_ms: 100,
            deadline_ms: 0,
            faults: None,
        }
    }
}

/// The reply half of a shard job: a one-shot callback the shard worker
/// invokes with the response. Replies built from a connection carry a
/// drop-guard, so a job that dies with its worker still produces an
/// error response instead of a hung client.
pub(crate) type Reply = Box<dyn FnOnce(Response) + Send>;

/// Reply callback for metrics snapshots (merged by the I/O layer).
pub(crate) type SnapReply = Box<dyn FnOnce(Snapshot) + Send>;

/// A replica shard's durable replication position: the checkpoint
/// generation it bootstrapped from plus the byte length of its local
/// WAL copy. Because the follower appends the leader's record payloads
/// through the same deterministic framing, its WAL is byte-identical
/// to the leader's — so "my WAL length" *is* "the leader offset I have
/// everything before", and a restart recovers the cursor for free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ReplCursor {
    /// Checkpoint generation the WAL tail applies on top of.
    pub(crate) generation: u64,
    /// Local WAL length == leader WAL offset fully replicated.
    pub(crate) wal_len: u64,
    /// Ops applied since the generation (drives the lag-in-ops gauge).
    pub(crate) ops: u64,
}

/// Acknowledgement channel for replication jobs: the puller thread
/// blocks on the paired receiver until the shard worker reports the
/// cursor it reached (or why it couldn't).
pub(crate) type ReplAck = SyncSender<Result<ReplCursor>>;

/// Work routed to one shard.
pub(crate) enum Job {
    AddSource(Source, Reply),
    /// A single-snippet ingest; the `Instant` is when the job was
    /// enqueued, so the shard worker can shed it once its deadline
    /// budget (`ServerConfig::deadline_ms`) has already elapsed.
    Ingest(Snippet, Reply, Instant),
    IngestMany(Vec<Snippet>, Reply),
    RemoveDoc(DocId, Reply),
    Stats(Reply),
    /// Snapshot the shard's metrics registry (merged by the I/O layer).
    Metrics(SnapReply),
    /// Flush + checkpoint; the shard replies once its state is durable.
    Drain(Reply),
    /// Leader side of REPL_SUBSCRIBE: ship WAL records from
    /// `wal_offset` (or a checkpoint if the follower's generation is
    /// stale).
    Repl {
        /// Generation the follower believes it is on.
        generation: u64,
        /// Leader-WAL byte offset the follower has replicated through.
        wal_offset: u64,
        /// Where the REPL_FRAME / REPL_CHECKPOINT response goes.
        reply: Reply,
    },
    /// Follower side: install the leader's checkpoint bytes verbatim
    /// and reset the local WAL.
    ReplBootstrap {
        /// The leader's checkpoint generation.
        generation: u64,
        /// Raw checkpoint bytes (empty = start from a fresh engine).
        checkpoint: Vec<u8>,
        /// Cursor acknowledgement back to the puller.
        ack: ReplAck,
    },
    /// Follower side: append + apply a batch of leader WAL records
    /// (an empty batch is a cursor probe).
    ReplApply {
        /// Concatenated whole WAL records, leader framing intact.
        records: Vec<u8>,
        /// Cursor acknowledgement back to the puller.
        ack: ReplAck,
    },
}

/// Lock a mutex, riding through poisoning (no invariant here spans the
/// critical section).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A completion or new-connection event posted to an I/O worker.
enum IoEvent {
    /// The acceptor handed this worker a fresh connection.
    NewConn(TcpStream),
    /// A response for request `seq` on connection `conn` is ready;
    /// `close` ends the connection once the response is flushed.
    Deliver {
        conn: u64,
        seq: u64,
        resp: Response,
        close: bool,
    },
}

/// An I/O worker's mailbox. `send` never blocks (lock, push, wake), so
/// shard workers can deliver completions without ever waiting on the
/// I/O layer — there is no lock cycle between the two.
struct Inbox {
    events: Mutex<Vec<IoEvent>>,
    waker: net::Waker,
    /// Connections currently assigned to this worker (acceptor
    /// load-balances on it).
    load: AtomicI64,
}

impl Inbox {
    fn send(&self, ev: IoEvent) {
        lock(&self.events).push(ev);
        self.waker.wake();
    }

    fn take_into(&self, into: &mut Vec<IoEvent>) {
        std::mem::swap(&mut *lock(&self.events), into);
    }

    fn is_empty(&self) -> bool {
        lock(&self.events).is_empty()
    }
}

/// The address of one in-flight request: which worker, which
/// connection, which pipeline slot.
#[derive(Clone)]
struct Dest {
    inbox: Arc<Inbox>,
    conn: u64,
    seq: u64,
}

impl Dest {
    fn deliver(&self, resp: Response, close: bool) {
        self.inbox.send(IoEvent::Deliver {
            conn: self.conn,
            seq: self.seq,
            resp,
            close,
        });
    }
}

fn unavailable() -> Response {
    Response::Error {
        code: 7,
        message: "shard worker unavailable".into(),
    }
}

/// Wrap a [`Dest`] as a [`Reply`]. If the shard drops the job without
/// invoking it (worker died, queue destroyed), the guard delivers an
/// error so the client never hangs — the callback equivalent of the
/// old `await_reply` fallback.
fn direct_reply(dest: Dest) -> Reply {
    let mut guard = DestGuard(Some(dest));
    Box::new(move |resp| {
        if let Some(d) = guard.0.take() {
            d.deliver(resp, false);
        }
    })
}

struct DestGuard(Option<Dest>);

impl Drop for DestGuard {
    fn drop(&mut self) {
        if let Some(d) = self.0.take() {
            d.deliver(unavailable(), false);
        }
    }
}

/// A fan-out/fan-in completion: N shard parts merge into one response
/// once the last part lands. Parts complete in any order; the merge
/// sees them indexed by shard position. `fail` short-circuits once
/// (first failure wins, later parts are ignored).
struct FanIn<T> {
    state: Mutex<FanState<T>>,
    dest: Dest,
}

type MergeFn<T> = Box<dyn FnOnce(Vec<T>) -> Response + Send>;

struct FanState<T> {
    parts: Vec<Option<T>>,
    remaining: usize,
    merge: Option<MergeFn<T>>,
}

impl<T> FanIn<T> {
    fn new(dest: Dest, n: usize, merge: MergeFn<T>) -> Arc<FanIn<T>> {
        Arc::new(FanIn {
            state: Mutex::new(FanState {
                parts: (0..n).map(|_| None).collect(),
                remaining: n,
                merge: Some(merge),
            }),
            dest,
        })
    }

    fn part(&self, idx: usize, value: T) {
        let done = {
            let mut st = lock(&self.state);
            if st.merge.is_none() || st.parts[idx].is_some() {
                None
            } else {
                st.parts[idx] = Some(value);
                st.remaining -= 1;
                if st.remaining == 0 {
                    let merge = st.merge.take().expect("checked above");
                    let parts = st.parts.iter_mut().map(|p| p.take().expect("all landed")).collect();
                    Some((merge, parts))
                } else {
                    None
                }
            }
        };
        if let Some((merge, parts)) = done {
            self.dest.deliver(merge(parts), false);
        }
    }

    fn fail(&self, resp: Response) {
        let failed = lock(&self.state).merge.take().is_some();
        if failed {
            self.dest.deliver(resp, false);
        }
    }
}

/// Wrap one fan-in slot as a reply callback; the drop-guard fails the
/// whole fan if the shard drops the job uninvoked.
fn part_reply<T: Send + 'static>(fan: Arc<FanIn<T>>, idx: usize) -> Box<dyn FnOnce(T) + Send> {
    let mut guard = FanGuard { fan: Some(fan), idx };
    Box::new(move |value| {
        if let Some(f) = guard.fan.take() {
            f.part(guard.idx, value);
        }
    })
}

struct FanGuard<T> {
    fan: Option<Arc<FanIn<T>>>,
    #[allow(dead_code)]
    idx: usize,
}

impl<T> Drop for FanGuard<T> {
    fn drop(&mut self) {
        if let Some(f) = self.fan.take() {
            f.fail(unavailable());
        }
    }
}

/// Invoke a job's reply with `resp` (defusing its drop-guard); a
/// metrics job carries a snapshot-typed reply and is simply dropped,
/// which fails its fan through the guard. Replication acks get a
/// typed error so the puller backs off instead of hanging.
fn fail_job(job: Job, resp: Response) {
    match job {
        Job::AddSource(_, r)
        | Job::Ingest(_, r, _)
        | Job::IngestMany(_, r)
        | Job::RemoveDoc(_, r)
        | Job::Stats(r)
        | Job::Drain(r)
        | Job::Repl { reply: r, .. } => r(resp),
        Job::Metrics(_) => {}
        Job::ReplBootstrap { ack, .. } | Job::ReplApply { ack, .. } => {
            let _ = ack.send(Err(Error::Io(
                "shard queue rejected the replication job".into(),
            )));
        }
    }
}

fn fail_job_closed(job: Job) {
    fail_job(
        job,
        Response::Error {
            code: 7,
            message: "server is shutting down".into(),
        },
    );
}

/// Server-wide I/O-layer metric handles (one registry, unlabeled —
/// they describe the whole serving runtime, not one shard).
struct IoMetrics {
    connections_open: Gauge,
    pipeline_depth: Gauge,
    pool_buffers_outstanding: Gauge,
    pool_bytes_highwater: Gauge,
    accept_errors: Counter,
    degraded_reads: Counter,
}

impl IoMetrics {
    fn register(registry: &Registry) -> IoMetrics {
        IoMetrics {
            connections_open: registry.gauge(
                "storypivot_connections_open",
                "Open client connections across all I/O workers.",
            ),
            pipeline_depth: registry.gauge(
                "storypivot_pipeline_depth",
                "Requests dispatched whose responses are not yet queued for write.",
            ),
            pool_buffers_outstanding: registry.gauge(
                "storypivot_pool_buffers_outstanding",
                "Frame buffers currently checked out of the serving buffer pool.",
            ),
            pool_bytes_highwater: registry.gauge(
                "storypivot_pool_bytes_highwater",
                "High-water mark of bytes charged to checked-out frame buffers.",
            ),
            accept_errors: registry.counter(
                "storypivot_accept_errors_total",
                "Transient accept(2) failures (e.g. EMFILE) that triggered backoff.",
            ),
            degraded_reads: registry.counter(
                "storypivot_degraded_reads_total",
                "Snapshot reads answered while the target shard's write queue was \
                 saturated (degraded-read mode).",
            ),
        }
    }
}

/// State shared between the acceptor, I/O workers, shard workers,
/// replica pullers, and [`ServerHandle`].
pub(crate) struct Shared {
    queues: Vec<Bounded<Job>>,
    busy_counters: Vec<Arc<AtomicU64>>,
    /// One published read snapshot per shard; I/O workers answer
    /// QUERY_STORIES/GET_STORY from these without touching the queues.
    snapshots: Vec<SnapshotSlot>,
    /// Per-shard query counters, bumped by I/O workers on the
    /// snapshot-read path and folded into STATS by the shard.
    query_counters: Vec<Arc<AtomicU64>>,
    /// `Some(addr)` when this server is a read-only follower replica:
    /// writes are answered with a NOT_LEADER redirect to `addr`.
    leader: Option<String>,
    next_source: AtomicU32,
    shutting_down: AtomicBool,
    done: AtomicBool,
    retry_after_ms: u32,
    /// Per-shard EWMA of single-snippet ingest service time in
    /// nanoseconds, maintained by the shard workers. The BUSY path
    /// multiplies it by the queue depth to turn the flat retry-after
    /// hint into one proportional to the actual backlog drain time.
    service_ewma_ns: Vec<Arc<AtomicU64>>,
    inboxes: Vec<Arc<Inbox>>,
    /// Frame buffers for reads and encoded responses.
    pool: BufferPool,
    /// The I/O layer's own registry, merged into METRICS expositions.
    registry: Registry,
    io_metrics: IoMetrics,
    connections: AtomicI64,
    /// Total requests dispatched whose responses have not yet been
    /// queued for write (the pipeline-depth gauge's source of truth).
    inflight: AtomicI64,
    conn_ids: AtomicU64,
    /// Connections whose SHUTDOWN arrived while another connection's
    /// shutdown was already draining; each gets an ack when it's done.
    shutdown_waiters: Mutex<Vec<Dest>>,
}

impl Shared {
    fn shard_of_source(&self, source: SourceId) -> usize {
        source.raw() as usize % self.queues.len()
    }

    /// Whether a SHUTDOWN has completed (replica pullers poll this to
    /// know when to stop tailing the leader).
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::SeqCst)
    }

    /// Queue-depth-proportional retry hint for a shard: the estimated
    /// drain time of the jobs already queued (depth × EWMA of observed
    /// per-snippet service time). Floored at the configured flat
    /// `retry_after_ms` — which is also the exact hint before the first
    /// ingest has seeded the EWMA — and capped so a hostile queue depth
    /// can never park clients for minutes.
    fn busy_hint(&self, shard: usize) -> u32 {
        retry_hint(
            self.queues[shard].len(),
            self.service_ewma_ns[shard].load(Ordering::Relaxed),
            self.retry_after_ms,
        )
    }

    /// Degraded-read accounting: a snapshot read served while the
    /// target shard's write queue is saturated would have stalled (or
    /// been rejected) if reads went through the queue. Counting them
    /// makes the degraded mode observable at METRICS.
    fn note_degraded_read(&self, shard: usize) {
        let q = &self.queues[shard];
        if q.len() >= q.capacity() {
            self.io_metrics.degraded_reads.inc();
        }
    }

    /// Refresh the I/O gauges from their atomic sources.
    fn sync_io_gauges(&self) {
        let m = &self.io_metrics;
        m.connections_open.set(self.connections.load(Ordering::Relaxed));
        m.pipeline_depth.set(self.inflight.load(Ordering::Relaxed));
        let ps = self.pool.stats();
        m.pool_buffers_outstanding.set(ps.outstanding as i64);
        m.pool_bytes_highwater.set(ps.bytes_highwater as i64);
    }
}

/// A running server: its bound address plus the thread handles needed
/// to wait for a client-driven SHUTDOWN.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    io_workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a SHUTDOWN has completed (queues closed, checkpoints
    /// written, acceptor stopping).
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (a client must send SHUTDOWN),
    /// then join every shard worker, the acceptor, and the I/O workers.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.io_workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Bind and start serving. `addr` may use port 0 for an ephemeral port;
/// the bound address is available via [`ServerHandle::addr`].
///
/// Before any client is accepted, every shard recovers: newest valid
/// checkpoint generation, then WAL tail replay. Source-id allocation
/// resumes past the highest recovered source.
pub fn serve<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> Result<ServerHandle> {
    if cfg.shards == 0 {
        return Err(Error::InvalidConfig("serve: shards must be >= 1".into()));
    }
    if cfg.queue_depth == 0 {
        return Err(Error::InvalidConfig("serve: queue_depth must be >= 1".into()));
    }
    if cfg.io_workers == 0 {
        return Err(Error::InvalidConfig("serve: io_workers must be >= 1".into()));
    }
    if cfg.max_pipeline == 0 {
        return Err(Error::InvalidConfig("serve: max_pipeline must be >= 1".into()));
    }
    if cfg.snapshot_every_ops == 0 {
        return Err(Error::InvalidConfig(
            "serve: snapshot_every_ops must be >= 1".into(),
        ));
    }
    if cfg.leader.is_some() && cfg.wal_dir.is_none() {
        return Err(Error::InvalidConfig(
            "serve: replica mode requires --wal-dir (the follower's WAL copy \
             is its durable replication cursor)"
                .into(),
        ));
    }
    cfg.pivot.validate()?;
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let queues: Vec<Bounded<Job>> = (0..cfg.shards).map(|_| Bounded::new(cfg.queue_depth)).collect();
    let busy_counters: Vec<Arc<AtomicU64>> =
        (0..cfg.shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let snapshots: Vec<SnapshotSlot> = (0..cfg.shards).map(|_| SnapshotSlot::new()).collect();
    let query_counters: Vec<Arc<AtomicU64>> =
        (0..cfg.shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let service_ewma_ns: Vec<Arc<AtomicU64>> =
        (0..cfg.shards).map(|_| Arc::new(AtomicU64::new(0))).collect();

    // Recover every shard before serving: clients must never observe a
    // partially recovered partition. Each worker publishes its first
    // snapshot at the end of recovery, so the read path is live (and
    // consistent) before the listener accepts anyone.
    let mut shard_workers = Vec::with_capacity(cfg.shards);
    for (idx, queue) in queues.iter().enumerate() {
        shard_workers.push(ShardWorker::recover(
            idx,
            &cfg,
            Arc::clone(&busy_counters[idx]),
            queue.clone(),
            Arc::clone(&query_counters[idx]),
            snapshots[idx].clone(),
            Arc::clone(&service_ewma_ns[idx]),
        )?);
    }
    // Resume source-id allocation past everything the checkpoints and
    // WALs brought back.
    let next_source = shard_workers
        .iter()
        .flat_map(|w| w.engine.pivot().sources().into_iter().map(|s| s.id.raw()))
        .max()
        .map_or(0, |m| m + 1);

    let mut inboxes = Vec::with_capacity(cfg.io_workers);
    let mut wake_rxs = Vec::with_capacity(cfg.io_workers);
    for _ in 0..cfg.io_workers {
        let (waker, rx) =
            net::wake_pair().map_err(|e| Error::Io(format!("serve: wake channel: {e}")))?;
        inboxes.push(Arc::new(Inbox {
            events: Mutex::new(Vec::new()),
            waker,
            load: AtomicI64::new(0),
        }));
        wake_rxs.push(rx);
    }

    let registry = Registry::new();
    let io_metrics = IoMetrics::register(&registry);
    let shared = Arc::new(Shared {
        queues: queues.clone(),
        busy_counters,
        snapshots,
        query_counters,
        leader: cfg.leader.clone(),
        next_source: AtomicU32::new(next_source),
        shutting_down: AtomicBool::new(false),
        done: AtomicBool::new(false),
        retry_after_ms: cfg.retry_after_ms,
        service_ewma_ns,
        inboxes,
        pool: BufferPool::new(8 * 1024, 1024),
        registry,
        io_metrics,
        connections: AtomicI64::new(0),
        inflight: AtomicI64::new(0),
        conn_ids: AtomicU64::new(0),
        shutdown_waiters: Mutex::new(Vec::new()),
    });

    let mut workers = Vec::with_capacity(cfg.shards);
    for shard in shard_workers {
        let idx = shard.idx;
        workers.push(
            std::thread::Builder::new()
                .name(format!("pivot-shard-{idx}"))
                .spawn(move || shard.run())
                .map_err(|e| Error::Io(format!("spawn shard worker: {e}")))?,
        );
    }

    let mut io_workers = Vec::with_capacity(cfg.io_workers);
    for (i, wake_rx) in wake_rxs.into_iter().enumerate() {
        let worker = IoWorker {
            shared: Arc::clone(&shared),
            inbox: Arc::clone(&shared.inboxes[i]),
            wake_rx,
            poller: net::Poller::new(),
            conns: HashMap::new(),
            pending: Vec::new(),
            events_buf: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
            max_pipeline: cfg.max_pipeline,
            idle_timeout: cfg.idle_timeout,
            last_reap: Instant::now(),
            done_seen: None,
        };
        io_workers.push(
            std::thread::Builder::new()
                .name(format!("pivot-io-{i}"))
                .spawn(move || worker.run())
                .map_err(|e| Error::Io(format!("spawn io worker: {e}")))?,
        );
    }

    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("pivot-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(|e| Error::Io(format!("spawn acceptor: {e}")))?;

    // Follower replica: one puller thread per shard tails the leader's
    // WAL and feeds ReplBootstrap/ReplApply jobs to the local worker.
    if let Some(leader) = &cfg.leader {
        for (i, queue) in queues.iter().enumerate() {
            let sid = i.to_string();
            let labels: &[(&str, &str)] = &[("shard", &sid)];
            let ctx = replica::PullerCtx {
                shard: i,
                leader: leader.clone(),
                queue: queue.clone(),
                shared: Arc::clone(&shared),
                lag_ops: shared.registry.gauge_with(
                    "storypivot_replica_lag_ops",
                    "Ops the leader has applied that this replica shard has not.",
                    labels,
                ),
                lag_bytes: shared.registry.gauge_with(
                    "storypivot_replica_lag_bytes",
                    "Leader WAL bytes not yet replicated to this shard.",
                    labels,
                ),
                reconnects: shared.registry.gauge_with(
                    "storypivot_replica_reconnects",
                    "Reconnect attempts to the leader by this shard's puller \
                     (the initial connection is not counted).",
                    labels,
                ),
                drop_fault: cfg
                    .faults
                    .as_ref()
                    .map(|p| p.hook("repl_drop", i as u64))
                    .unwrap_or_else(storypivot_substrate::fault::FaultHook::inert),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pivot-repl-{i}"))
                    .spawn(move || replica::run_puller(ctx))
                    .map_err(|e| Error::Io(format!("spawn replica puller: {e}")))?,
            );
        }
    }

    Ok(ServerHandle {
        addr: bound,
        shared,
        acceptor: Some(acceptor),
        workers,
        io_workers,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut backoff = Duration::from_millis(1);
    // Small deterministic LCG for backoff jitter: persistent accept
    // errors (EMFILE across many servers on one host) must not march
    // every acceptor in lockstep.
    let mut jitter_state: u64 = 0x9e37_79b9_7f4a_7c15;
    loop {
        if shared.done.load(Ordering::SeqCst) {
            // Grace sweep: the kernel may have completed handshakes (or
            // have SYNs in flight) that dropping the listener would RST
            // mid-request. Serve them for a short window — post-done
            // dispatch acks SHUTDOWN immediately and rejects mutations
            // with a typed shutting-down error — so a client that
            // connected concurrently with shutdown gets a well-formed
            // reply instead of a connection reset.
            let grace = Instant::now() + Duration::from_millis(50);
            while Instant::now() < grace {
                match listener.accept() {
                    Ok((stream, _)) => hand_off(&shared, stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = Duration::from_millis(1);
                hand_off(&shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, …):
                // back off exponentially with jitter instead of
                // hot-spinning the accept loop.
                shared.io_metrics.accept_errors.inc();
                jitter_state = jitter_state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let jitter = (jitter_state >> 56) as u32; // 0..=255
                std::thread::sleep(backoff + backoff * jitter / 512); // +0..50%
                backoff = (backoff * 2).min(Duration::from_millis(100));
            }
        }
    }
}

/// Assign a fresh connection to the least-loaded I/O worker.
fn hand_off(shared: &Arc<Shared>, stream: TcpStream) {
    let inbox = shared
        .inboxes
        .iter()
        .min_by_key(|ib| ib.load.load(Ordering::Relaxed))
        .expect("io_workers >= 1");
    inbox.load.fetch_add(1, Ordering::Relaxed);
    inbox.send(IoEvent::NewConn(stream));
}

/// Drive a SHUTDOWN to completion on a dedicated thread (it blocks on
/// full queues and on shard acks, which an I/O worker never may):
/// push a `Drain` behind all accepted work on every shard, await the
/// acks, close the queues, mark done, then ack the initiator and every
/// parked waiter.
fn run_shutdown(shared: Arc<Shared>, initiator: Dest) {
    let mut pending = Vec::with_capacity(shared.queues.len());
    for queue in &shared.queues {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Response>(1);
        let reply: Reply = Box::new(move |resp| {
            let _ = tx.send(resp);
        });
        // The Drain sits behind all previously accepted work: by the
        // time a shard replies, its queue prefix has been fully applied.
        if queue.push(Job::Drain(reply)).is_ok() {
            pending.push(rx);
        }
    }
    let mut failure = None;
    for rx in pending {
        match rx.recv() {
            Ok(Response::ShutdownAck) => {}
            Ok(other) => failure = Some(other),
            Err(_) => failure = Some(unavailable()),
        }
    }
    for queue in &shared.queues {
        queue.close();
    }
    shared.done.store(true, Ordering::SeqCst);
    initiator.deliver(failure.unwrap_or(Response::ShutdownAck), true);
    let waiters = std::mem::take(&mut *lock(&shared.shutdown_waiters));
    for w in waiters {
        w.deliver(Response::ShutdownAck, true);
    }
    // Nudge every worker so it notices `done` promptly.
    for inbox in &shared.inboxes {
        inbox.waker.wake();
    }
}

// ---- the I/O worker --------------------------------------------------

/// Poller token reserved for the worker's wake channel.
const WAKE_TOKEN: usize = usize::MAX;

#[cfg(unix)]
fn raw_fd(s: &TcpStream) -> i32 {
    use std::os::unix::io::AsRawFd;
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd(_s: &TcpStream) -> i32 {
    -1
}

/// An encoded response waiting for its pipeline turn, plus whether the
/// connection closes once it is flushed.
type ReadyFrame = (PooledBuf, bool);

/// One multiplexed connection's state machine.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Accumulated unparsed bytes; `None` between frames, so idle
    /// connections hold no pool buffer.
    rd: Option<PooledBuf>,
    /// Encoded responses queued for the socket, in wire order.
    outbox: VecDeque<PooledBuf>,
    /// Bytes of `outbox.front()` already written.
    front_written: usize,
    /// Out-of-order completions parked until their sequence turn.
    ready: BTreeMap<u64, ReadyFrame>,
    /// Next sequence number to assign to a parsed request.
    next_seq: u64,
    /// Next sequence number to move into the outbox.
    next_write: u64,
    /// Parsing paused: a control push is waiting for queue space
    /// (preserves per-connection request order under backpressure).
    stalled: bool,
    /// A close-flagged response entered the outbox (or the stream
    /// desynchronised); flush what's queued, then drop the connection.
    closing: bool,
    /// The peer half-closed its write side; parse what's buffered,
    /// flush the responses, then drop the connection.
    eof: bool,
    /// Last time a complete frame was parsed (idle/slow-loris clock —
    /// partial reads do not count as progress).
    last_progress: Instant,
}

impl Conn {
    fn inflight(&self) -> u64 {
        self.next_seq - self.next_write
    }
}

struct PendingPush {
    conn: u64,
    pushes: VecDeque<(usize, Job)>,
}

/// A connection-multiplexing worker: one `poll(2)` loop over its
/// assigned sockets plus its inbox wake channel.
struct IoWorker {
    shared: Arc<Shared>,
    inbox: Arc<Inbox>,
    wake_rx: net::WakeReceiver,
    poller: net::Poller,
    conns: HashMap<u64, Conn>,
    pending: Vec<PendingPush>,
    events_buf: Vec<IoEvent>,
    scratch: Vec<u8>,
    max_pipeline: usize,
    idle_timeout: Option<Duration>,
    last_reap: Instant,
    done_seen: Option<Instant>,
}

impl IoWorker {
    fn run(mut self) {
        loop {
            if self.done_seen.is_none() && self.shared.done.load(Ordering::SeqCst) {
                self.done_seen = Some(Instant::now());
            }
            if let Some(t0) = self.done_seen {
                // Post-shutdown lame duck: keep answering (dispatch now
                // yields typed shutting-down errors) long enough for the
                // acceptor's grace sweep and in-flight deliveries, then
                // exit regardless.
                let now = Instant::now();
                let idle =
                    self.conns.is_empty() && self.pending.is_empty() && self.inbox.is_empty();
                let deadline = t0 + Duration::from_millis(500);
                let idle_ok = t0 + Duration::from_millis(120);
                if now >= deadline || (idle && now >= idle_ok) {
                    break;
                }
            }

            let mut timeout = Duration::from_millis(200);
            if let Some(idle) = self.idle_timeout {
                timeout = timeout.min(std::cmp::max(idle / 4, Duration::from_millis(10)));
            }
            if !self.pending.is_empty() {
                timeout = Duration::from_millis(1);
            }
            if self.done_seen.is_some() {
                timeout = timeout.min(Duration::from_millis(20));
            }

            let max_pipeline = self.max_pipeline as u64;
            self.poller.clear();
            self.poller.register(self.wake_rx.fd(), WAKE_TOKEN, net::READABLE);
            for (&id, conn) in &self.conns {
                let mut interest = 0u8;
                if !conn.closing && !conn.eof && !conn.stalled && conn.inflight() < max_pipeline {
                    interest |= net::READABLE;
                }
                if !conn.outbox.is_empty() {
                    interest |= net::WRITABLE;
                }
                if interest != 0 {
                    self.poller.register(conn.fd, id as usize, interest);
                }
            }
            if self.poller.poll(Some(timeout)).is_err() {
                // poll(2) itself failing is unrecoverable spin fuel;
                // sleep the tick instead of burning the core.
                std::thread::sleep(timeout);
            }

            let events: Vec<net::Event> = self.poller.events().collect();
            for ev in events {
                if ev.token == WAKE_TOKEN {
                    self.wake_rx.drain();
                    continue;
                }
                let id = ev.token as u64;
                if ev.readable {
                    self.read_conn(id);
                }
                if ev.writable {
                    self.flush_conn(id);
                }
            }

            let mut inbox_events = std::mem::take(&mut self.events_buf);
            self.inbox.take_into(&mut inbox_events);
            for ev in inbox_events.drain(..) {
                match ev {
                    IoEvent::NewConn(stream) => self.add_conn(stream),
                    IoEvent::Deliver {
                        conn,
                        seq,
                        resp,
                        close,
                    } => self.finish(conn, seq, resp, close),
                }
            }
            self.events_buf = inbox_events;

            self.retry_pending();
            self.maybe_reap();
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.remove_conn(id);
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.inbox.load.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let fd = raw_fd(&stream);
        if fd < 0 {
            self.inbox.load.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let id = self.shared.conn_ids.fetch_add(1, Ordering::Relaxed);
        self.shared.connections.fetch_add(1, Ordering::Relaxed);
        self.conns.insert(
            id,
            Conn {
                stream,
                fd,
                rd: None,
                outbox: VecDeque::new(),
                front_written: 0,
                ready: BTreeMap::new(),
                next_seq: 0,
                next_write: 0,
                stalled: false,
                closing: false,
                eof: false,
                last_progress: Instant::now(),
            },
        );
    }

    fn remove_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let inflight = conn.inflight() as i64;
            if inflight != 0 {
                self.shared.inflight.fetch_sub(inflight, Ordering::Relaxed);
            }
            self.shared.connections.fetch_sub(1, Ordering::Relaxed);
            self.inbox.load.fetch_sub(1, Ordering::Relaxed);
            // Parked pushes for this connection would only produce
            // replies to a dead peer; dropping them fires the guards,
            // whose deliveries no-op against the removed id.
            self.pending.retain(|p| p.conn != id);
        }
    }

    /// Drop the connection once everything owed to the peer is out.
    fn close_if_drained(&mut self, id: u64) {
        let drained = match self.conns.get(&id) {
            Some(c) => (c.closing || c.eof) && c.outbox.is_empty() && c.inflight() == 0,
            None => false,
        };
        if drained {
            self.remove_conn(id);
        }
    }

    /// Pull bytes off the socket into the pooled read buffer, then
    /// parse. Bounded per event (4 × scratch) so one firehose client
    /// cannot starve the rest of the poll set.
    fn read_conn(&mut self, id: u64) {
        let mut broken = false;
        {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            if conn.closing || conn.eof {
                return;
            }
            for _ in 0..4 {
                match (&conn.stream).read(&mut self.scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        let rd = match conn.rd.as_mut() {
                            Some(rd) => rd,
                            None => conn.rd.insert(self.shared.pool.checkout()),
                        };
                        rd.extend_from_slice(&self.scratch[..n]);
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
        }
        if broken {
            self.remove_conn(id);
            return;
        }
        self.parse_conn(id);
        self.close_if_drained(id);
    }

    /// Peel complete frames off the read buffer and dispatch them,
    /// until the buffer runs dry, the pipeline cap is hit, or a push
    /// stalls the connection.
    fn parse_conn(&mut self, id: u64) {
        let max_pipeline = self.max_pipeline as u64;
        loop {
            let (seq, total, mut rd) = {
                let Some(conn) = self.conns.get_mut(&id) else { return };
                if conn.stalled || conn.closing || conn.inflight() >= max_pipeline {
                    return;
                }
                let Some(buf) = conn.rd.as_ref() else { return };
                match frame_ready(buf) {
                    Ok(None) => return,
                    Ok(Some(total)) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.last_progress = Instant::now();
                        let rd = conn.rd.take().expect("checked above");
                        (seq, total, rd)
                    }
                    Err(e) => {
                        // Torn/oversized frame: the stream position is
                        // no longer trustworthy. Report once and close;
                        // buffered bytes are garbage now.
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.rd = None;
                        self.shared.inflight.fetch_add(1, Ordering::Relaxed);
                        self.finish(id, seq, Response::from_error(&e), true);
                        return;
                    }
                }
            };
            self.shared.inflight.fetch_add(1, Ordering::Relaxed);
            self.handle_request(id, seq, &rd[4..total]);
            let leftover = rd.len() - total;
            if leftover > 0 {
                rd.drain(..total);
            }
            if let Some(conn) = self.conns.get_mut(&id) {
                if leftover > 0 {
                    conn.rd = Some(rd);
                }
                // leftover == 0: dropping `rd` checks it back into the
                // pool — idle connections pin no buffer.
            }
        }
    }

    /// Decode one frame in place and dispatch it. Every request gets a
    /// pipeline slot (`seq`); responses are delivered through `finish`,
    /// directly for local errors or via the shard reply path.
    fn handle_request(&mut self, id: u64, seq: u64, payload: &[u8]) {
        let dest = Dest {
            inbox: Arc::clone(&self.inbox),
            conn: id,
            seq,
        };
        let req = match Request::decode_borrowed(payload) {
            Ok(req) => req,
            // Garbage opcode / truncated body: reply, then close.
            Err(e) => {
                self.finish(id, seq, Response::from_error(&e), true);
                return;
            }
        };
        // A follower replica serves reads only: every mutation (and a
        // replication subscribe — replicas don't chain) is answered
        // with a redirect to the leader, without touching the queues.
        if let Some(leader) = &self.shared.leader {
            if matches!(
                req,
                RequestRef::AddSource { .. }
                    | RequestRef::IngestSnippet(_)
                    | RequestRef::IngestBatch(_)
                    | RequestRef::RemoveDoc(_)
                    | RequestRef::ReplSubscribe { .. }
            ) {
                let leader = leader.clone();
                self.finish(id, seq, Response::NotLeader { leader }, false);
                return;
            }
        }
        match req {
            RequestRef::AddSource { name, kind, lag } => {
                let sid = self.shared.next_source.fetch_add(1, Ordering::SeqCst);
                if sid >= MAX_SOURCES {
                    let e = Error::InvalidConfig(format!(
                        "source limit reached ({MAX_SOURCES}): story-id partitioning supports \
                         at most {MAX_SOURCES} sources"
                    ));
                    self.finish(id, seq, Response::from_error(&e), false);
                    return;
                }
                let source = Source::new(SourceId::new(sid), name.to_string(), kind).with_lag(lag);
                let shard = self.shared.shard_of_source(source.id);
                self.push_one(id, shard, Job::AddSource(source, direct_reply(dest)));
            }
            RequestRef::IngestSnippet(sref) => {
                // The BUSY fast path: one snippet, one `try_push`. A
                // full shard queue is the client's problem (retry after
                // the hint), never the server's memory.
                let shard = self.shared.shard_of_source(sref.source);
                let job = Job::Ingest(sref.to_owned(), direct_reply(dest), Instant::now());
                match self.shared.queues[shard].try_push(job) {
                    Ok(()) => {}
                    Err(PushError::Full(job)) => {
                        self.shared.busy_counters[shard].fetch_add(1, Ordering::Relaxed);
                        fail_job(
                            job,
                            Response::Busy {
                                retry_after_ms: self.shared.busy_hint(shard),
                            },
                        );
                    }
                    Err(PushError::Closed(job)) => fail_job_closed(job),
                }
            }
            RequestRef::IngestBatch(batch) => {
                // Split by shard (preserving order within each shard);
                // the fan-in sums the per-shard counts.
                let n_shards = self.shared.queues.len();
                let mut by_shard: Vec<Vec<Snippet>> = vec![Vec::new(); n_shards];
                for sref in batch.iter() {
                    by_shard[self.shared.shard_of_source(sref.source)].push(sref.to_owned());
                }
                let participating: Vec<usize> =
                    (0..n_shards).filter(|&i| !by_shard[i].is_empty()).collect();
                if participating.is_empty() {
                    self.finish(id, seq, Response::BatchIngested(0), false);
                    return;
                }
                let fan = FanIn::new(
                    dest,
                    participating.len(),
                    Box::new(|parts: Vec<Response>| {
                        let mut total = 0u32;
                        for r in parts {
                            match r {
                                Response::BatchIngested(n) => total += n,
                                other => return other,
                            }
                        }
                        Response::BatchIngested(total)
                    }),
                );
                let mut jobs = VecDeque::with_capacity(participating.len());
                for (k, &shard) in participating.iter().enumerate() {
                    jobs.push_back((
                        shard,
                        Job::IngestMany(
                            std::mem::take(&mut by_shard[shard]),
                            part_reply(Arc::clone(&fan), k),
                        ),
                    ));
                }
                self.push_jobs(id, jobs);
            }
            // Reads never touch the shard queues: they merge the
            // published snapshots right here on the I/O worker, so a
            // query flash-crowd cannot starve (or be starved by)
            // ingest. `dest` is unused — the response is finished
            // synchronously in this call.
            RequestRef::QueryStories => {
                let mut stories = Vec::new();
                for (shard, slot) in self.shared.snapshots.iter().enumerate() {
                    let snap = slot.load();
                    stories.extend_from_slice(&snap.stories);
                    self.shared.query_counters[shard].fetch_add(1, Ordering::Relaxed);
                    self.shared.note_degraded_read(shard);
                }
                stories.sort_unstable_by_key(|s: &StorySummary| s.id);
                self.finish(id, seq, Response::Stories(stories), false);
            }
            RequestRef::GetStory(story) => {
                let shard = self.shared.shard_of_source(story_source(story));
                self.shared.query_counters[shard].fetch_add(1, Ordering::Relaxed);
                self.shared.note_degraded_read(shard);
                let resp = match self.shared.snapshots[shard].load().get(story) {
                    Some(summary) => Response::Story(summary.clone()),
                    None => Response::from_error(&Error::UnknownStory(story)),
                };
                self.finish(id, seq, resp, false);
            }
            RequestRef::ReplSubscribe {
                shard,
                generation,
                wal_offset,
            } => {
                let n = self.shared.queues.len();
                if shard as usize >= n {
                    let e = Error::InvalidConfig(format!(
                        "REPL_SUBSCRIBE for shard {shard}, but the leader has {n} shards"
                    ));
                    self.finish(id, seq, Response::from_error(&e), false);
                    return;
                }
                self.push_one(
                    id,
                    shard as usize,
                    Job::Repl {
                        generation,
                        wal_offset,
                        reply: direct_reply(dest),
                    },
                );
            }
            RequestRef::RemoveDoc(doc) => self.broadcast(
                id,
                dest,
                move |r| Job::RemoveDoc(doc, r),
                Box::new(move |parts| {
                    let mut total = 0u32;
                    for r in parts {
                        match r {
                            Response::Removed(n) => total += n,
                            other => return other,
                        }
                    }
                    if total == 0 {
                        Response::from_error(&Error::UnknownDocument(doc))
                    } else {
                        Response::Removed(total)
                    }
                }),
            ),
            RequestRef::Stats => self.broadcast(
                id,
                dest,
                Job::Stats,
                Box::new(|parts| {
                    let mut shards = Vec::new();
                    for r in parts {
                        match r {
                            Response::Stats(s) => shards.extend(s.shards),
                            other => return other,
                        }
                    }
                    shards.sort_unstable_by_key(|s: &ShardStats| s.shard);
                    Response::Stats(ServeStats { shards })
                }),
            ),
            RequestRef::Shutdown => self.handle_shutdown(dest),
            RequestRef::Metrics => {
                // Snapshot every shard's registry plus the I/O layer's
                // own, merge, and render one exposition.
                let n = self.shared.queues.len();
                let shared = Arc::clone(&self.shared);
                let fan = FanIn::new(
                    dest,
                    n,
                    Box::new(move |snaps: Vec<Snapshot>| {
                        shared.sync_io_gauges();
                        let mut merged = shared.registry.snapshot();
                        for s in &snaps {
                            merged.merge(s);
                        }
                        Response::Metrics {
                            text: merged.render(),
                        }
                    }),
                );
                let mut jobs = VecDeque::with_capacity(n);
                for shard in 0..n {
                    jobs.push_back((shard, Job::Metrics(part_reply(Arc::clone(&fan), shard))));
                }
                self.push_jobs(id, jobs);
            }
        }
    }

    /// Fan one job out to every shard and merge the replies.
    fn broadcast(
        &mut self,
        conn_id: u64,
        dest: Dest,
        make_job: impl Fn(Reply) -> Job,
        merge: MergeFn<Response>,
    ) {
        let n = self.shared.queues.len();
        let fan = FanIn::new(dest, n, merge);
        let mut jobs = VecDeque::with_capacity(n);
        for shard in 0..n {
            jobs.push_back((shard, make_job(part_reply(Arc::clone(&fan), shard))));
        }
        self.push_jobs(conn_id, jobs);
    }

    fn push_one(&mut self, conn_id: u64, shard: usize, job: Job) {
        let mut jobs = VecDeque::with_capacity(1);
        jobs.push_back((shard, job));
        self.push_jobs(conn_id, jobs);
    }

    /// Push control-plane jobs to their shard queues without blocking:
    /// a full queue parks the remainder in the pending list and stalls
    /// the connection's parser (backpressure with order preserved); a
    /// closed queue fails every remaining job with the shutting-down
    /// error.
    fn push_jobs(&mut self, conn_id: u64, mut jobs: VecDeque<(usize, Job)>) {
        while let Some((shard, job)) = jobs.pop_front() {
            match self.shared.queues[shard].try_push(job) {
                Ok(()) => {}
                Err(PushError::Full(job)) => {
                    jobs.push_front((shard, job));
                    if let Some(conn) = self.conns.get_mut(&conn_id) {
                        conn.stalled = true;
                    }
                    self.pending.push(PendingPush {
                        conn: conn_id,
                        pushes: jobs,
                    });
                    return;
                }
                Err(PushError::Closed(job)) => {
                    fail_job_closed(job);
                    for (_, j) in jobs.drain(..) {
                        fail_job_closed(j);
                    }
                    break;
                }
            }
        }
        // Everything pushed (or failed-closed): release the parser if a
        // previous attempt had stalled it.
        let unstalled = match self.conns.get_mut(&conn_id) {
            Some(conn) if conn.stalled => {
                conn.stalled = false;
                true
            }
            _ => false,
        };
        if unstalled {
            self.parse_conn(conn_id);
        }
    }

    /// Re-attempt parked pushes (shard workers may have drained queue
    /// space since last tick).
    fn retry_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for p in pending {
            self.push_jobs(p.conn, p.pushes);
        }
    }

    /// A response landed for `(conn, seq)`: encode it into a pooled
    /// buffer, park it in the reorder map, move every in-order entry to
    /// the outbox, and opportunistically flush.
    fn finish(&mut self, id: u64, seq: u64, resp: Response, close: bool) {
        {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            if seq < conn.next_write || conn.ready.contains_key(&seq) {
                return; // stale or duplicate completion
            }
            let mut buf = self.shared.pool.checkout();
            frame_into(buf.as_mut_vec(), |b| resp.encode(b));
            conn.ready.insert(seq, (buf, close));
            while let Some((buf, close)) = conn.ready.remove(&conn.next_write) {
                conn.outbox.push_back(buf);
                conn.next_write += 1;
                self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
                if close {
                    conn.closing = true;
                }
            }
        }
        self.flush_conn(id);
        // Pipeline slack may have returned: resume parsing buffered
        // frames (no-op while a parse is already on the stack — it
        // holds the read buffer).
        let resume = match self.conns.get(&id) {
            Some(c) => !c.stalled && !c.closing && c.rd.is_some(),
            None => false,
        };
        if resume {
            self.parse_conn(id);
        }
    }

    /// Write as much of the outbox as the socket accepts, gathering up
    /// to 16 frames per `write_vectored` call.
    fn flush_conn(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            if conn.outbox.is_empty() {
                break;
            }
            let result = {
                let mut iov: Vec<IoSlice<'_>> = Vec::with_capacity(conn.outbox.len().min(16));
                for (i, buf) in conn.outbox.iter().take(16).enumerate() {
                    let start = if i == 0 { conn.front_written } else { 0 };
                    iov.push(IoSlice::new(&buf[start..]));
                }
                (&conn.stream).write_vectored(&iov)
            };
            match result {
                Ok(0) => {
                    self.remove_conn(id);
                    return;
                }
                Ok(n) => {
                    let mut n = n + conn.front_written;
                    while let Some(front) = conn.outbox.front() {
                        if n >= front.len() {
                            n -= front.len();
                            conn.outbox.pop_front();
                        } else {
                            break;
                        }
                    }
                    conn.front_written = n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.remove_conn(id);
                    return;
                }
            }
        }
        self.close_if_drained(id);
    }

    /// SHUTDOWN: idempotent across connections. The first caller
    /// spawns the orchestrator; concurrent callers park as waiters and
    /// are acked when the drain completes; post-done callers ack
    /// immediately.
    fn handle_shutdown(&mut self, dest: Dest) {
        if self.shared.done.load(Ordering::SeqCst) {
            dest.deliver(Response::ShutdownAck, true);
            return;
        }
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            let mut waiters = lock(&self.shared.shutdown_waiters);
            // Re-check under the waiters lock: the orchestrator flushes
            // waiters after setting `done` while holding it, so either
            // we see done here or it will see us there.
            if self.shared.done.load(Ordering::SeqCst) {
                drop(waiters);
                dest.deliver(Response::ShutdownAck, true);
            } else {
                waiters.push(dest);
            }
            return;
        }
        let shared = Arc::clone(&self.shared);
        if let Err(e) = std::thread::Builder::new()
            .name("pivot-shutdown".into())
            .spawn(move || run_shutdown(shared, dest))
        {
            eprintln!("pivotd: failed to spawn shutdown thread: {e}");
        }
    }

    /// Throttled idle sweep: connections with no completed frame inside
    /// the window, nothing in flight, and nothing left to write are
    /// reaped. A slow-loris client that trickles bytes without ever
    /// completing a frame never advances the progress clock, so it is
    /// reaped on the same schedule.
    fn maybe_reap(&mut self) {
        let Some(idle) = self.idle_timeout else { return };
        let now = Instant::now();
        if now.duration_since(self.last_reap) < Duration::from_millis(100) {
            return;
        }
        self.last_reap = now;
        let victims: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                !c.closing
                    && c.inflight() == 0
                    && c.outbox.is_empty()
                    && now.duration_since(c.last_progress) > idle
            })
            .map(|(&id, _)| id)
            .collect();
        for id in victims {
            self.remove_conn(id);
        }
    }
}
// ---- shard worker ----------------------------------------------------

/// What a successfully applied mutation produced.
enum Applied {
    Source(SourceId),
    Story(StoryId),
    Removed(u32),
}

/// The debug-only failure-injection hook: runs in both the live apply
/// path and the rebuild replay path, so an injected panic is
/// deterministic across restarts (which is what earns it a second
/// strike and the quarantine).
fn poison_check(op: &ReplayOp) {
    if cfg!(debug_assertions) {
        if let ReplayOp::Ingest(snippet) = op {
            if snippet.content.headline == POISON_HEADLINE {
                panic!("injected poison snippet (debug-only failure hook)");
            }
        }
    }
}

/// Trace-ring label for a mutation.
fn op_label(op: &ReplayOp) -> &'static str {
    match op {
        ReplayOp::AddSource(_) => "add_source",
        ReplayOp::Ingest(_) => "ingest",
        ReplayOp::RemoveDoc(_) => "remove_doc",
    }
}

/// Apply one mutation to a live engine. Shared by the serving path and
/// (via [`replay_op`]'s equivalent semantics) mirrored by recovery.
fn apply_live(engine: &mut DynamicPivot, op: &ReplayOp) -> Result<Applied> {
    poison_check(op);
    match op {
        ReplayOp::AddSource(source) => engine
            .pivot_mut()
            .add_source_registered(source.clone())
            .map(Applied::Source),
        ReplayOp::Ingest(snippet) => engine.ingest(snippet.clone()).map(Applied::Story),
        ReplayOp::RemoveDoc(doc) => match engine.pivot_mut().remove_document(*doc) {
            Ok(n) => Ok(Applied::Removed(n as u32)),
            // Sharding splits documents across engines: "unknown here"
            // just means zero local snippets; the router sums.
            Err(Error::UnknownDocument(_)) => Ok(Applied::Removed(0)),
            Err(e) => Err(e),
        },
    }
}

/// Per-shard serving-layer metric handles, labeled `shard="N"` so the
/// merged exposition keeps them distinguishable across shards.
struct ShardServeMetrics {
    queue_depth: Gauge,
    queue_capacity: Gauge,
    restarts: Gauge,
    quarantined: Gauge,
    busy_rejections: Gauge,
    shed: Counter,
    ingest_latency: HistogramMetric,
    snapshot_epoch: Gauge,
    snapshot_age_ops: Gauge,
}

impl ShardServeMetrics {
    fn register(registry: &Registry, shard: usize) -> Self {
        let id = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &id)];
        ShardServeMetrics {
            queue_depth: registry.gauge_with(
                "storypivot_shard_queue_depth",
                "Jobs currently waiting in the shard's bounded queue.",
                labels,
            ),
            queue_capacity: registry.gauge_with(
                "storypivot_shard_queue_capacity",
                "Capacity of the shard's bounded queue.",
                labels,
            ),
            restarts: registry.gauge_with(
                "storypivot_shard_restarts",
                "Engine rebuilds after a panic on this shard.",
                labels,
            ),
            quarantined: registry.gauge_with(
                "storypivot_shard_quarantined",
                "Operations dead-lettered on this shard.",
                labels,
            ),
            busy_rejections: registry.gauge_with(
                "storypivot_shard_busy_rejections",
                "Ingests rejected with BUSY because the queue was full.",
                labels,
            ),
            shed: registry.counter_with(
                "storypivot_shed_total",
                "Admitted ingests dropped unapplied because they waited in the \
                 queue past the per-request deadline (--deadline-ms).",
                labels,
            ),
            ingest_latency: registry.histogram_with(
                "storypivot_shard_ingest_latency_ns",
                "End-to-end shard-side ingest latency (journal + apply) in nanoseconds.",
                labels,
            ),
            snapshot_epoch: registry.gauge_with(
                "storypivot_shard_snapshot_epoch",
                "Publication count of the shard's lock-free read snapshot.",
                labels,
            ),
            snapshot_age_ops: registry.gauge_with(
                "storypivot_shard_snapshot_age_ops",
                "Mutations applied since the current read snapshot was published.",
                labels,
            ),
        }
    }
}

struct ShardWorker {
    idx: usize,
    engine: DynamicPivot,
    /// Engine config + pipeline policy, kept for rebuilds.
    pivot_cfg: PivotConfig,
    policy: PipelinePolicy,
    hist: Histogram,
    ingested: u64,
    /// Shared with the I/O workers, which bump it on the snapshot read
    /// path; the shard only reads it for STATS.
    queries: Arc<AtomicU64>,
    busy: Arc<AtomicU64>,
    /// EWMA of single-snippet ingest service time in nanoseconds,
    /// shared with the I/O workers so BUSY/SHED retry hints scale with
    /// how long the queued work will actually take to drain.
    service_ewma: Arc<AtomicU64>,
    /// Per-request queueing budget; zero disables deadline shedding.
    deadline: Duration,
    /// Floor for retry-after hints (the configured flat value).
    retry_floor_ms: u32,
    /// Debug/test-gated fault consulted before each checkpoint write.
    checkpoint_fault: FaultHook,
    queue: Bounded<Job>,
    /// Where published read snapshots go (shared with I/O workers).
    slot: SnapshotSlot,
    snapshot_epoch: u64,
    /// Mutations applied since the last publish.
    snapshot_age_ops: u64,
    snapshot_every_ops: u64,
    snapshot_max_age: Duration,
    last_publish: Instant,
    /// Follower replica: skip local checkpoint scheduling (generation
    /// and WAL position are the leader's to advance).
    replica: bool,
    /// The shard's private metrics registry; engine, WAL, and serving
    /// gauges all record here, and `METRICS` snapshots it.
    registry: Registry,
    /// Engine handles, re-attached to every rebuilt engine.
    engine_metrics: EngineMetrics,
    serve_metrics: ShardServeMetrics,
    /// Recent engine events, dumped when an apply panics.
    trace: TraceRing,
    /// Where the panic-time trace dump is written (next to the WAL or
    /// checkpoints); `None` keeps the dump on stderr only.
    trace_path: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every_bytes: u64,
    worker_delay: Duration,
    wal: Option<Wal>,
    wal_path: Option<PathBuf>,
    /// Dead-letter file for quarantined ops (next to the WAL, or the
    /// checkpoint dir when journaling is off).
    dead_path: Option<PathBuf>,
    dead: Option<Wal>,
    /// Newest checkpoint generation written or loaded so far.
    generation: u64,
    ops_since_checkpoint: u64,
    restarts: u64,
    quarantined: u64,
    /// Panic count per op fingerprint; two strikes quarantine.
    strikes: HashMap<u64, u32>,
    /// Fingerprints of dead-lettered ops: skipped on replay, rejected
    /// on resubmission.
    quarantine: HashSet<u64>,
}

impl ShardWorker {
    /// Build shard `idx` from durable state: load the dead-letter set,
    /// open (and tail-repair) the WAL, restore the newest valid
    /// checkpoint generation, and replay the WAL tail on top.
    fn recover(
        idx: usize,
        cfg: &ServerConfig,
        busy: Arc<AtomicU64>,
        queue: Bounded<Job>,
        queries: Arc<AtomicU64>,
        slot: SnapshotSlot,
        service_ewma: Arc<AtomicU64>,
    ) -> Result<ShardWorker> {
        let policy = PipelinePolicy {
            align_every: cfg.align_every,
            ..PipelinePolicy::default()
        };
        let state_dir = cfg.wal_dir.as_ref().or(cfg.checkpoint_dir.as_ref());
        let dead_path = state_dir.map(|d| d.join(format!("shard{idx}.dead")));
        let trace_path = state_dir.map(|d| d.join(format!("shard{idx}.trace")));

        let mut quarantine = HashSet::new();
        let mut quarantined = 0u64;
        if let Some(path) = &dead_path {
            match wal::scan(path) {
                Ok(scan) => {
                    for payload in &scan.records {
                        if let Ok(op) = ReplayOp::decode(payload) {
                            if quarantine.insert(op.fingerprint()) {
                                quarantined += 1;
                            }
                        }
                    }
                }
                Err(e) => eprintln!(
                    "pivotd: shard {idx}: dead-letter file {} unreadable: {e}",
                    path.display()
                ),
            }
        }

        let registry = Registry::new();
        let engine_metrics = EngineMetrics::register(&registry);
        let serve_metrics = ShardServeMetrics::register(&registry, idx);

        let mut worker = ShardWorker {
            idx,
            engine: DynamicPivot::new(cfg.pivot.clone(), policy),
            pivot_cfg: cfg.pivot.clone(),
            policy,
            hist: Histogram::new(),
            ingested: 0,
            queries,
            busy,
            service_ewma,
            deadline: Duration::from_millis(cfg.deadline_ms),
            retry_floor_ms: cfg.retry_after_ms,
            checkpoint_fault: cfg
                .faults
                .as_ref()
                .map(|p| p.hook("checkpoint", idx as u64))
                .unwrap_or_else(FaultHook::inert),
            queue,
            slot,
            snapshot_epoch: 0,
            snapshot_age_ops: 0,
            snapshot_every_ops: cfg.snapshot_every_ops,
            snapshot_max_age: Duration::from_millis(cfg.snapshot_max_age_ms),
            last_publish: Instant::now(),
            replica: cfg.leader.is_some(),
            registry,
            engine_metrics,
            serve_metrics,
            trace: TraceRing::new(256),
            trace_path,
            checkpoint_dir: cfg.checkpoint_dir.clone(),
            checkpoint_every_bytes: cfg.checkpoint_every_bytes,
            worker_delay: cfg.worker_delay,
            wal: None,
            wal_path: None,
            dead_path,
            dead: None,
            generation: 0,
            ops_since_checkpoint: 0,
            restarts: 0,
            quarantined,
            strikes: HashMap::new(),
            quarantine,
        };

        if let Some(wal_dir) = &cfg.wal_dir {
            std::fs::create_dir_all(wal_dir)
                .map_err(|e| Error::Io(format!("create {}: {e}", wal_dir.display())))?;
            let path = wal_dir.join(format!("shard{idx}.wal"));
            let (mut wal, scan) = Wal::open(&path, cfg.fsync)
                .map_err(|e| Error::Io(format!("open wal {}: {e}", path.display())))?;
            let shard_label = idx.to_string();
            let labels: &[(&str, &str)] = &[("shard", &shard_label)];
            wal.set_metrics(WalMetrics {
                append_duration: worker.registry.histogram_with(
                    "storypivot_wal_append_duration_ns",
                    "Duration of each WAL append in nanoseconds.",
                    labels,
                ),
                sync_duration: worker.registry.histogram_with(
                    "storypivot_wal_sync_duration_ns",
                    "Duration of each WAL fsync in nanoseconds.",
                    labels,
                ),
                appended_bytes: worker.registry.counter_with(
                    "storypivot_wal_appended_bytes_total",
                    "Journal bytes appended, framing included.",
                    labels,
                ),
            });
            if scan.damaged() {
                eprintln!(
                    "pivotd: shard {idx}: wal {} had a torn tail; dropped {} trailing bytes",
                    path.display(),
                    scan.dropped_bytes
                );
            }
            if let Some(plan) = &cfg.faults {
                wal.set_faults(storypivot_substrate::wal::WalFaults {
                    enospc: plan.hook("wal_enospc", idx as u64),
                    short_write: plan.hook("wal_short", idx as u64),
                });
            }
            worker.wal_path = Some(path);
            worker.wal = Some(wal);
        }

        worker.rebuild();
        Ok(worker)
    }

    fn run(mut self) {
        while let Some(job) = self.queue.pop() {
            if !self.worker_delay.is_zero() {
                std::thread::sleep(self.worker_delay);
            }
            // Time half of the freshness policy: ops held back by a
            // large `snapshot_every_ops` still reach readers once the
            // snapshot outlives `snapshot_max_age`.
            if self.snapshot_age_ops > 0 && self.last_publish.elapsed() >= self.snapshot_max_age {
                self.publish_snapshot();
            }
            match job {
                Job::AddSource(source, reply) => reply(self.add_source(source)),
                Job::Ingest(snippet, reply, enqueued) => {
                    // Deadline shedding: work that waited past the
                    // client's budget is answered with SHED *before*
                    // the WAL or engine see it — under saturation the
                    // worker spends its time on requests someone is
                    // still waiting for. Only single-snippet ingests
                    // carry a budget; batches and control ops park for
                    // backpressure at admission instead.
                    if !self.deadline.is_zero() && enqueued.elapsed() > self.deadline {
                        reply(self.shed(snippet));
                    } else {
                        reply(self.ingest(snippet));
                    }
                }
                Job::IngestMany(batch, reply) => reply(self.ingest_many(batch)),
                Job::RemoveDoc(doc, reply) => reply(self.remove_doc(doc)),
                Job::Stats(reply) => reply(self.stats()),
                Job::Metrics(reply) => reply(self.metrics_snapshot()),
                Job::Drain(reply) => reply(self.drain()),
                Job::Repl {
                    generation,
                    wal_offset,
                    reply,
                } => reply(self.repl(generation, wal_offset)),
                Job::ReplBootstrap {
                    generation,
                    checkpoint,
                    ack,
                } => {
                    let _ = ack.send(self.repl_bootstrap(generation, checkpoint));
                }
                Job::ReplApply { records, ack } => {
                    let _ = ack.send(self.repl_apply(&records));
                }
            }
        }
    }

    /// Journal, then apply under `catch_unwind`. A panic rebuilds the
    /// engine from durable state and replies with an error instead of
    /// killing the worker; the op's strike count decides quarantine.
    fn mutate(&mut self, op: ReplayOp) -> Result<Applied> {
        let fp = op.fingerprint();
        self.trace.push(op_label(&op), format!("fp={fp:#018x}"));
        if self.quarantine.contains(&fp) {
            return Err(Error::Invariant(format!(
                "operation {fp:#018x} is quarantined on shard {} \
                 (dead-lettered after repeated panics)",
                self.idx
            )));
        }
        if let Some(w) = &mut self.wal {
            w.append(&op.to_bytes())
                .map_err(|e| Error::Io(format!("shard {} wal append: {e}", self.idx)))?;
        }
        let engine = &mut self.engine;
        match catch_unwind(AssertUnwindSafe(|| apply_live(engine, &op))) {
            Ok(result) => {
                if result.is_ok() {
                    self.ops_since_checkpoint += 1;
                    self.maybe_checkpoint();
                    self.note_applied();
                }
                result
            }
            Err(_) => {
                self.restarts += 1;
                *self.strikes.entry(fp).or_insert(0) += 1;
                self.dump_trace(fp);
                self.rebuild();
                let quarantined_now = self.quarantine.contains(&fp);
                Err(Error::Invariant(format!(
                    "shard {} panicked applying the operation; engine rebuilt from \
                     checkpoint + wal{}",
                    self.idx,
                    if quarantined_now {
                        " and the operation was quarantined"
                    } else {
                        ""
                    }
                )))
            }
        }
    }

    /// Dump the shard's recent-event trace before the engine is torn
    /// down: stderr always, plus `shard{i}.trace` when a durable state
    /// directory exists. Best effort — a failed write never blocks the
    /// rebuild.
    fn dump_trace(&mut self, fp: u64) {
        let dump = format!(
            "pivotd: shard {}: panic applying op {fp:#018x}; last {} events:\n{}",
            self.idx,
            self.trace.len(),
            self.trace.render()
        );
        eprintln!("{dump}");
        if let Some(path) = &self.trace_path {
            if let Err(e) = std::fs::write(path, &dump) {
                eprintln!(
                    "pivotd: shard {}: trace dump to {} failed: {e}",
                    self.idx,
                    path.display()
                );
            }
        }
    }

    /// Refresh the serving gauges and snapshot the shard's registry.
    fn metrics_snapshot(&mut self) -> Snapshot {
        self.sync_gauges();
        self.registry.snapshot()
    }

    fn sync_gauges(&self) {
        let m = &self.serve_metrics;
        m.queue_depth.set(self.queue.len() as i64);
        m.queue_capacity.set(self.queue.capacity() as i64);
        m.restarts.set(self.restarts as i64);
        m.quarantined.set(self.quarantined as i64);
        m.busy_rejections.set(self.busy.load(Ordering::Relaxed) as i64);
        m.snapshot_epoch.set(self.snapshot_epoch as i64);
        m.snapshot_age_ops.set(self.snapshot_age_ops as i64);
    }

    /// Build an immutable, id-sorted copy of the current partition and
    /// swap it into the shared slot. Runs on the shard thread *before*
    /// the triggering op's reply is delivered, so acked writes are
    /// always visible to the next read.
    fn publish_snapshot(&mut self) {
        self.snapshot_epoch += 1;
        let mut stories = self.summaries();
        stories.sort_unstable_by_key(|s| s.id);
        self.slot.publish(Arc::new(ShardSnapshot {
            epoch: self.snapshot_epoch,
            stories,
        }));
        self.snapshot_age_ops = 0;
        self.last_publish = Instant::now();
        self.serve_metrics.snapshot_epoch.set(self.snapshot_epoch as i64);
        self.serve_metrics.snapshot_age_ops.set(0);
    }

    /// Freshness policy after one applied mutation: republish every
    /// `snapshot_every_ops` ops, or sooner once the snapshot is older
    /// than `snapshot_max_age`.
    fn note_applied(&mut self) {
        self.snapshot_age_ops += 1;
        if self.snapshot_age_ops >= self.snapshot_every_ops
            || self.last_publish.elapsed() >= self.snapshot_max_age
        {
            self.publish_snapshot();
        } else {
            self.serve_metrics.snapshot_age_ops.set(self.snapshot_age_ops as i64);
        }
    }

    /// Reconstruct the engine from the newest valid checkpoint plus the
    /// WAL tail. An op that panics during replay earns a strike; at two
    /// strikes it is dead-lettered, and the replay restarts without it.
    /// Terminates: every restart either quarantines an op or arms its
    /// second strike.
    fn rebuild(&mut self) {
        self.trace.push("rebuild", String::new());
        loop {
            let mut engine = self.engine_from_checkpoint();
            let records = match &self.wal_path {
                Some(path) => match wal::scan(path) {
                    Ok(scan) => scan.records,
                    Err(e) => {
                        eprintln!(
                            "pivotd: shard {}: wal scan failed during rebuild: {e}",
                            self.idx
                        );
                        Vec::new()
                    }
                },
                None => Vec::new(),
            };
            let mut repanicked = false;
            for payload in &records {
                let op = match ReplayOp::decode(payload) {
                    Ok(op) => op,
                    Err(e) => {
                        eprintln!("pivotd: shard {}: undecodable wal record skipped: {e}", self.idx);
                        continue;
                    }
                };
                let fp = op.fingerprint();
                if self.quarantine.contains(&fp) {
                    continue;
                }
                match catch_unwind(AssertUnwindSafe(|| replay_with_poison(&mut engine, &op))) {
                    Ok(Ok(_)) => {}
                    Ok(Err(e)) => eprintln!(
                        "pivotd: shard {}: replay error (op skipped): {e}",
                        self.idx
                    ),
                    Err(_) => {
                        self.restarts += 1;
                        let strikes = self.strikes.entry(fp).or_insert(0);
                        *strikes += 1;
                        if *strikes >= 2 {
                            self.quarantine_op(&op);
                        }
                        repanicked = true;
                        break;
                    }
                }
            }
            if !repanicked {
                self.engine = engine;
                // A rebuilt engine starts with detached handles; point
                // it back at the shard's registry.
                self.engine.pivot_mut().set_metrics(self.engine_metrics.clone());
                // Readers must see the rebuilt partition, not the
                // pre-panic (or pre-recovery empty) one.
                self.publish_snapshot();
                return;
            }
        }
    }

    /// Newest valid checkpoint generation, or a fresh engine.
    fn engine_from_checkpoint(&mut self) -> DynamicPivot {
        if let Some(dir) = &self.checkpoint_dir {
            let timer = self.engine_metrics.checkpoint_load_duration.start();
            match checkpoint::load_newest(dir, self.idx, self.pivot_cfg.clone()) {
                Ok(Some((pivot, generation))) => {
                    drop(timer);
                    self.generation = self.generation.max(generation);
                    return DynamicPivot::from_pivot(pivot, self.policy);
                }
                Ok(None) => timer.discard(),
                Err(e) => {
                    timer.discard();
                    eprintln!(
                        "pivotd: shard {}: checkpoint load failed ({e}); starting empty",
                        self.idx
                    );
                }
            }
        }
        DynamicPivot::new(self.pivot_cfg.clone(), self.policy)
    }

    /// Dead-letter an op: remember its fingerprint and append its bytes
    /// to `shard{i}.dead` so the quarantine survives restarts.
    fn quarantine_op(&mut self, op: &ReplayOp) {
        let fp = op.fingerprint();
        if !self.quarantine.insert(fp) {
            return;
        }
        self.quarantined += 1;
        eprintln!(
            "pivotd: shard {}: quarantining operation {fp:#018x} after repeated panics",
            self.idx
        );
        if let Some(path) = &self.dead_path {
            let outcome = match self.dead.as_mut() {
                Some(d) => d.append(&op.to_bytes()).map(|_| ()),
                None => match Wal::open(path, SyncPolicy::Always) {
                    Ok((mut d, _)) => {
                        let r = d.append(&op.to_bytes()).map(|_| ());
                        self.dead = Some(d);
                        r
                    }
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = outcome {
                eprintln!(
                    "pivotd: shard {}: dead-letter write to {} failed: {e}",
                    self.idx,
                    path.display()
                );
            }
        }
    }

    /// Size-triggered checkpoint: once the WAL is past the threshold,
    /// persist a generation and truncate the log.
    fn maybe_checkpoint(&mut self) {
        // A replica never checkpoints on its own: its generation is
        // the leader's, and truncating the WAL would desync the
        // byte-identical copy that serves as the replication cursor.
        if self.replica {
            return;
        }
        if self.checkpoint_every_bytes == 0 || self.checkpoint_dir.is_none() {
            return;
        }
        let due = self
            .wal
            .as_ref()
            .is_some_and(|w| w.len() >= self.checkpoint_every_bytes);
        if due {
            if let Err(e) = self.checkpoint_now() {
                eprintln!("pivotd: shard {}: periodic checkpoint failed: {e}", self.idx);
            }
        }
    }

    /// Write checkpoint generation N+1 (atomic temp-file + rename),
    /// then truncate the WAL. Crashing between the two is safe: replay
    /// of the stale tail is idempotent.
    fn checkpoint_now(&mut self) -> Result<()> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Ok(());
        };
        // Injected checkpoint failure: fails before the generation
        // advances, so the newest valid on-disk generation (plus the
        // intact WAL) still reconstructs the exact partition.
        if self.checkpoint_fault.fire() {
            self.trace.push("checkpoint", "injected fault");
            return Err(Error::Io(format!(
                "shard {}: injected fault: checkpoint write failed",
                self.idx
            )));
        }
        let bytes = self.engine.pivot().save_checkpoint();
        self.generation += 1;
        self.trace
            .push("checkpoint", format!("generation {}", self.generation));
        checkpoint::write_generation(&dir, self.idx, self.generation, &bytes)?;
        if let Some(w) = &mut self.wal {
            w.reset()
                .map_err(|e| Error::Io(format!("shard {} wal reset: {e}", self.idx)))?;
        }
        self.ops_since_checkpoint = 0;
        Ok(())
    }

    fn add_source(&mut self, source: Source) -> Response {
        match self.mutate(ReplayOp::AddSource(source)) {
            Ok(Applied::Source(id)) => Response::SourceAdded(id),
            Ok(_) => internal_shape_error(),
            Err(e) => Response::from_error(&e),
        }
    }

    /// Drop an expired ingest and tell the client when the queue should
    /// have drained enough to be worth a fresh attempt.
    fn shed(&mut self, snippet: Snippet) -> Response {
        self.trace.push("shed", format!("doc={}", snippet.doc.raw()));
        self.serve_metrics.shed.inc();
        Response::Shed {
            retry_after_ms: retry_hint(
                self.queue.len(),
                self.service_ewma.load(Ordering::Relaxed),
                self.retry_floor_ms,
            ),
        }
    }

    /// Fold one observed service time into the shared EWMA (α = 1/8).
    fn note_service(&self, elapsed_ns: u64) {
        let prev = self.service_ewma.load(Ordering::Relaxed);
        let next = if prev == 0 {
            elapsed_ns
        } else {
            prev - prev / 8 + elapsed_ns / 8
        };
        self.service_ewma.store(next, Ordering::Relaxed);
    }

    fn ingest(&mut self, snippet: Snippet) -> Response {
        let t = Instant::now();
        match self.mutate(ReplayOp::Ingest(snippet)) {
            Ok(Applied::Story(story)) => {
                let elapsed = t.elapsed().as_nanos() as u64;
                self.hist.record(elapsed);
                self.serve_metrics.ingest_latency.record(elapsed);
                self.note_service(elapsed);
                self.ingested += 1;
                Response::Ingested(story)
            }
            Ok(_) => internal_shape_error(),
            Err(e) => Response::from_error(&e),
        }
    }

    fn ingest_many(&mut self, batch: Vec<Snippet>) -> Response {
        let mut count = 0u32;
        for snippet in batch {
            let t = Instant::now();
            match self.mutate(ReplayOp::Ingest(snippet)) {
                Ok(Applied::Story(_)) => {
                    let elapsed = t.elapsed().as_nanos() as u64;
                    self.hist.record(elapsed);
                    self.serve_metrics.ingest_latency.record(elapsed);
                    self.note_service(elapsed);
                    self.ingested += 1;
                    count += 1;
                }
                Ok(_) => return internal_shape_error(),
                Err(e) => {
                    return Response::Error {
                        code: crate::proto::error_code(&e),
                        message: format!("{e} (after {count} snippets of the batch)"),
                    }
                }
            }
        }
        Response::BatchIngested(count)
    }

    fn summaries(&self) -> Vec<StorySummary> {
        let pivot = self.engine.pivot();
        pivot
            .story_partition()
            .into_iter()
            .map(|(id, members)| StorySummary {
                id,
                source: story_source(id),
                lifespan: pivot.story(id).expect("partitioned story exists").lifespan(),
                members,
            })
            .collect()
    }

    /// Leader side of one replication poll. The handler runs on the
    /// shard thread, so `generation`, `ops_since_checkpoint`, and the
    /// WAL length are mutually consistent — there is no race with a
    /// concurrent checkpoint.
    fn repl(&mut self, generation: u64, wal_offset: u64) -> Response {
        let Some(wal) = self.wal.as_ref() else {
            return Response::from_error(&Error::InvalidConfig(format!(
                "shard {}: replication requires the leader to run with --wal-dir",
                self.idx
            )));
        };
        let wal_len = wal.len();
        if generation == self.generation && wal_offset <= wal_len {
            let path = self.wal_path.as_ref().expect("wal implies wal_path");
            match wal::read_records_range(path, wal_offset, REPL_BATCH_BYTES) {
                Ok(records) => Response::ReplFrame {
                    generation: self.generation,
                    next_offset: wal_offset + records.len() as u64,
                    leader_wal_len: wal_len,
                    leader_ops: self.ops_since_checkpoint,
                    records,
                },
                Err(e) => Response::from_error(&Error::Io(format!(
                    "shard {}: replication read at offset {wal_offset}: {e}",
                    self.idx
                ))),
            }
        } else {
            // The follower is on an older generation (or a diverged
            // offset): re-bootstrap it from the newest checkpoint,
            // shipped verbatim so both sides agree on the bytes.
            match self
                .checkpoint_dir
                .as_deref()
                .map(|d| checkpoint::newest_generation_bytes(d, self.idx))
            {
                Some(Ok(Some((gen, bytes)))) => Response::ReplCheckpoint {
                    generation: gen,
                    checkpoint: bytes,
                },
                // No checkpoint on disk: the follower starts from an
                // empty engine at the leader's generation and tails
                // the WAL from offset 0.
                Some(Ok(None)) | None => Response::ReplCheckpoint {
                    generation: self.generation,
                    checkpoint: Vec::new(),
                },
                Some(Err(e)) => Response::from_error(&e),
            }
        }
    }

    /// Follower side: install the leader's checkpoint bytes verbatim
    /// (persisting the same generation locally), reset the WAL copy,
    /// and publish the bootstrapped partition.
    fn repl_bootstrap(&mut self, generation: u64, bytes: Vec<u8>) -> Result<ReplCursor> {
        let engine = if bytes.is_empty() {
            DynamicPivot::new(self.pivot_cfg.clone(), self.policy)
        } else {
            let pivot = storypivot_core::StoryPivot::load_checkpoint(self.pivot_cfg.clone(), &bytes)?;
            DynamicPivot::from_pivot(pivot, self.policy)
        };
        if let Some(dir) = &self.checkpoint_dir {
            if !bytes.is_empty() {
                checkpoint::write_generation(dir, self.idx, generation, &bytes)?;
            }
        }
        if let Some(w) = &mut self.wal {
            w.reset()
                .map_err(|e| Error::Io(format!("shard {} wal reset: {e}", self.idx)))?;
        }
        self.engine = engine;
        self.engine.pivot_mut().set_metrics(self.engine_metrics.clone());
        self.generation = generation;
        self.ops_since_checkpoint = 0;
        self.trace
            .push("repl_bootstrap", format!("generation {generation}"));
        self.publish_snapshot();
        Ok(self.repl_cursor())
    }

    /// Follower side: append each shipped record to the local WAL
    /// (reproducing the leader's bytes exactly), then apply it through
    /// idempotent replay — a duplicate from a resubscribe overlap is a
    /// no-op, same as WAL-tail replay after a crash.
    fn repl_apply(&mut self, records: &[u8]) -> Result<ReplCursor> {
        let (payloads, consumed) = wal::split_records(records);
        if consumed != records.len() {
            return Err(Error::Codec(format!(
                "shard {}: replication frame carried {} undecodable trailing bytes",
                self.idx,
                records.len() - consumed
            )));
        }
        let mut applied = false;
        for payload in payloads {
            let op = ReplayOp::decode(payload)?;
            if let Some(w) = &mut self.wal {
                w.append(payload)
                    .map_err(|e| Error::Io(format!("shard {} wal append: {e}", self.idx)))?;
            }
            // Same error policy as rebuild(): a record the engine
            // rejects is logged and skipped, not fatal — the leader
            // already applied (or skipped) it.
            if let Err(e) = replay_op(&mut self.engine, &op) {
                eprintln!(
                    "pivotd: shard {}: replicated op rejected (skipped): {e}",
                    self.idx
                );
            }
            self.ops_since_checkpoint += 1;
            applied = true;
        }
        if applied {
            self.publish_snapshot();
        }
        Ok(self.repl_cursor())
    }

    fn repl_cursor(&self) -> ReplCursor {
        ReplCursor {
            generation: self.generation,
            wal_len: self.wal.as_ref().map_or(0, Wal::len),
            ops: self.ops_since_checkpoint,
        }
    }

    fn remove_doc(&mut self, doc: DocId) -> Response {
        match self.mutate(ReplayOp::RemoveDoc(doc)) {
            Ok(Applied::Removed(n)) => Response::Removed(n),
            Ok(_) => internal_shape_error(),
            Err(e) => Response::from_error(&e),
        }
    }

    fn stats(&mut self) -> Response {
        self.sync_gauges();
        let pivot = self.engine.pivot();
        Response::Stats(ServeStats {
            shards: vec![ShardStats {
                shard: self.idx as u32,
                sources: pivot.sources().len() as u32,
                queue_depth: self.queue.len() as u32,
                queue_capacity: self.queue.capacity() as u32,
                stories: pivot.story_count() as u64,
                snippets: pivot.store().len() as u64,
                ingested: self.ingested,
                queries: self.queries.load(Ordering::Relaxed),
                busy_rejections: self.busy.load(Ordering::Relaxed),
                ingest_count: self.hist.count(),
                ingest_p50_ns: self.hist.percentile(0.50),
                ingest_p95_ns: self.hist.percentile(0.95),
                ingest_p99_ns: self.hist.percentile(0.99),
                wal_bytes: self.wal.as_ref().map_or(0, |w| w.len()),
                last_checkpoint_age_ops: self.ops_since_checkpoint,
                restarts: self.restarts,
                quarantined: self.quarantined,
            }],
        })
    }

    fn drain(&mut self) -> Response {
        self.trace.push("drain", String::new());
        self.engine.flush();
        // Flushing can realign stories; publish so late readers see
        // the final partition.
        self.publish_snapshot();
        // A replica's durable state is already exactly the leader's
        // checkpoint + WAL copy; writing a local generation would
        // desync the replication cursor.
        if !self.replica && self.checkpoint_dir.is_some() {
            if let Err(e) = self.checkpoint_now() {
                return Response::Error {
                    code: 7,
                    message: format!("shard {} checkpoint failed: {e}", self.idx),
                };
            }
        }
        Response::ShutdownAck
    }
}

/// Recovery-side apply: same idempotent semantics as [`replay_op`],
/// plus the poison hook so an injected panic reproduces during replay.
fn replay_with_poison(engine: &mut DynamicPivot, op: &ReplayOp) -> Result<bool> {
    poison_check(op);
    replay_op(engine, op)
}

fn internal_shape_error() -> Response {
    Response::Error {
        code: 6,
        message: "internal: mutation produced a mismatched result shape".into(),
    }
}

/// Expected queue drain time as a retry-after hint, in milliseconds:
/// `depth × ewma_ns`, clamped to `[floor_ms, max(10s, floor_ms)]`.
/// A zero EWMA (no ingest observed yet) degenerates to the floor.
fn retry_hint(depth: usize, ewma_ns: u64, floor_ms: u32) -> u32 {
    let est_ms = (depth as u64).saturating_mul(ewma_ns) / 1_000_000;
    let cap = 10_000u64.max(floor_ms as u64);
    est_ms.max(floor_ms as u64).min(cap) as u32
}
