//! End-to-end replication: a `pivotd --replica` follower must bootstrap
//! from an in-process leader, tail its WAL to the exact same story
//! partition, redirect writes with NOT_LEADER, expose replication lag,
//! and — after `kill -9` mid-tail — converge again on restart.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use storypivot_gen::{Corpus, CorpusBuilder, GenConfig};
use storypivot_serve::client::Client;
use storypivot_serve::proto::StorySummary;
use storypivot_serve::server::{serve, ServerConfig, ServerHandle};
use storypivot_types::Error;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("storypivot-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the real pivotd binary as a follower of `leader` and wait for
/// its port file. The caller owns reaping.
#[allow(clippy::zombie_processes)]
fn spawn_replica(leader: SocketAddr, dirs: &Path, shards: &str) -> (Child, SocketAddr) {
    let port_file = dirs.join("port");
    let _ = std::fs::remove_file(&port_file);
    let wal = dirs.join("wal");
    let ckpt = dirs.join("ckpt");
    std::fs::create_dir_all(&wal).unwrap();
    std::fs::create_dir_all(&ckpt).unwrap();
    let mut child = Command::new(env!("CARGO_BIN_EXE_pivotd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            port_file.to_str().unwrap(),
            "--replica",
            "--leader",
            &leader.to_string(),
            "--shards",
            shards,
            "--align-every",
            "0",
            "--wal-dir",
            wal.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn replica pivotd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(raw) = std::fs::read_to_string(&port_file) {
            if let Ok(port) = raw.trim().parse::<u16>() {
                return (child, SocketAddr::from(([127, 0, 0, 1], port)));
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("replica pivotd did not write its port file");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// An in-process leader with WAL + checkpoints in `dirs`, flush-only so
/// partitions compare exactly.
fn spawn_leader(dirs: &Path, shards: usize) -> ServerHandle {
    let wal = dirs.join("wal");
    let ckpt = dirs.join("ckpt");
    std::fs::create_dir_all(&wal).unwrap();
    std::fs::create_dir_all(&ckpt).unwrap();
    serve(
        "127.0.0.1:0",
        ServerConfig {
            shards,
            align_every: 0,
            wal_dir: Some(wal),
            checkpoint_dir: Some(ckpt),
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

fn partition_of_summaries(stories: &[StorySummary]) -> BTreeMap<u32, Vec<u32>> {
    stories
        .iter()
        .map(|s| {
            let mut members: Vec<u32> = s.members.iter().map(|m| m.raw()).collect();
            members.sort_unstable();
            (s.id.raw(), members)
        })
        .collect()
}

fn corpus(seed: u64, events: usize) -> Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_seed(seed)
            .with_sources(4)
            .with_target_snippets(events),
    )
    .build()
}

fn ingest_slice(client: &mut Client, corpus: &Corpus, range: std::ops::Range<usize>) {
    for snippet in &corpus.snippets[range] {
        client
            .ingest_backoff(snippet, Default::default())
            .expect("acked ingest");
    }
}

fn register_sources(client: &mut Client, corpus: &Corpus) {
    for source in &corpus.sources {
        let got = client
            .add_source(&source.name, source.kind, source.typical_lag)
            .unwrap();
        assert_eq!(got, source.id, "fresh leader must allocate corpus ids");
    }
}

/// Poll the follower until its served partition equals `want`.
fn await_convergence(addr: SocketAddr, want: &BTreeMap<u32, Vec<u32>>) {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut client = Client::connect(addr).unwrap();
    loop {
        let got = partition_of_summaries(&client.query_stories().unwrap());
        if &got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica never converged: {} stories served, want {}",
            got.len(),
            want.len()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn replica_converges_redirects_writes_and_reports_lag() {
    let ldir = scratch("live-leader");
    let rdir = scratch("live-replica");
    let corpus = corpus(21, 300);

    let leader = spawn_leader(&ldir, 2);
    let leader_addr = leader.addr();
    let mut lc = Client::connect(leader_addr).unwrap();
    register_sources(&mut lc, &corpus);
    let half = corpus.snippets.len() / 2;
    ingest_slice(&mut lc, &corpus, 0..half);

    // The follower bootstraps from a leader that already has state.
    let (mut child, replica_addr) = spawn_replica(leader_addr, &rdir, "2");
    let want = partition_of_summaries(&lc.query_stories().unwrap());
    await_convergence(replica_addr, &want);

    // Keep ingesting while the follower tails live.
    ingest_slice(&mut lc, &corpus, half..corpus.snippets.len());
    let want = partition_of_summaries(&lc.query_stories().unwrap());
    await_convergence(replica_addr, &want);

    // Writes are redirected, and the redirect names the leader.
    let mut rc = Client::connect(replica_addr).unwrap();
    match rc.ingest(&corpus.snippets[0]) {
        Err(Error::NotLeader { leader_addr: got }) => {
            assert_eq!(got, leader_addr.to_string(), "redirect must name the leader")
        }
        other => panic!("replica must redirect writes, got {other:?}"),
    }
    match rc.add_source("late", corpus.sources[0].kind, 0) {
        Err(Error::NotLeader { .. }) => {}
        other => panic!("replica must redirect ADD_SOURCE, got {other:?}"),
    }

    // Replication lag is exported per shard; after convergence it reads
    // zero ops behind on both shards.
    let text = rc.metrics().unwrap();
    for shard in 0..2 {
        let needle = format!("storypivot_replica_lag_ops{{shard=\"{shard}\"}}");
        let line = text
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("missing {needle} in exposition:\n{text}"));
        assert!(line.ends_with(" 0"), "converged replica must report zero lag: {line}");
    }

    rc.shutdown().unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "replica shutdown must exit 0");
    lc.shutdown().unwrap();
    leader.join();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn replica_killed_mid_tail_converges_after_restart() {
    let ldir = scratch("kill-leader");
    let rdir = scratch("kill-replica");
    let corpus = corpus(23, 300);

    let leader = spawn_leader(&ldir, 2);
    let leader_addr = leader.addr();
    let mut lc = Client::connect(leader_addr).unwrap();
    register_sources(&mut lc, &corpus);
    let third = corpus.snippets.len() / 3;
    ingest_slice(&mut lc, &corpus, 0..third);

    // Start the follower and let it reach the first third, so the kill
    // lands after bootstrap with real tailing state on disk.
    let (mut child, replica_addr) = spawn_replica(leader_addr, &rdir, "2");
    let want = partition_of_summaries(&lc.query_stories().unwrap());
    await_convergence(replica_addr, &want);

    // SIGKILL the follower while the leader keeps moving: no drain, no
    // checkpoint — its next life starts from local WAL repair.
    child.kill().unwrap();
    let _ = child.wait();
    ingest_slice(&mut lc, &corpus, third..corpus.snippets.len());

    let (mut child2, replica_addr2) = spawn_replica(leader_addr, &rdir, "2");
    let want = partition_of_summaries(&lc.query_stories().unwrap());
    await_convergence(replica_addr2, &want);

    let mut rc = Client::connect(replica_addr2).unwrap();
    rc.shutdown().unwrap();
    let status = child2.wait().unwrap();
    assert!(status.success());
    lc.shutdown().unwrap();
    leader.join();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&rdir);
}
