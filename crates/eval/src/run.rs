//! The experiment runner: a corpus + a configuration → timing and
//! quality numbers (the two panels of the paper's Figure 7).

use std::time::Instant;

use storypivot_core::config::PivotConfig;
use storypivot_core::pivot::StoryPivot;
use storypivot_gen::Corpus;
use storypivot_types::SourceId;

use crate::metrics::{pairwise_counts, Clustering, PairCounts, Scores};
use crate::timing::LatencyRecorder;

/// What to run and measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Run story alignment after identification.
    pub align: bool,
    /// Run story refinement after alignment.
    pub refine: bool,
    /// Feed snippets in delivery order (`true`, realistic out-of-order
    /// stream) or re-sorted by event time (`false`).
    pub delivery_order: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            align: true,
            refine: false,
            delivery_order: true,
        }
    }
}

/// Measurements from one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Number of ingested snippets.
    pub snippets: usize,
    /// Total identification (ingest) wall time in nanoseconds.
    pub ingest_nanos: u64,
    /// Mean per-event identification time in nanoseconds — the paper's
    /// "Execution Time" axis.
    pub per_event_nanos: f64,
    /// Median per-event identification time in nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile per-event identification time in nanoseconds
    /// (tail latency matters for the near-real-time integration goal of
    /// §2.4).
    pub p95_nanos: u64,
    /// Alignment wall time in nanoseconds (0 when not run).
    pub align_nanos: u64,
    /// Refinement wall time in nanoseconds (0 when not run).
    pub refine_nanos: u64,
    /// Total snippet comparisons performed during identification.
    pub comparisons: u64,
    /// Number of per-source stories identified.
    pub stories: usize,
    /// Number of integrated global stories (0 when alignment not run).
    pub global_stories: usize,
    /// Identification quality: micro-averaged per-source pairwise
    /// scores against the ground truth.
    pub si_scores: Scores,
    /// Alignment quality: pairwise scores of the global clustering
    /// against the ground truth (None when alignment not run).
    pub sa_scores: Option<Scores>,
    /// Refinement moves applied (0 when refinement not run).
    pub refine_moves: usize,
}

impl RunResult {
    /// Identification F-measure (Figure 7, "SI method" series).
    pub fn si_f1(&self) -> f64 {
        self.si_scores.f1
    }

    /// Alignment F-measure (Figure 7, "SA method" series).
    pub fn sa_f1(&self) -> f64 {
        self.sa_scores.map(|s| s.f1).unwrap_or(0.0)
    }
}

/// Run one experiment: build a pivot with `config`, stream the corpus
/// through it, optionally align and refine, and score against ground
/// truth.
pub fn run(corpus: &Corpus, config: PivotConfig, opts: RunOptions) -> RunResult {
    let mut pivot = StoryPivot::new(config);
    for src in &corpus.sources {
        let id = pivot.add_source_with_lag(src.name.clone(), src.kind, src.typical_lag);
        assert_eq!(id, src.id, "corpus sources must be dense from 0");
    }

    let stream = if opts.delivery_order {
        corpus.snippets.clone()
    } else {
        corpus.snippets_by_event_time()
    };

    // ---- identification ------------------------------------------------
    let mut comparisons = 0u64;
    let mut latency = LatencyRecorder::new();
    let start = Instant::now();
    for s in stream {
        let d = latency.time(|| pivot.ingest_detailed(s).expect("corpus snippets are valid"));
        comparisons += d.compared as u64;
    }
    let ingest_nanos = start.elapsed().as_nanos() as u64;
    let snippets = corpus.len();

    // ---- alignment / refinement -----------------------------------------
    let mut align_nanos = 0u64;
    let mut refine_nanos = 0u64;
    let mut refine_moves = 0usize;
    if opts.align {
        let t = Instant::now();
        pivot.align();
        align_nanos = t.elapsed().as_nanos() as u64;
        if opts.refine {
            let t = Instant::now();
            let report = pivot.refine();
            refine_nanos = t.elapsed().as_nanos() as u64;
            refine_moves = report.move_count();
        }
    }

    // ---- quality ------------------------------------------------------------
    let si_scores = identification_scores(&pivot, corpus);
    let sa_scores = if opts.align {
        Some(alignment_scores(&pivot, corpus))
    } else {
        None
    };

    RunResult {
        snippets,
        ingest_nanos,
        per_event_nanos: if snippets > 0 {
            ingest_nanos as f64 / snippets as f64
        } else {
            0.0
        },
        p50_nanos: latency.p50_nanos(),
        p95_nanos: latency.p95_nanos(),
        align_nanos,
        refine_nanos,
        comparisons,
        stories: pivot.story_count(),
        global_stories: pivot.global_stories().len(),
        si_scores,
        sa_scores,
        refine_moves,
    }
}

/// Micro-averaged per-source identification quality: within each source,
/// the predicted story partition is compared against the ground truth
/// restricted to that source; pair counts sum across sources.
pub fn identification_scores(pivot: &StoryPivot, corpus: &Corpus) -> Scores {
    let mut total = PairCounts::default();
    for src in &corpus.sources {
        total.add(identification_counts_for(pivot, corpus, src.id));
    }
    total.scores()
}

fn identification_counts_for(pivot: &StoryPivot, corpus: &Corpus, source: SourceId) -> PairCounts {
    let mut pred = Clustering::new();
    let mut truth = Clustering::new();
    for s in &corpus.snippets {
        if s.source != source {
            continue;
        }
        // Snippets removed mid-run (none in the standard harness) simply
        // drop out of the evaluation.
        let Some(story) = pivot.story_of(s.id) else { continue };
        let Some(label) = corpus.truth.label_of(s.id) else { continue };
        pred.assign(s.id.raw() as u64, story.raw() as u64);
        truth.assign(s.id.raw() as u64, label as u64);
    }
    pairwise_counts(&pred, &truth)
}

/// The predicted and reference clusterings used by
/// [`alignment_scores`] — exposed so callers can compute additional
/// metrics (NMI, B-Cubed, ARI, purity) on the same data.
pub fn alignment_clusterings(pivot: &StoryPivot, corpus: &Corpus) -> (Clustering, Clustering) {
    let mut pred = Clustering::new();
    let mut truth = Clustering::new();
    for s in &corpus.snippets {
        let Some(g) = pivot.global_of(s.id) else { continue };
        let Some(label) = corpus.truth.label_of(s.id) else { continue };
        pred.assign(s.id.raw() as u64, g.raw() as u64);
        truth.assign(s.id.raw() as u64, label as u64);
    }
    (pred, truth)
}

/// Alignment quality: the global story partition over *all* snippets
/// against the (cross-source) ground truth.
pub fn alignment_scores(pivot: &StoryPivot, corpus: &Corpus) -> Scores {
    let mut pred = Clustering::new();
    let mut truth = Clustering::new();
    for s in &corpus.snippets {
        let Some(g) = pivot.global_of(s.id) else { continue };
        let Some(label) = corpus.truth.label_of(s.id) else { continue };
        pred.assign(s.id.raw() as u64, g.raw() as u64);
        truth.assign(s.id.raw() as u64, label as u64);
    }
    pairwise_counts(&pred, &truth).scores()
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_gen::{CorpusBuilder, GenConfig};
    use storypivot_types::DAY;

    fn corpus() -> Corpus {
        CorpusBuilder::new(GenConfig {
            sources: 4,
            entities: 120,
            terms: 400,
            stories: 10,
            events_per_story: 8.0,
            ..GenConfig::default()
        })
        .build()
    }

    #[test]
    fn temporal_run_produces_sensible_numbers() {
        let c = corpus();
        let r = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
        assert_eq!(r.snippets, c.len());
        assert!(r.per_event_nanos > 0.0);
        assert!(r.stories > 0);
        assert!(r.global_stories > 0);
        assert!(r.global_stories <= r.stories);
        assert!(r.si_f1() > 0.4, "SI F1 too low: {}", r.si_f1());
        assert!(r.sa_f1() > 0.3, "SA F1 too low: {}", r.sa_f1());
        assert!(r.comparisons > 0);
    }

    #[test]
    fn complete_mode_does_more_comparisons() {
        let c = corpus();
        let temporal = run(&c, PivotConfig::temporal(14 * DAY), RunOptions::default());
        let complete = run(&c, PivotConfig::complete(), RunOptions::default());
        assert!(
            complete.comparisons > temporal.comparisons,
            "complete {} vs temporal {}",
            complete.comparisons,
            temporal.comparisons
        );
    }

    #[test]
    fn skipping_alignment_skips_sa_metrics() {
        let c = corpus();
        let r = run(
            &c,
            PivotConfig::default(),
            RunOptions {
                align: false,
                refine: false,
                delivery_order: true,
            },
        );
        assert!(r.sa_scores.is_none());
        assert_eq!(r.global_stories, 0);
        assert_eq!(r.align_nanos, 0);
    }

    #[test]
    fn refinement_runs_when_requested() {
        let c = corpus();
        let r = run(
            &c,
            PivotConfig::default(),
            RunOptions {
                align: true,
                refine: true,
                delivery_order: true,
            },
        );
        assert!(r.sa_scores.is_some());
        // Moves may be zero on an easy corpus; the pass must at least run.
        assert!(r.refine_nanos > 0);
    }

    #[test]
    fn event_time_order_at_least_matches_delivery_order_quality() {
        let c = corpus();
        let delivery = run(&c, PivotConfig::default(), RunOptions::default());
        let in_order = run(
            &c,
            PivotConfig::default(),
            RunOptions {
                delivery_order: false,
                ..RunOptions::default()
            },
        );
        // In-order ingestion can't be dramatically worse.
        assert!(in_order.si_f1() > delivery.si_f1() - 0.15);
    }
}
