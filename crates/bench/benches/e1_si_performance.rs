//! E1 — identification cost per execution mode (Fig 7, performance).
//!
//! Benches full-corpus ingestion (identification only) for temporal vs
//! complete matching at two corpus sizes; complete should scale
//! super-linearly, temporal ~linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use storypivot_bench::{corpus_constant_density, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_identification");
    group.sample_size(10);
    for &n in &[400usize, 1_200] {
        let corpus = corpus_constant_density(n, 8, 7);
        group.throughput(Throughput::Elements(corpus.len() as u64));
        for (name, cfg) in [
            ("temporal", PivotConfig::temporal(OMEGA)),
            ("complete", PivotConfig::complete()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, corpus.len()),
                &corpus,
                |b, corpus| {
                    b.iter(|| {
                        let mut pivot = pivot_for(corpus, cfg.clone());
                        for s in &corpus.snippets {
                            pivot.ingest(s.clone()).unwrap();
                        }
                        pivot.story_count()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
