//! Count-Min sketch: approximate frequency counting in fixed space.
//!
//! Estimates item counts with one-sided error: the estimate never
//! undercounts, and overcounts by at most `ε·N` with probability
//! `1 - δ`, where `width = ⌈e/ε⌉` and `depth = ⌈ln(1/δ)⌉`. Used for
//! story term-frequency digests when exact per-story counting would not
//! fit memory at GDELT scale.

use crate::hash::HashFamily;

/// A Count-Min sketch over `u64` items.
#[derive(Debug, Clone, PartialEq)]
pub struct CountMin {
    width: usize,
    depth: usize,
    family: HashFamily,
    rows: Vec<u64>, // depth × width, row-major
    total: u64,
}

impl CountMin {
    /// Create a sketch with explicit dimensions. `seed` fixes the hash
    /// family so that sketches with equal parameters can merge.
    pub fn new(seed: u64, width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "dimensions must be positive");
        CountMin {
            width,
            depth,
            family: HashFamily::new(seed, depth),
            rows: vec![0; width * depth],
            total: 0,
        }
    }

    /// Create a sketch sized for error `epsilon` (relative to total
    /// count) with failure probability `delta`.
    pub fn with_error(seed: u64, epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(seed, width, depth)
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Sketch depth (number of rows / hash functions).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total count added across all items.
    pub fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    fn cell(&self, row: usize, item: u64) -> usize {
        row * self.width + (self.family.hash(row, item) % self.width as u64) as usize
    }

    /// Add `count` occurrences of `item`.
    pub fn add(&mut self, item: u64, count: u64) {
        for row in 0..self.depth {
            let c = self.cell(row, item);
            self.rows[c] = self.rows[c].saturating_add(count);
        }
        self.total = self.total.saturating_add(count);
    }

    /// Estimate the count of `item` (never underestimates).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.rows[self.cell(row, item)])
            .min()
            .unwrap_or(0)
    }

    /// Merge another sketch with identical parameters into this one.
    ///
    /// # Panics
    /// Panics if dimensions or hash families differ — merging
    /// incompatible sketches would silently corrupt estimates.
    pub fn merge(&mut self, other: &CountMin) {
        assert_eq!(self.width, other.width, "width mismatch");
        assert_eq!(self.depth, other.depth, "depth mismatch");
        assert_eq!(self.family, other.family, "hash family mismatch");
        for (a, &b) in self.rows.iter_mut().zip(&other.rows) {
            *a = a.saturating_add(b);
        }
        self.total = self.total.saturating_add(other.total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cm = CountMin::new(1, 64, 4);
        for i in 0..200u64 {
            cm.add(i, i % 7 + 1);
        }
        for i in 0..200u64 {
            assert!(cm.estimate(i) > i % 7, "item {i} underestimated");
        }
    }

    #[test]
    fn exact_when_sparse() {
        let mut cm = CountMin::new(2, 1024, 4);
        cm.add(42, 10);
        cm.add(7, 3);
        assert_eq!(cm.estimate(42), 10);
        assert_eq!(cm.estimate(7), 3);
        assert_eq!(cm.estimate(999), 0);
        assert_eq!(cm.total(), 13);
    }

    #[test]
    fn error_bound_holds_statistically() {
        // ε = e/width = e/512 ≈ 0.0053; N = 10_000 → max overcount ≈ 53
        // per row with high probability. Check a generous bound.
        let mut cm = CountMin::new(3, 512, 5);
        for i in 0..10_000u64 {
            cm.add(i % 1000, 1);
        }
        for i in 0..1000u64 {
            let est = cm.estimate(i);
            assert!(est >= 10);
            assert!(est <= 10 + 200, "item {i} overcounted: {est}");
        }
    }

    #[test]
    fn with_error_sizes_correctly() {
        let cm = CountMin::with_error(0, 0.01, 0.01);
        assert!(cm.width() >= 272); // e/0.01 ≈ 271.8
        assert!(cm.depth() >= 4); // ln(100) ≈ 4.6
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CountMin::new(9, 128, 4);
        let mut b = CountMin::new(9, 128, 4);
        a.add(1, 5);
        b.add(1, 7);
        b.add(2, 1);
        a.merge(&b);
        assert!(a.estimate(1) >= 12);
        assert!(a.estimate(2) >= 1);
        assert_eq!(a.total(), 13);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn merge_rejects_incompatible() {
        let mut a = CountMin::new(1, 64, 4);
        let b = CountMin::new(1, 128, 4);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_width_rejected() {
        CountMin::new(0, 0, 4);
    }
}
