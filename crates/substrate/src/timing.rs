//! A micro-benchmark timer.
//!
//! Criterion's role in this workspace was modest — run a closure many
//! times, report robust per-iteration statistics — so this module
//! provides exactly that: warmup, auto-calibrated batching (so
//! nanosecond-scale closures are timed in batches long enough for the
//! clock to resolve), and a median/p95/min summary printed as a
//! markdown table.
//!
//! Bench targets (`crates/bench/benches/*.rs`, built with
//! `harness = false`) construct a [`BenchGroup`], call
//! [`BenchGroup::bench`] per configuration, and [`BenchGroup::finish`]
//! to print. `cargo bench` passes `--bench`; a `--quick` argument or
//! `STORYPIVOT_BENCH_QUICK=1` cuts sample counts for smoke runs.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Statistics over per-iteration wall-clock times, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Total timed iterations.
    pub iters: u64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// Median ns/iter (over batch samples).
    pub median_ns: f64,
    /// 95th-percentile ns/iter.
    pub p95_ns: f64,
    /// Fastest observed ns/iter.
    pub min_ns: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Measurement options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Number of timed samples (each sample is a batch of iterations).
    pub samples: u32,
    /// Wall-clock budget spent warming up.
    pub warmup: Duration,
    /// Target duration of one timed batch; the batch's iteration count
    /// is calibrated during warmup so a batch takes roughly this long.
    pub batch_target: Duration,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            samples: 20,
            warmup: Duration::from_millis(200),
            batch_target: Duration::from_millis(10),
        }
    }
}

impl Options {
    /// Reduced settings for smoke runs (`--quick`).
    pub fn quick() -> Self {
        Options {
            samples: 5,
            warmup: Duration::from_millis(20),
            batch_target: Duration::from_millis(2),
        }
    }
}

/// Measure `f`, returning per-iteration statistics. The closure's
/// return value is passed through [`black_box`] so the work is not
/// optimized away.
pub fn measure<T>(opts: &Options, mut f: impl FnMut() -> T) -> Stats {
    // Warmup + calibration: run until the warmup budget is spent,
    // tracking how long one call takes.
    let warmup_start = Instant::now();
    let mut calls = 0u64;
    loop {
        black_box(f());
        calls += 1;
        if warmup_start.elapsed() >= opts.warmup {
            break;
        }
    }
    let per_call = warmup_start.elapsed().as_nanos() as f64 / calls as f64;
    let batch = ((opts.batch_target.as_nanos() as f64 / per_call.max(1.0)).ceil() as u64).max(1);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(opts.samples as usize);
    let mut total_iters = 0u64;
    for _ in 0..opts.samples {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = t.elapsed().as_nanos() as f64;
        samples_ns.push(elapsed / batch as f64);
        total_iters += batch;
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    Stats {
        iters: total_iters,
        mean_ns: mean,
        median_ns: percentile(&samples_ns, 0.5),
        p95_ns: percentile(&samples_ns, 0.95),
        min_ns: samples_ns.first().copied().unwrap_or(0.0),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of measurements printed as one table.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    opts: Options,
    rows: Vec<(String, Stats)>,
}

impl BenchGroup {
    /// A group configured from the process arguments/environment:
    /// `--quick` (or `STORYPIVOT_BENCH_QUICK=1`) selects
    /// [`Options::quick`]. Unrecognized arguments (such as cargo's
    /// `--bench`) are ignored.
    pub fn from_env(name: &str) -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("STORYPIVOT_BENCH_QUICK").is_ok_and(|v| v != "0");
        let opts = if quick { Options::quick() } else { Options::default() };
        Self::with_options(name, opts)
    }

    /// A group with explicit options.
    pub fn with_options(name: &str, opts: Options) -> Self {
        println!("\n## bench group: {name}\n");
        BenchGroup {
            name: name.to_string(),
            opts,
            rows: Vec::new(),
        }
    }

    /// Override the options for subsequent [`BenchGroup::bench`] calls.
    pub fn set_options(&mut self, opts: Options) {
        self.opts = opts;
    }

    /// Measure one labelled configuration.
    pub fn bench<T>(&mut self, label: &str, f: impl FnMut() -> T) -> &Stats {
        let stats = measure(&self.opts, f);
        eprintln!(
            "  {}/{label}: median {} (p95 {}, {} iters)",
            self.name,
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.iters
        );
        self.rows.push((label.to_string(), stats));
        &self.rows.last().expect("just pushed").1
    }

    /// Print the summary table. Call once at the end of `main`.
    pub fn finish(self) {
        println!("| benchmark | median | p95 | mean | min | iters |");
        println!("|---|---|---|---|---|---|");
        for (label, s) in &self.rows {
            println!(
                "| {}/{label} | {} | {} | {} | {} | {} |",
                self.name,
                fmt_ns(s.median_ns),
                fmt_ns(s.p95_ns),
                fmt_ns(s.mean_ns),
                fmt_ns(s.min_ns),
                s.iters
            );
        }
        println!();
    }
}

// ---- latency histogram ------------------------------------------------

/// Sub-bucket resolution bits: 16 sub-buckets per power of two, i.e.
/// recorded values are resolved to within ~6%.
const HIST_SUB_BITS: u32 = 4;
const HIST_LINEAR_MAX: u64 = 1 << (HIST_SUB_BITS + 1); // 0..32 exact
const HIST_BUCKETS: usize =
    HIST_LINEAR_MAX as usize + ((64 - HIST_SUB_BITS as usize) << HIST_SUB_BITS);

/// A fixed-size log-bucketed histogram for latency recording on hot
/// paths: [`Histogram::record`] is a couple of shifts plus one counter
/// increment, memory is constant (~8 KiB), and percentile queries walk
/// the buckets. Values are dimensionless `u64`s; the serving layer
/// records nanoseconds.
///
/// Values below 32 land in exact buckets; larger values are resolved to
/// 16 sub-buckets per power of two (≲6% relative error), the same
/// trade-off HdrHistogram makes at low precision.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(0.50))
            .field("p99", &self.percentile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn hist_bucket(v: u64) -> usize {
    if v < HIST_LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - HIST_SUB_BITS;
    let sub = ((v >> shift) & ((1 << HIST_SUB_BITS) - 1)) as usize;
    HIST_LINEAR_MAX as usize + ((((msb - HIST_SUB_BITS) as usize) << HIST_SUB_BITS) | sub)
}

/// Lower edge of a bucket (inverse of [`hist_bucket`]).
fn hist_bucket_low(idx: usize) -> u64 {
    if idx < HIST_LINEAR_MAX as usize {
        return idx as u64;
    }
    let rel = idx - HIST_LINEAR_MAX as usize;
    let msb = (rel >> HIST_SUB_BITS) as u32 + HIST_SUB_BITS;
    let sub = (rel & ((1 << HIST_SUB_BITS) - 1)) as u64;
    let shift = msb - HIST_SUB_BITS;
    ((1 << HIST_SUB_BITS) | sub) << shift
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[hist_bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` (bucket lower edge; 0 when
    /// empty). `q = 0.5` is the median, `q = 0.99` the p99.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return hist_bucket_low(idx).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one (for per-thread recorders).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod hist_tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev = 0usize;
        for v in [0u64, 1, 15, 31, 32, 33, 63, 64, 1000, 1 << 20, u64::MAX] {
            let b = hist_bucket(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            assert!(b < HIST_BUCKETS);
            assert!(hist_bucket_low(b) <= v, "low edge of {b} above {v}");
            prev = b;
        }
        // Every small value is exact.
        for v in 0..HIST_LINEAR_MAX {
            assert_eq!(hist_bucket_low(hist_bucket(v)), v);
        }
    }

    #[test]
    fn percentiles_order_and_bound_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        // ≲6.25% relative bucket error plus the lower-edge convention.
        assert!((4400..=5000).contains(&p50), "p50 {p50}");
        assert!((8800..=9500).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            let h = if v % 2 == 0 { &mut a } else { &mut b };
            h.record(v * 17 % 4096);
            c.record(v * 17 % 4096);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.max(), c.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), c.percentile(q));
        }
    }

    /// Satellite check for the serving layer's merged cross-shard
    /// percentiles: merging K randomized per-shard histograms must
    /// agree *exactly* with one histogram fed the combined stream —
    /// merge is a bucket-wise add, so quantiles, count, sum and max
    /// cannot drift, whatever the shard split or value distribution.
    #[test]
    fn merge_preserves_quantiles_for_random_shard_splits() {
        use crate::prop;
        use crate::rng::RngExt;
        prop::run(48, |rng| {
            let shards = rng.random_range(1..=6usize);
            let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
            let mut combined = Histogram::new();
            let n = rng.random_range(1..=800usize);
            for _ in 0..n {
                // Mixed magnitudes: exact linear range, mid buckets,
                // and huge values that stress the log buckets.
                let v = match rng.random_range(0..4u32) {
                    0 => rng.random_range(0..32u64),
                    1 => rng.random_range(0..10_000u64),
                    2 => rng.random_range(0..u32::MAX as u64),
                    _ => rng.random::<u64>() >> rng.random_range(0..16u32),
                };
                parts[rng.random_range(0..shards)].record(v);
                combined.record(v);
            }
            let mut merged = Histogram::new();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged.count(), combined.count());
            assert_eq!(merged.max(), combined.max());
            assert_eq!(merged.mean(), combined.mean());
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(
                    merged.percentile(q),
                    combined.percentile(q),
                    "quantile {q} drifted across a {shards}-way merge of {n} values"
                );
            }
        });
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_opts() -> Options {
        Options {
            samples: 4,
            warmup: Duration::from_millis(1),
            batch_target: Duration::from_micros(100),
        }
    }

    #[test]
    fn measure_produces_ordered_statistics() {
        let mut acc = 0u64;
        let stats = measure(&fast_opts(), || {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            acc
        });
        assert!(stats.iters > 0);
        assert!(stats.min_ns <= stats.median_ns + 1e-9);
        assert!(stats.median_ns <= stats.p95_ns + 1e-9);
        assert!(stats.mean_ns > 0.0);
    }

    #[test]
    fn slow_closures_get_small_batches() {
        let stats = measure(
            &Options {
                samples: 3,
                warmup: Duration::from_millis(1),
                batch_target: Duration::from_micros(1),
            },
            || std::thread::sleep(Duration::from_micros(200)),
        );
        // One iteration per batch: the sleep dominates the batch target.
        assert_eq!(stats.iters, 3);
        assert!(stats.median_ns >= 200_000.0, "median {}", stats.median_ns);
    }

    #[test]
    fn formatting_picks_sensible_units() {
        assert_eq!(fmt_ns(500.0), "500.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
    }
}
