//! E4 — alignment with exact centroid comparison vs MinHash sketches
//! (§2.4). Identification is done once per configuration in setup; the
//! measured region is a clone plus the alignment pass (alignment
//! mutates the pivot, so each iteration works on a fresh copy).

use storypivot_bench::{corpus_fixed_period, ingest_all, OMEGA};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;

fn main() {
    let corpus = corpus_fixed_period(1_000, 16, 17);
    let mut group = BenchGroup::from_env("e4_alignment");
    for (name, use_sketches, k) in [
        ("exact", false, 128usize),
        ("minhash_k64", true, 64),
        ("minhash_k256", true, 256),
    ] {
        let mut cfg = PivotConfig::temporal(OMEGA);
        cfg.align.use_sketches = use_sketches;
        cfg.sketch.minhash_k = k;
        let pivot = ingest_all(&corpus, cfg);
        group.bench(name, || {
            let mut p = pivot.clone();
            p.align();
            p.global_stories().len()
        });
    }
    group.finish();
}
