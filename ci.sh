#!/usr/bin/env bash
# Offline CI for the storypivot workspace.
#
# The whole point of the zero-dependency substrate is that this script
# passes on a machine with an EMPTY cargo registry and no network. Any
# step that tries to touch crates.io fails the run.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> build (release, all targets)"
cargo build --release --workspace --all-targets

echo "==> tests"
cargo test -q --workspace

echo "==> clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> smoke: bench harness e1 (quick)"
cargo run -p storypivot-bench --bin harness --release -- e1 --quick

echo "CI OK"
