//! Sparse weighted vectors over interned ids.
//!
//! Snippet content (entities, description terms) is modelled as a sparse
//! vector of `(id, weight)` pairs kept sorted by id. Sorted storage makes
//! the hot similarity kernels — dot product, Jaccard, weighted Jaccard —
//! single linear merges with no hashing and no allocation, which matters
//! because story identification evaluates millions of such comparisons.
//! The merge loops themselves live in [`crate::kernel`]; this type adds
//! the cached L2 norm so cosine never pays a full pass per call.

use std::fmt::Debug;

use crate::kernel;

/// A sparse vector of non-negative weights, sorted by key.
///
/// The vector caches its Euclidean norm. Invariant: `norm` always equals
/// `kernel::norm(&entries)` — every mutation recomputes it with that one
/// pure function (never incrementally), so two vectors with equal entry
/// lists carry bit-equal norms no matter what sequence of operations
/// produced them.
///
/// ```
/// use storypivot_types::sparse::SparseVec;
/// let a = SparseVec::from_pairs(vec![(2u32, 1.0), (1, 2.0), (2, 3.0)]);
/// assert_eq!(a.len(), 2);                 // duplicate keys are summed
/// assert_eq!(a.get(&2), Some(4.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseVec<K> {
    entries: Vec<(K, f32)>,
    norm: f64,
}

/// Equality is over the entry lists; the cached norm is a pure function
/// of the entries, so it cannot disagree between equal vectors.
impl<K: PartialEq> PartialEq for SparseVec<K> {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl<K: Copy + Ord + Debug> SparseVec<K> {
    /// The empty vector.
    pub const fn new() -> Self {
        SparseVec { entries: Vec::new(), norm: 0.0 }
    }

    /// Build from arbitrary pairs; duplicate keys are summed, zero or
    /// negative weights are dropped.
    pub fn from_pairs(mut pairs: Vec<(K, f32)>) -> Self {
        pairs.sort_unstable_by_key(|a| a.0);
        let mut entries: Vec<(K, f32)> = Vec::with_capacity(pairs.len());
        for (k, w) in pairs {
            match entries.last_mut() {
                Some((lk, lw)) if *lk == k => *lw += w,
                _ => entries.push((k, w)),
            }
        }
        entries.retain(|&(_, w)| w > 0.0);
        let norm = kernel::norm(&entries);
        SparseVec { entries, norm }
    }

    /// Build from keys with unit weight each (duplicates sum).
    pub fn from_keys<I: IntoIterator<Item = K>>(keys: I) -> Self {
        Self::from_pairs(keys.into_iter().map(|k| (k, 1.0)).collect())
    }

    /// Restore the norm invariant after `entries` changed.
    #[inline]
    fn renorm(&mut self) {
        self.norm = kernel::norm(&self.entries);
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight for `key`, if present.
    pub fn get(&self, key: &K) -> Option<f32> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `key` has a non-zero weight.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterate `(key, weight)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }

    /// Add `weight` to `key` (inserting if absent). `O(n)` worst case.
    pub fn add(&mut self, key: K, weight: f32) {
        match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.entries[i].1 += weight,
            Err(i) => self.entries.insert(i, (key, weight)),
        }
        self.renorm();
    }

    /// Drop every entry, keeping the allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.norm = 0.0;
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w as f64).sum()
    }

    /// Euclidean norm (cached; maintained through every mutation).
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Dot product via linear merge of the sorted entry lists.
    pub fn dot(&self, other: &Self) -> f64 {
        kernel::dot(&self.entries, &other.entries)
    }

    /// Cosine similarity in `[0,1]`; 0 when either vector is empty.
    pub fn cosine(&self, other: &Self) -> f64 {
        kernel::cosine(&self.entries, self.norm, &other.entries, other.norm)
    }

    /// Set Jaccard over the key sets, ignoring weights.
    ///
    /// Both empty ⇒ 0 (two contentless snippets carry no evidence of
    /// referring to the same story).
    pub fn jaccard(&self, other: &Self) -> f64 {
        kernel::jaccard(&self.entries, &other.entries)
    }

    /// Weighted Jaccard: `Σ min(a,b) / Σ max(a,b)`.
    pub fn weighted_jaccard(&self, other: &Self) -> f64 {
        kernel::weighted_jaccard(&self.entries, &other.entries)
    }

    /// Accumulate `other` into `self` (element-wise addition).
    ///
    /// Runs in place: disjoint tails append, key-subset inputs add into
    /// the existing entries, and the general case merges backwards into
    /// reserved capacity — no fresh vector is allocated on any path
    /// (`reserve` grows the existing one only when capacity is short).
    pub fn merge_add(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.entries.clear();
            self.entries.extend_from_slice(&other.entries);
            self.norm = other.norm;
            return;
        }
        // Append fast path: all of `other` sorts after `self`.
        if self.entries.last().expect("non-empty").0 < other.entries[0].0 {
            self.entries.extend_from_slice(&other.entries);
            self.renorm();
            return;
        }
        // Subset fast path: every key of `other` already present — add
        // the weights in place, no entry moves at all.
        if is_key_subset(&other.entries, &self.entries) {
            let mut i = 0usize;
            for &(k, w) in &other.entries {
                while self.entries[i].0 != k {
                    i += 1;
                }
                self.entries[i].1 += w;
            }
            self.renorm();
            return;
        }
        // General case: backward in-place merge into the tail of the
        // (reserved) buffer. Write cursor `w` stays strictly ahead of
        // read cursor `i` while `j >= 0`, so nothing unread is clobbered.
        let n = self.entries.len();
        let m = other.entries.len();
        self.entries.reserve(m);
        let pad = self.entries[0];
        self.entries.resize(n + m, pad);
        let (mut i, mut j) = (n as isize - 1, m as isize - 1);
        let mut w = (n + m) as isize - 1;
        while i >= 0 && j >= 0 {
            let (ka, wa) = self.entries[i as usize];
            let (kb, wb) = other.entries[j as usize];
            self.entries[w as usize] = match ka.cmp(&kb) {
                std::cmp::Ordering::Greater => {
                    i -= 1;
                    (ka, wa)
                }
                std::cmp::Ordering::Less => {
                    j -= 1;
                    (kb, wb)
                }
                std::cmp::Ordering::Equal => {
                    i -= 1;
                    j -= 1;
                    (ka, wa + wb)
                }
            };
            w -= 1;
        }
        while j >= 0 {
            self.entries[w as usize] = other.entries[j as usize];
            j -= 1;
            w -= 1;
        }
        // Entries at [0..=i] are already in place; shared keys left a
        // gap of (w - i) duplicate slots to close.
        if w > i {
            self.entries.drain((i + 1) as usize..=(w as usize));
        }
        self.renorm();
    }

    /// Subtract `other` from `self`, dropping entries that reach ≤ 0
    /// (within a small epsilon to absorb float error).
    pub fn merge_sub(&mut self, other: &Self) {
        for &(k, w) in &other.entries {
            if let Ok(i) = self.entries.binary_search_by(|(ek, _)| ek.cmp(&k)) {
                self.entries[i].1 -= w;
            }
        }
        self.entries.retain(|&(_, w)| w > 1e-6);
        self.renorm();
    }

    /// Multiply every weight by `factor` (used for temporal decay).
    pub fn scale(&mut self, factor: f32) {
        for (_, w) in &mut self.entries {
            *w *= factor;
        }
        self.entries.retain(|&(_, w)| w > 1e-6);
        self.renorm();
    }

    /// The `k` heaviest entries, by descending weight (ties by key).
    pub fn top_k(&self, k: usize) -> Vec<(K, f32)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Expose the raw sorted entries.
    pub fn as_slice(&self) -> &[(K, f32)] {
        &self.entries
    }
}

/// Whether every key of `sub` occurs in `sup` (both sorted by key).
fn is_key_subset<K: Copy + Ord>(sub: &[(K, f32)], sup: &[(K, f32)]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut i = 0usize;
    'outer: for &(k, _) in sub {
        while i < sup.len() {
            match sup[i].0.cmp(&k) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl<K: Copy + Ord + Debug> FromIterator<(K, f32)> for SparseVec<K> {
    fn from_iter<I: IntoIterator<Item = (K, f32)>>(iter: I) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec<u32> {
        SparseVec::from_pairs(pairs.to_vec())
    }

    /// The norm cache must equal a from-scratch recomputation, bit for
    /// bit, after any operation.
    fn assert_norm_fresh(v: &SparseVec<u32>) {
        assert_eq!(v.norm().to_bits(), kernel::norm(v.as_slice()).to_bits());
    }

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let v = sv(&[(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.as_slice(), &[(1, 2.0), (3, 1.5)]);
        assert_norm_fresh(&v);
    }

    #[test]
    fn zero_and_negative_weights_are_dropped() {
        let v = sv(&[(1, 0.0), (2, -1.0), (3, 1.0)]);
        assert_eq!(v.len(), 1);
        assert!(v.contains(&3));
    }

    #[test]
    fn dot_product_matches_dense() {
        let a = sv(&[(1, 1.0), (2, 2.0), (5, 3.0)]);
        let b = sv(&[(2, 4.0), (5, 1.0), (9, 7.0)]);
        assert!((a.dot(&b) - (2.0 * 4.0 + 3.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn cosine_identity_and_orthogonal() {
        let a = sv(&[(1, 3.0), (2, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
        let b = sv(&[(7, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&SparseVec::new()), 0.0);
    }

    #[test]
    fn jaccard_counts_keys_only() {
        let a = sv(&[(1, 10.0), (2, 1.0)]);
        let b = sv(&[(2, 99.0), (3, 1.0)]);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(SparseVec::<u32>::new().jaccard(&SparseVec::new()), 0.0);
    }

    #[test]
    fn weighted_jaccard_known_value() {
        let a = sv(&[(1, 2.0), (2, 1.0)]);
        let b = sv(&[(1, 1.0), (3, 1.0)]);
        // min: 1 (key 1); max: 2 (key 1) + 1 (key 2) + 1 (key 3) = 4
        assert!((a.weighted_jaccard(&b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn merge_add_then_sub_round_trips() {
        let mut a = sv(&[(1, 1.0), (3, 2.0)]);
        let b = sv(&[(2, 5.0), (3, 1.0)]);
        a.merge_add(&b);
        assert_eq!(a.as_slice(), &[(1, 1.0), (2, 5.0), (3, 3.0)]);
        assert_norm_fresh(&a);
        a.merge_sub(&b);
        assert_eq!(a.as_slice(), &[(1, 1.0), (3, 2.0)]);
        assert_norm_fresh(&a);
    }

    #[test]
    fn merge_add_append_fast_path() {
        let mut a = sv(&[(1, 1.0), (2, 2.0)]);
        a.merge_add(&sv(&[(5, 1.0), (9, 4.0)]));
        assert_eq!(a.as_slice(), &[(1, 1.0), (2, 2.0), (5, 1.0), (9, 4.0)]);
        assert_norm_fresh(&a);
    }

    #[test]
    fn merge_add_subset_fast_path_keeps_entries_in_place() {
        let mut a = sv(&[(1, 1.0), (2, 2.0), (5, 3.0), (9, 4.0)]);
        a.merge_add(&sv(&[(2, 1.0), (9, 1.0)]));
        assert_eq!(a.as_slice(), &[(1, 1.0), (2, 3.0), (5, 3.0), (9, 5.0)]);
        assert_norm_fresh(&a);
    }

    #[test]
    fn merge_add_interleaved_general_case() {
        // Overlapping and interleaved keys exercise the backward merge
        // including the duplicate-gap drain.
        let mut a = sv(&[(2, 1.0), (4, 1.0), (6, 1.0)]);
        a.merge_add(&sv(&[(1, 0.5), (4, 2.0), (7, 3.0)]));
        assert_eq!(
            a.as_slice(),
            &[(1, 0.5), (2, 1.0), (4, 3.0), (6, 1.0), (7, 3.0)]
        );
        assert_norm_fresh(&a);
    }

    #[test]
    fn merge_add_into_empty_reuses_capacity() {
        let mut a = sv(&[(1, 1.0)]);
        a.clear();
        let cap = a.as_slice().as_ptr();
        a.merge_add(&sv(&[(3, 2.0)]));
        assert_eq!(a.as_slice(), &[(3, 2.0)]);
        assert_eq!(a.as_slice().as_ptr(), cap, "buffer must be reused");
        assert_norm_fresh(&a);
    }

    #[test]
    fn clear_resets_norm() {
        let mut a = sv(&[(1, 3.0), (2, 4.0)]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.norm(), 0.0);
    }

    #[test]
    fn norm_survives_every_mutation() {
        let mut a = sv(&[(1, 2.0), (2, 1.0)]);
        assert_norm_fresh(&a);
        a.add(7, 1.5);
        assert_norm_fresh(&a);
        a.merge_add(&sv(&[(2, 1.0), (3, 3.0)]));
        assert_norm_fresh(&a);
        a.merge_sub(&sv(&[(1, 2.0)]));
        assert_norm_fresh(&a);
        a.scale(0.25);
        assert_norm_fresh(&a);
    }

    #[test]
    fn merge_sub_drops_exhausted_entries() {
        let mut a = sv(&[(1, 1.0)]);
        a.merge_sub(&sv(&[(1, 1.0)]));
        assert!(a.is_empty());
        assert_eq!(a.norm(), 0.0);
    }

    #[test]
    fn scale_decays_weights() {
        let mut a = sv(&[(1, 2.0), (2, 4.0)]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[(1, 1.0), (2, 2.0)]);
        a.scale(0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn top_k_orders_by_weight() {
        let a = sv(&[(1, 1.0), (2, 5.0), (3, 3.0), (4, 5.0)]);
        let top = a.top_k(2);
        assert_eq!(top, vec![(2, 5.0), (4, 5.0)]);
        assert_eq!(a.top_k(0), vec![]);
        assert_eq!(a.top_k(10).len(), 4);
    }

    #[test]
    fn add_inserts_and_accumulates() {
        let mut a = SparseVec::new();
        a.add(5u32, 1.0);
        a.add(2, 2.0);
        a.add(5, 1.5);
        assert_eq!(a.as_slice(), &[(2, 2.0), (5, 2.5)]);
        assert_norm_fresh(&a);
    }

    #[test]
    fn from_keys_unit_weights() {
        let a = SparseVec::from_keys(vec![3u32, 1, 3]);
        assert_eq!(a.as_slice(), &[(1, 1.0), (3, 2.0)]);
    }

    #[test]
    fn equality_ignores_capacity_history() {
        let mut a = sv(&[(1, 1.0), (2, 2.0)]);
        a.merge_add(&sv(&[(3, 1.0)]));
        a.merge_sub(&sv(&[(3, 1.0)]));
        let b = sv(&[(1, 1.0), (2, 2.0)]);
        assert_eq!(a, b);
        assert_eq!(a.norm().to_bits(), b.norm().to_bits());
    }
}
