//! Guard against registry dependencies creeping back in.
//!
//! The workspace's contract is that it builds and tests with an empty
//! cargo registry (`CARGO_NET_OFFLINE=true`). This test walks every
//! `Cargo.toml` in the workspace and asserts that all dependencies are
//! path or workspace references — never crates.io versions.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of the root `storypivot` package IS the
    // workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifests(root: &Path) -> Vec<PathBuf> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("crates/ dir") {
        let m = entry.unwrap().path().join("Cargo.toml");
        if m.is_file() {
            out.push(m);
        }
    }
    out
}

/// The dependency-section lines of a manifest, as
/// `(section, line_no, line)` tuples. A tiny purpose-built scan — the
/// manifests are hand-written and flat, so full TOML parsing (which
/// would itself be an external dependency) is not needed.
fn dependency_lines(text: &str) -> Vec<(String, usize, String)> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let in_deps = section == "workspace.dependencies"
            || section.ends_with("dependencies")
                && (section == "dependencies"
                    || section == "dev-dependencies"
                    || section == "build-dependencies");
        if in_deps && !line.is_empty() && !line.starts_with('#') {
            out.push((section.clone(), no + 1, line.to_string()));
        }
    }
    out
}

#[test]
fn no_registry_dependencies_anywhere() {
    let root = workspace_root();
    let manifests = manifests(&root);
    assert!(
        manifests.len() >= 11,
        "expected the root + >=10 crate manifests, found {}",
        manifests.len()
    );
    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest).unwrap();
        for (section, no, line) in dependency_lines(&text) {
            let hermetic = line.contains("path =")
                || line.contains("path=")
                || line.contains(".workspace = true")
                || line.contains("workspace = true");
            assert!(
                hermetic,
                "{}:{} [{}] declares a non-path dependency: {:?}\n\
                 every dependency must be a path/workspace reference so the \
                 build works with an empty registry",
                manifest.display(),
                no,
                section,
                line
            );
        }
    }
}

#[test]
fn banned_crates_never_reappear() {
    // The six registry crates the substrate replaced. Keyed per line so
    // a rename like `rand_core` is also caught.
    const BANNED: [&str; 6] = ["rand", "proptest", "criterion", "parking_lot", "bytes", "crossbeam"];
    let root = workspace_root();
    for manifest in manifests(&root) {
        let text = std::fs::read_to_string(&manifest).unwrap();
        for (section, no, line) in dependency_lines(&text) {
            let name = line.split(['=', '.']).next().unwrap_or("").trim();
            assert!(
                !BANNED.iter().any(|b| name == *b || name.starts_with(&format!("{b}_"))),
                "{}:{} [{}] resurrects banned crate: {:?}",
                manifest.display(),
                no,
                section,
                line
            );
        }
    }
}
