//! The sharded, backpressured TCP server.
//!
//! Topology: one acceptor thread, one handler thread per connection,
//! and N *shard* worker threads. Each shard owns a full
//! [`DynamicPivot`] engine holding a disjoint subset of sources
//! (`source id mod N`), so identification — which is per-source by
//! construction (paper §2.1) — is embarrassingly parallel across
//! shards, and alignment runs per shard over its own sources.
//!
//! Handlers never touch an engine: every frame becomes a [`Job`] routed
//! to its shard through a bounded queue ([`substrate::queue::Bounded`]).
//! When an ingest hits a full queue the handler replies BUSY with a
//! retry-after hint instead of buffering — memory is bounded by
//! `shards × queue_depth` jobs no matter how fast clients push. Batch
//! ingests and control frames (query/stats/shutdown) block on the queue
//! instead: they are few, and blocking keeps their semantics simple.
//!
//! SHUTDOWN drains: a `Drain` job is pushed behind all accepted work on
//! every shard, each shard flushes its engine (final alignment +
//! refinement) and writes a [`core::checkpoint`] file, the queues are
//! closed, and only then is the ack sent.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use storypivot_core::config::PivotConfig;
use storypivot_core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot_core::refine::story_source;
use storypivot_substrate::queue::{Bounded, PushError};
use storypivot_substrate::timing::Histogram;
use storypivot_types::{DocId, Error, Result, Snippet, Source, SourceId, SourceKind, StoryId};

use crate::proto::{frame, read_frame, Request, Response, StorySummary};
use crate::stats::{ServeStats, ShardStats};

/// The maximum number of sources the story-id partitioning scheme
/// supports (see `core::identify::STORY_ID_STRIDE`).
const MAX_SOURCES: u32 = 256;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shard worker threads (engines). Sources are routed by
    /// `source id mod shards`.
    pub shards: usize,
    /// Bounded depth of each shard's job queue; a full queue turns
    /// single-snippet ingests into BUSY replies.
    pub queue_depth: usize,
    /// Engine configuration applied to every shard.
    pub pivot: PivotConfig,
    /// Per-shard incremental re-alignment period (snippets); see
    /// [`PipelinePolicy::align_every`].
    pub align_every: usize,
    /// Where shutdown checkpoints are written (`shard{i}.spvc`);
    /// `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// The retry-after hint carried by BUSY replies, in milliseconds.
    pub retry_after_ms: u32,
    /// Artificial per-job delay in each shard worker. Zero in
    /// production; tests use it to hold a queue full deterministically.
    pub worker_delay: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            queue_depth: 1024,
            pivot: PivotConfig::default(),
            align_every: 256,
            checkpoint_dir: None,
            retry_after_ms: 10,
            worker_delay: Duration::ZERO,
        }
    }
}

/// The reply half of a shard job. `sync_channel(1)` so a shard can
/// always deliver without blocking on a slow handler.
type Reply = SyncSender<Response>;

/// Work routed to one shard.
enum Job {
    AddSource(Source, Reply),
    Ingest(Snippet, Reply),
    IngestMany(Vec<Snippet>, Reply),
    Query(Reply),
    GetStory(StoryId, Reply),
    RemoveDoc(DocId, Reply),
    Stats(Reply),
    /// Flush + checkpoint; the shard replies once its state is durable.
    Drain(Reply),
}

/// State shared between the acceptor, handlers, and [`ServerHandle`].
struct Shared {
    queues: Vec<Bounded<Job>>,
    busy_counters: Vec<Arc<AtomicU64>>,
    next_source: AtomicU32,
    shutting_down: AtomicBool,
    done: AtomicBool,
    retry_after_ms: u32,
}

impl Shared {
    fn shard_of_source(&self, source: SourceId) -> usize {
        source.raw() as usize % self.queues.len()
    }
}

/// A running server: its bound address plus the thread handles needed
/// to wait for a client-driven SHUTDOWN.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a SHUTDOWN has completed (queues closed, checkpoints
    /// written, acceptor stopping).
    pub fn is_done(&self) -> bool {
        self.shared.done.load(Ordering::SeqCst)
    }

    /// Block until the server shuts down (a client must send SHUTDOWN),
    /// then join every shard worker and the acceptor.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

/// Bind and start serving. `addr` may use port 0 for an ephemeral port;
/// the bound address is available via [`ServerHandle::addr`].
pub fn serve<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> Result<ServerHandle> {
    if cfg.shards == 0 {
        return Err(Error::InvalidConfig("serve: shards must be >= 1".into()));
    }
    if cfg.queue_depth == 0 {
        return Err(Error::InvalidConfig("serve: queue_depth must be >= 1".into()));
    }
    cfg.pivot.validate()?;
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let queues: Vec<Bounded<Job>> = (0..cfg.shards).map(|_| Bounded::new(cfg.queue_depth)).collect();
    let busy_counters: Vec<Arc<AtomicU64>> =
        (0..cfg.shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let shared = Arc::new(Shared {
        queues: queues.clone(),
        busy_counters: busy_counters.clone(),
        next_source: AtomicU32::new(0),
        shutting_down: AtomicBool::new(false),
        done: AtomicBool::new(false),
        retry_after_ms: cfg.retry_after_ms,
    });

    let mut workers = Vec::with_capacity(cfg.shards);
    for (idx, queue) in queues.into_iter().enumerate() {
        let shard = ShardWorker {
            idx,
            engine: DynamicPivot::new(
                cfg.pivot.clone(),
                PipelinePolicy {
                    align_every: cfg.align_every,
                    ..PipelinePolicy::default()
                },
            ),
            hist: Histogram::new(),
            ingested: 0,
            queries: 0,
            busy: Arc::clone(&busy_counters[idx]),
            queue,
            checkpoint_dir: cfg.checkpoint_dir.clone(),
            worker_delay: cfg.worker_delay,
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("pivot-shard-{idx}"))
                .spawn(move || shard.run())
                .map_err(|e| Error::Io(format!("spawn shard worker: {e}")))?,
        );
    }

    let accept_shared = Arc::clone(&shared);
    let acceptor = std::thread::Builder::new()
        .name("pivot-accept".into())
        .spawn(move || accept_loop(listener, accept_shared))
        .map_err(|e| Error::Io(format!("spawn acceptor: {e}")))?;

    Ok(ServerHandle {
        addr: bound,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.done.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("pivot-conn".into())
                    .spawn(move || handle_connection(stream, conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One connection: read frame → route → write response, until the peer
/// closes or a protocol error desynchronises the stream.
fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean close at a frame boundary.
            Ok(None) => return,
            Err(e) => {
                // Torn/oversized frame: report once (best effort) and
                // close — the stream position is no longer trustworthy.
                let resp = Response::from_error(&e);
                let _ = writer.write_all(&frame(|b| resp.encode(b)));
                let _ = writer.flush();
                return;
            }
        };
        let (resp, close_after) = match Request::decode(&payload) {
            Ok(req) => {
                let is_shutdown = matches!(req, Request::Shutdown);
                (dispatch(&shared, req), is_shutdown)
            }
            // Garbage opcode / truncated body: reply, then close.
            Err(e) => (Response::from_error(&e), true),
        };
        if writer.write_all(&frame(|b| resp.encode(b))).is_err() {
            return;
        }
        let _ = writer.flush();
        if close_after {
            return;
        }
    }
}

fn reply_channel() -> (Reply, std::sync::mpsc::Receiver<Response>) {
    std::sync::mpsc::sync_channel(1)
}

/// Await one shard's reply; a dead shard (worker exited or panicked)
/// becomes an error response rather than a hang.
fn await_reply(rx: std::sync::mpsc::Receiver<Response>) -> Response {
    rx.recv().unwrap_or(Response::Error {
        code: 7,
        message: "shard worker unavailable".into(),
    })
}

/// Push a control-plane job, blocking while the queue is full. Returns
/// an error response when the queue is closed (server shutting down).
fn push_blocking(queue: &Bounded<Job>, job: Job) -> Option<Response> {
    match queue.push(job) {
        Ok(()) => None,
        Err(_) => Some(Response::Error {
            code: 7,
            message: "server is shutting down".into(),
        }),
    }
}

fn dispatch(shared: &Arc<Shared>, req: Request) -> Response {
    match req {
        Request::AddSource { name, kind, lag } => add_source(shared, name, kind, lag),
        Request::IngestSnippet(snippet) => ingest_one(shared, snippet),
        Request::IngestBatch(batch) => ingest_batch(shared, batch),
        Request::QueryStories => broadcast_merge(shared, Job::Query, |responses| {
            let mut stories = Vec::new();
            for r in responses {
                match r {
                    Response::Stories(mut s) => stories.append(&mut s),
                    other => return other,
                }
            }
            stories.sort_unstable_by_key(|s: &StorySummary| s.id);
            Response::Stories(stories)
        }),
        Request::GetStory(id) => {
            let shard = shared.shard_of_source(story_source(id));
            let (tx, rx) = reply_channel();
            if let Some(err) = push_blocking(&shared.queues[shard], Job::GetStory(id, tx)) {
                return err;
            }
            await_reply(rx)
        }
        Request::RemoveDoc(doc) => broadcast_merge(shared, move |tx| Job::RemoveDoc(doc, tx), {
            move |responses| {
                let mut total = 0u32;
                for r in responses {
                    match r {
                        Response::Removed(n) => total += n,
                        other => return other,
                    }
                }
                if total == 0 {
                    Response::from_error(&Error::UnknownDocument(doc))
                } else {
                    Response::Removed(total)
                }
            }
        }),
        Request::Stats => broadcast_merge(shared, Job::Stats, |responses| {
            let mut shards = Vec::new();
            for r in responses {
                match r {
                    Response::Stats(s) => shards.extend(s.shards),
                    other => return other,
                }
            }
            shards.sort_unstable_by_key(|s: &ShardStats| s.shard);
            Response::Stats(ServeStats { shards })
        }),
        Request::Shutdown => shutdown(shared),
    }
}

fn add_source(shared: &Arc<Shared>, name: String, kind: SourceKind, lag: i64) -> Response {
    let id = shared.next_source.fetch_add(1, Ordering::SeqCst);
    if id >= MAX_SOURCES {
        return Response::from_error(&Error::InvalidConfig(format!(
            "source limit reached ({MAX_SOURCES}): story-id partitioning supports at most \
             {MAX_SOURCES} sources"
        )));
    }
    let source = Source::new(SourceId::new(id), name, kind).with_lag(lag);
    let shard = shared.shard_of_source(source.id);
    let (tx, rx) = reply_channel();
    if let Some(err) = push_blocking(&shared.queues[shard], Job::AddSource(source, tx)) {
        return err;
    }
    await_reply(rx)
}

/// The BUSY fast path: one snippet, one `try_push`. A full shard queue
/// is the client's problem (retry after the hint), never the server's
/// memory.
fn ingest_one(shared: &Arc<Shared>, snippet: Snippet) -> Response {
    let shard = shared.shard_of_source(snippet.source);
    let (tx, rx) = reply_channel();
    match shared.queues[shard].try_push(Job::Ingest(snippet, tx)) {
        Ok(()) => await_reply(rx),
        Err(PushError::Full(_)) => {
            shared.busy_counters[shard].fetch_add(1, Ordering::Relaxed);
            Response::Busy {
                retry_after_ms: shared.retry_after_ms,
            }
        }
        Err(PushError::Closed(_)) => Response::Error {
            code: 7,
            message: "server is shutting down".into(),
        },
    }
}

/// Batch ingest: split by shard (preserving order within each shard),
/// block on full queues — a bulk load wants backpressure, not retries —
/// and sum the per-shard counts.
fn ingest_batch(shared: &Arc<Shared>, batch: Vec<Snippet>) -> Response {
    let n_shards = shared.queues.len();
    let mut by_shard: Vec<Vec<Snippet>> = vec![Vec::new(); n_shards];
    for s in batch {
        let shard = shared.shard_of_source(s.source);
        by_shard[shard].push(s);
    }
    let mut pending = Vec::new();
    for (shard, sub) in by_shard.into_iter().enumerate() {
        if sub.is_empty() {
            continue;
        }
        let (tx, rx) = reply_channel();
        if let Some(err) = push_blocking(&shared.queues[shard], Job::IngestMany(sub, tx)) {
            return err;
        }
        pending.push(rx);
    }
    let mut total = 0u32;
    for rx in pending {
        match await_reply(rx) {
            Response::BatchIngested(n) => total += n,
            other => return other,
        }
    }
    Response::BatchIngested(total)
}

/// Send one job to every shard and merge the replies.
fn broadcast_merge(
    shared: &Arc<Shared>,
    make_job: impl Fn(Reply) -> Job,
    merge: impl FnOnce(Vec<Response>) -> Response,
) -> Response {
    let mut pending = Vec::with_capacity(shared.queues.len());
    for queue in &shared.queues {
        let (tx, rx) = reply_channel();
        if let Some(err) = push_blocking(queue, make_job(tx)) {
            return err;
        }
        pending.push(rx);
    }
    merge(pending.into_iter().map(await_reply).collect())
}

/// Drain + checkpoint every shard, close the queues, stop accepting.
/// Idempotent: concurrent or repeated SHUTDOWNs all ack.
fn shutdown(shared: &Arc<Shared>) -> Response {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        // Another connection is already driving the shutdown; wait for
        // it to finish so the ack means "durable".
        while !shared.done.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        return Response::ShutdownAck;
    }
    let mut pending = Vec::with_capacity(shared.queues.len());
    for queue in &shared.queues {
        let (tx, rx) = reply_channel();
        // The Drain sits behind all previously accepted work: by the
        // time a shard replies, its queue prefix has been fully applied.
        if push_blocking(queue, Job::Drain(tx)).is_none() {
            pending.push(rx);
        }
    }
    let mut failure = None;
    for rx in pending {
        match await_reply(rx) {
            Response::ShutdownAck => {}
            other => failure = Some(other),
        }
    }
    for queue in &shared.queues {
        queue.close();
    }
    shared.done.store(true, Ordering::SeqCst);
    failure.unwrap_or(Response::ShutdownAck)
}

// ---- shard worker ----------------------------------------------------

struct ShardWorker {
    idx: usize,
    engine: DynamicPivot,
    hist: Histogram,
    ingested: u64,
    queries: u64,
    busy: Arc<AtomicU64>,
    queue: Bounded<Job>,
    checkpoint_dir: Option<PathBuf>,
    worker_delay: Duration,
}

impl ShardWorker {
    fn run(mut self) {
        while let Some(job) = self.queue.pop() {
            if !self.worker_delay.is_zero() {
                std::thread::sleep(self.worker_delay);
            }
            // A dropped receiver (handler gone) is not an error.
            let _ = match job {
                Job::AddSource(source, reply) => reply.send(self.add_source(source)),
                Job::Ingest(snippet, reply) => reply.send(self.ingest(snippet)),
                Job::IngestMany(batch, reply) => reply.send(self.ingest_many(batch)),
                Job::Query(reply) => reply.send(self.query()),
                Job::GetStory(id, reply) => reply.send(self.get_story(id)),
                Job::RemoveDoc(doc, reply) => reply.send(self.remove_doc(doc)),
                Job::Stats(reply) => reply.send(self.stats()),
                Job::Drain(reply) => reply.send(self.drain()),
            };
        }
    }

    fn add_source(&mut self, source: Source) -> Response {
        match self.engine.pivot_mut().add_source_registered(source) {
            Ok(id) => Response::SourceAdded(id),
            Err(e) => Response::from_error(&e),
        }
    }

    fn ingest(&mut self, snippet: Snippet) -> Response {
        let t = Instant::now();
        match self.engine.ingest(snippet) {
            Ok(story) => {
                self.hist.record(t.elapsed().as_nanos() as u64);
                self.ingested += 1;
                Response::Ingested(story)
            }
            Err(e) => Response::from_error(&e),
        }
    }

    fn ingest_many(&mut self, batch: Vec<Snippet>) -> Response {
        let mut count = 0u32;
        for snippet in batch {
            let t = Instant::now();
            match self.engine.ingest(snippet) {
                Ok(_) => {
                    self.hist.record(t.elapsed().as_nanos() as u64);
                    self.ingested += 1;
                    count += 1;
                }
                Err(e) => {
                    return Response::Error {
                        code: crate::proto::error_code(&e),
                        message: format!("{e} (after {count} snippets of the batch)"),
                    }
                }
            }
        }
        Response::BatchIngested(count)
    }

    fn summaries(&self) -> Vec<StorySummary> {
        let pivot = self.engine.pivot();
        pivot
            .story_partition()
            .into_iter()
            .map(|(id, members)| StorySummary {
                id,
                source: story_source(id),
                lifespan: pivot.story(id).expect("partitioned story exists").lifespan(),
                members,
            })
            .collect()
    }

    fn query(&mut self) -> Response {
        self.queries += 1;
        Response::Stories(self.summaries())
    }

    fn get_story(&mut self, id: StoryId) -> Response {
        self.queries += 1;
        match self.engine.pivot().story(id) {
            Some(state) => {
                let mut members = state.story.members.clone();
                members.sort_unstable();
                Response::Story(StorySummary {
                    id,
                    source: state.source(),
                    lifespan: state.lifespan(),
                    members,
                })
            }
            None => Response::from_error(&Error::UnknownStory(id)),
        }
    }

    fn remove_doc(&mut self, doc: DocId) -> Response {
        match self.engine.pivot_mut().remove_document(doc) {
            Ok(n) => Response::Removed(n as u32),
            // Sharding splits documents across engines: "unknown here"
            // just means zero local snippets; the router sums.
            Err(Error::UnknownDocument(_)) => Response::Removed(0),
            Err(e) => Response::from_error(&e),
        }
    }

    fn stats(&mut self) -> Response {
        let pivot = self.engine.pivot();
        Response::Stats(ServeStats {
            shards: vec![ShardStats {
                shard: self.idx as u32,
                sources: pivot.sources().len() as u32,
                queue_depth: self.queue.len() as u32,
                queue_capacity: self.queue.capacity() as u32,
                stories: pivot.story_count() as u64,
                snippets: pivot.store().len() as u64,
                ingested: self.ingested,
                queries: self.queries,
                busy_rejections: self.busy.load(Ordering::Relaxed),
                ingest_count: self.hist.count(),
                ingest_p50_ns: self.hist.percentile(0.50),
                ingest_p95_ns: self.hist.percentile(0.95),
                ingest_p99_ns: self.hist.percentile(0.99),
            }],
        })
    }

    fn drain(&mut self) -> Response {
        self.engine.flush();
        if let Some(dir) = &self.checkpoint_dir {
            let path = dir.join(format!("shard{}.spvc", self.idx));
            let bytes = self.engine.pivot().save_checkpoint();
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::File::create(&path).and_then(|mut f| f.write_all(&bytes)))
            {
                return Response::Error {
                    code: 7,
                    message: format!("checkpoint {} failed: {e}", path.display()),
                };
            }
        }
        Response::ShutdownAck
    }
}
