//! Timestamps and time ranges.
//!
//! StoryPivot reasons about *when events occurred in the real world*
//! (paper §2.1). We represent instants as seconds since the Unix epoch in
//! a small [`Timestamp`] newtype, with civil-date conversions implemented
//! locally (Howard Hinnant's `days_from_civil` algorithm) so the workspace
//! stays dependency-free.

use std::fmt;
use std::ops::{Add, Sub};

/// One minute in seconds.
pub const MINUTE: i64 = 60;
/// One hour in seconds.
pub const HOUR: i64 = 3_600;
/// One day in seconds.
pub const DAY: i64 = 86_400;

/// An instant in time: seconds since the Unix epoch (UTC).
///
/// ```
/// use storypivot_types::Timestamp;
/// let t = Timestamp::from_ymd(2014, 7, 17);
/// assert_eq!(t.to_string(), "2014-07-17");
/// assert_eq!(t.ymd(), (2014, 7, 17));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// The Unix epoch.
    pub const EPOCH: Timestamp = Timestamp(0);
    /// The smallest representable instant.
    pub const MIN: Timestamp = Timestamp(i64::MIN);
    /// The largest representable instant.
    pub const MAX: Timestamp = Timestamp(i64::MAX);

    /// From raw seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Seconds since the epoch.
    #[inline]
    pub const fn secs(self) -> i64 {
        self.0
    }

    /// Midnight (UTC) of the given civil date.
    ///
    /// `month` is 1-based January..=December; `day` is 1-based.
    pub const fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        Timestamp(days_from_civil(year, month, day) * DAY)
    }

    /// A precise civil date-time.
    pub const fn from_ymd_hms(year: i32, month: u32, day: u32, h: u32, m: u32, s: u32) -> Self {
        Timestamp(
            days_from_civil(year, month, day) * DAY + h as i64 * HOUR + m as i64 * MINUTE + s as i64,
        )
    }

    /// The civil date `(year, month, day)` of this instant (UTC).
    pub const fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0.div_euclid(DAY))
    }

    /// The `(hour, minute, second)` of day for this instant (UTC).
    pub const fn hms(self) -> (u32, u32, u32) {
        let s = self.0.rem_euclid(DAY);
        ((s / HOUR) as u32, ((s % HOUR) / MINUTE) as u32, (s % MINUTE) as u32)
    }

    /// Saturating addition of a number of seconds.
    #[inline]
    pub const fn saturating_add(self, secs: i64) -> Self {
        Timestamp(self.0.saturating_add(secs))
    }

    /// Saturating subtraction of a number of seconds.
    #[inline]
    pub const fn saturating_sub(self, secs: i64) -> Self {
        Timestamp(self.0.saturating_sub(secs))
    }

    /// Absolute distance in seconds between two instants.
    #[inline]
    pub const fn distance(self, other: Timestamp) -> i64 {
        (self.0 - other.0).abs()
    }

    /// Number of whole days since the epoch (floor).
    #[inline]
    pub const fn day_number(self) -> i64 {
        self.0.div_euclid(DAY)
    }

    /// Parse a timestamp from common textual forms:
    ///
    /// * `2014-07-17` and `2014-07-17 13:05:09` (ISO-ish),
    /// * `07/17/2014` (the US form used in the paper's example tuple),
    /// * a bare integer (seconds since the epoch).
    pub fn parse(s: &str) -> crate::error::Result<Timestamp> {
        let s = s.trim();
        let err = || crate::error::Error::Parse(format!("invalid timestamp: {s:?}"));
        if s.is_empty() {
            return Err(err());
        }
        // Bare seconds.
        if s.chars().all(|c| c.is_ascii_digit() || c == '-') && !s.contains('/') && s.matches('-').count() <= 1 && !s[1..].contains('-') {
            if let Ok(secs) = s.parse::<i64>() {
                return Ok(Timestamp::from_secs(secs));
            }
        }
        let (date_part, time_part) = match s.split_once(' ') {
            Some((d, t)) => (d, Some(t)),
            None => (s, None),
        };
        let (y, m, d) = if let Some((a, rest)) = date_part.split_once('-') {
            // YYYY-MM-DD
            let (b, c) = rest.split_once('-').ok_or_else(err)?;
            (
                a.parse::<i32>().map_err(|_| err())?,
                b.parse::<u32>().map_err(|_| err())?,
                c.parse::<u32>().map_err(|_| err())?,
            )
        } else if let Some((a, rest)) = date_part.split_once('/') {
            // MM/DD/YYYY
            let (b, c) = rest.split_once('/').ok_or_else(err)?;
            (
                c.parse::<i32>().map_err(|_| err())?,
                a.parse::<u32>().map_err(|_| err())?,
                b.parse::<u32>().map_err(|_| err())?,
            )
        } else {
            return Err(err());
        };
        if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return Err(err());
        }
        let mut t = Timestamp::from_ymd(y, m, d);
        if let Some(hms) = time_part {
            let mut it = hms.split(':');
            let h: i64 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let mi: i64 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
            let sec: i64 = match it.next() {
                Some(x) => x.parse().map_err(|_| err())?,
                None => 0,
            };
            if it.next().is_some() || !(0..24).contains(&h) || !(0..60).contains(&mi) || !(0..60).contains(&sec) {
                return Err(err());
            }
            t = t + h * HOUR + mi * MINUTE + sec;
        }
        Ok(t)
    }
}

impl fmt::Display for Timestamp {
    /// Formats as `YYYY-MM-DD` when the instant is midnight-aligned and
    /// `YYYY-MM-DD HH:MM:SS` otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.ymd();
        if self.0.rem_euclid(DAY) == 0 {
            write!(f, "{y:04}-{mo:02}-{d:02}")
        } else {
            let (h, mi, s) = self.hms();
            write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
        }
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, secs: i64) -> Timestamp {
        Timestamp(self.0 - secs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    #[inline]
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

/// Days since 1970-01-01 for a civil date (proleptic Gregorian).
///
/// Howard Hinnant's `days_from_civil`, valid for the full `i32` year range.
const fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = y.div_euclid(400);
    let yoe = y - era * 400; // [0, 399]
    let mp = ((m + 9) % 12) as i64; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
const fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// A closed time interval `[start, end]`.
///
/// Used for story lifespans and for window queries. An *empty* range has
/// `start > end` and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Inclusive upper bound.
    pub end: Timestamp,
}

impl TimeRange {
    /// A range covering all of time.
    pub const ALL: TimeRange = TimeRange {
        start: Timestamp::MIN,
        end: Timestamp::MAX,
    };

    /// The canonical empty range.
    pub const EMPTY: TimeRange = TimeRange {
        start: Timestamp::MAX,
        end: Timestamp::MIN,
    };

    /// A closed range `[start, end]`.
    pub const fn new(start: Timestamp, end: Timestamp) -> Self {
        TimeRange { start, end }
    }

    /// The degenerate range containing a single instant.
    pub const fn instant(t: Timestamp) -> Self {
        TimeRange { start: t, end: t }
    }

    /// The symmetric window `[t-ω, t+ω]` around `t` (paper §2.2).
    pub const fn window(t: Timestamp, omega: i64) -> Self {
        TimeRange {
            start: t.saturating_sub(omega),
            end: t.saturating_add(omega),
        }
    }

    /// Whether the range contains no instants.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.start.0 > self.end.0
    }

    /// Whether `t` falls inside the closed range.
    #[inline]
    pub const fn contains(self, t: Timestamp) -> bool {
        self.start.0 <= t.0 && t.0 <= self.end.0
    }

    /// Duration in seconds (zero for empty ranges; 0 for instants).
    #[inline]
    pub const fn duration(self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.end.0 - self.start.0
        }
    }

    /// Whether the two closed ranges share at least one instant.
    #[inline]
    pub const fn overlaps(self, other: TimeRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start.0 <= other.end.0 && other.start.0 <= self.end.0
    }

    /// The intersection of the two ranges (possibly empty).
    pub fn intersect(self, other: TimeRange) -> TimeRange {
        TimeRange {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }

    /// The smallest range covering both inputs; empty inputs are identities.
    pub fn cover(self, other: TimeRange) -> TimeRange {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        TimeRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extend the range to include `t`.
    pub fn extend(self, t: Timestamp) -> TimeRange {
        self.cover(TimeRange::instant(t))
    }

    /// Grow both ends by `slack` seconds (used for lag-tolerant alignment).
    pub const fn inflate(self, slack: i64) -> TimeRange {
        TimeRange {
            start: self.start.saturating_sub(slack),
            end: self.end.saturating_add(slack),
        }
    }

    /// Jaccard-style temporal overlap: `|A∩B| / |A∪B|` by duration.
    ///
    /// Returns 1.0 when both ranges are the same single instant, 0.0 when
    /// disjoint or either is empty. This is the temporal component of
    /// story–story similarity (paper §2.3: "two stories are likely to
    /// refer to the same real-world story if their evolution is similar").
    pub fn overlap_ratio(self, other: TimeRange) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let inter = self.intersect(other);
        if inter.is_empty() {
            return 0.0;
        }
        let union = self.cover(other).duration();
        if union == 0 {
            return 1.0; // both are the same instant
        }
        inter.duration() as f64 / union as f64
    }

    /// Gap in seconds between disjoint ranges; 0 when they overlap.
    pub fn gap(self, other: TimeRange) -> i64 {
        if self.is_empty() || other.is_empty() {
            return i64::MAX;
        }
        if self.overlaps(other) {
            0
        } else if self.end < other.start {
            other.start - self.end
        } else {
            self.start - other.end
        }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else {
            write!(f, "[{} .. {}]", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_round_trip_known_dates() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2014, 7, 17),  // MH17 crash, the paper's running example
            (2014, 9, 12),  // investigation report date in Figure 6
            (2000, 2, 29),  // leap day
            (1999, 12, 31),
            (2100, 3, 1),
            (1900, 2, 28),
        ] {
            let t = Timestamp::from_ymd(y, m, d);
            assert_eq!(t.ymd(), (y, m, d), "round trip {y}-{m}-{d}");
        }
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Timestamp::from_ymd(1970, 1, 1), Timestamp::EPOCH);
        assert_eq!(Timestamp::EPOCH.day_number(), 0);
    }

    #[test]
    fn mh17_date_is_correct_unix_time() {
        // 2014-07-17 00:00:00 UTC == 1405555200
        assert_eq!(Timestamp::from_ymd(2014, 7, 17).secs(), 1_405_555_200);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_ymd(2014, 7, 17).to_string(), "2014-07-17");
        assert_eq!(
            Timestamp::from_ymd_hms(2014, 7, 17, 13, 5, 9).to_string(),
            "2014-07-17 13:05:09"
        );
    }

    #[test]
    fn pre_epoch_dates_work() {
        let t = Timestamp::from_ymd(1969, 12, 31);
        assert_eq!(t.secs(), -DAY);
        assert_eq!(t.ymd(), (1969, 12, 31));
        assert_eq!(t.hms(), (0, 0, 0));
    }

    #[test]
    fn window_is_symmetric() {
        let t = Timestamp::from_secs(1_000);
        let w = TimeRange::window(t, 100);
        assert!(w.contains(Timestamp::from_secs(900)));
        assert!(w.contains(Timestamp::from_secs(1_100)));
        assert!(!w.contains(Timestamp::from_secs(899)));
        assert!(!w.contains(Timestamp::from_secs(1_101)));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = TimeRange::new(Timestamp(0), Timestamp(10));
        let b = TimeRange::new(Timestamp(5), Timestamp(20));
        let c = TimeRange::new(Timestamp(11), Timestamp(12));
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersect(b), TimeRange::new(Timestamp(5), Timestamp(10)));
        assert!(a.intersect(c).is_empty());
        assert_eq!(a.cover(c), TimeRange::new(Timestamp(0), Timestamp(12)));
    }

    #[test]
    fn overlap_ratio_bounds() {
        let a = TimeRange::new(Timestamp(0), Timestamp(10));
        assert_eq!(a.overlap_ratio(a), 1.0);
        let disjoint = TimeRange::new(Timestamp(20), Timestamp(30));
        assert_eq!(a.overlap_ratio(disjoint), 0.0);
        let half = TimeRange::new(Timestamp(5), Timestamp(15));
        let r = a.overlap_ratio(half);
        assert!(r > 0.0 && r < 1.0);
        // |∩| = 5, |∪| = 15
        assert!((r - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn instant_overlap_ratio_is_one() {
        let t = TimeRange::instant(Timestamp(42));
        assert_eq!(t.overlap_ratio(t), 1.0);
    }

    #[test]
    fn empty_range_behaviour() {
        let e = TimeRange::EMPTY;
        assert!(e.is_empty());
        assert!(!e.contains(Timestamp(0)));
        assert_eq!(e.duration(), 0);
        let a = TimeRange::new(Timestamp(0), Timestamp(10));
        assert_eq!(e.cover(a), a);
        assert_eq!(a.cover(e), a);
        assert_eq!(e.overlap_ratio(a), 0.0);
        assert_eq!(e.to_string(), "[empty]");
    }

    #[test]
    fn extend_grows_lifespan() {
        let r = TimeRange::EMPTY
            .extend(Timestamp(5))
            .extend(Timestamp(1))
            .extend(Timestamp(9));
        assert_eq!(r, TimeRange::new(Timestamp(1), Timestamp(9)));
    }

    #[test]
    fn gap_between_ranges() {
        let a = TimeRange::new(Timestamp(0), Timestamp(10));
        let b = TimeRange::new(Timestamp(15), Timestamp(20));
        assert_eq!(a.gap(b), 5);
        assert_eq!(b.gap(a), 5);
        assert_eq!(a.gap(a), 0);
    }

    #[test]
    fn parse_iso_date() {
        assert_eq!(Timestamp::parse("2014-07-17").unwrap(), Timestamp::from_ymd(2014, 7, 17));
        assert_eq!(
            Timestamp::parse("2014-07-17 13:05:09").unwrap(),
            Timestamp::from_ymd_hms(2014, 7, 17, 13, 5, 9)
        );
        assert_eq!(
            Timestamp::parse("2014-07-17 13:05").unwrap(),
            Timestamp::from_ymd_hms(2014, 7, 17, 13, 5, 0)
        );
    }

    #[test]
    fn parse_us_date_from_the_paper() {
        // The paper's example tuple uses 07/17/2014.
        assert_eq!(Timestamp::parse("07/17/2014").unwrap(), Timestamp::from_ymd(2014, 7, 17));
    }

    #[test]
    fn parse_bare_seconds() {
        assert_eq!(Timestamp::parse("1405555200").unwrap().secs(), 1_405_555_200);
        assert_eq!(Timestamp::parse("-86400").unwrap().secs(), -DAY);
        assert_eq!(Timestamp::parse(" 42 ").unwrap().secs(), 42);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "yesterday", "2014-13-01", "2014-00-10", "13/40/2014",
                    "2014-07-17 25:00:00", "2014-07-17 10:61", "2014-07", "07/2014"] {
            assert!(Timestamp::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn inflate_adds_slack() {
        let a = TimeRange::new(Timestamp(10), Timestamp(20)).inflate(5);
        assert_eq!(a, TimeRange::new(Timestamp(5), Timestamp(25)));
    }
}
