//! E2 — the full pipeline (identify + align + refine) per execution
//! mode (Fig 7). Timing counterpart of the harness' quality table.

use storypivot_bench::{corpus_fixed_period, pivot_for, OMEGA};
use storypivot_core::config::PivotConfig;
use storypivot_substrate::timing::BenchGroup;

fn main() {
    let corpus = corpus_fixed_period(800, 8, 11);
    let mut group = BenchGroup::from_env("e2_full_pipeline");
    for (name, cfg) in [
        ("temporal", PivotConfig::temporal(OMEGA)),
        ("complete", PivotConfig::complete()),
    ] {
        group.bench(&format!("{name}/{}", corpus.len()), || {
            let mut pivot = pivot_for(&corpus, cfg.clone());
            for s in &corpus.snippets {
                pivot.ingest(s.clone()).unwrap();
            }
            pivot.align();
            pivot.refine();
            pivot.global_stories().len()
        });
    }
    group.finish();
}
