//! Crash-equivalence under deterministic disk-fault injection: with a
//! `substrate::fault` plan tearing WAL appends and failing checkpoint
//! writes, every *acknowledged* mutation must still survive SIGKILL
//! byte-for-byte, and every *rejected* mutation must have left no trace
//! (so a straight retry converges on the uninterrupted twin).
//!
//! Fault hooks only fire in debug builds (`cargo test` default); under
//! `--release` the plans are inert and these tests degrade to the plain
//! crash-equivalence they extend.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use storypivot_core::config::PivotConfig;
use storypivot_core::pipeline::{DynamicPivot, PipelinePolicy};
use storypivot_gen::{Corpus, CorpusBuilder, GenConfig};
use storypivot_serve::client::Client;
use storypivot_serve::proto::StorySummary;
use storypivot_serve::server::{serve, ServerConfig};
use storypivot_substrate::fault::FaultPlan;
use storypivot_substrate::wal::SyncPolicy;
use storypivot_types::{Snippet, Source};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("storypivot-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn the real pivotd binary (optionally with a `STORYPIVOT_FAULTS`
/// plan in its environment) and wait for its port file.
#[allow(clippy::zombie_processes)]
fn spawn_pivotd(extra: &[&str], port_file: &Path, faults: Option<&str>) -> (Child, SocketAddr) {
    let _ = std::fs::remove_file(port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pivotd"));
    cmd.args(["--addr", "127.0.0.1:0", "--port-file", port_file.to_str().unwrap()])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    match faults {
        Some(plan) => cmd.env("STORYPIVOT_FAULTS", plan),
        None => cmd.env_remove("STORYPIVOT_FAULTS"),
    };
    let mut child = cmd.spawn().expect("spawn pivotd");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(raw) = std::fs::read_to_string(port_file) {
            if let Ok(port) = raw.trim().parse::<u16>() {
                return (child, SocketAddr::from(([127, 0, 0, 1], port)));
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("pivotd did not write its port file");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn partition_of_summaries(stories: &[StorySummary]) -> BTreeMap<u32, Vec<u32>> {
    stories
        .iter()
        .map(|s| {
            let mut members: Vec<u32> = s.members.iter().map(|m| m.raw()).collect();
            members.sort_unstable();
            (s.id.raw(), members)
        })
        .collect()
}

fn partition_of_engine(engine: &DynamicPivot) -> BTreeMap<u32, Vec<u32>> {
    engine
        .pivot()
        .story_partition()
        .into_iter()
        .map(|(id, members)| {
            let mut members: Vec<u32> = members.iter().map(|m| m.raw()).collect();
            members.sort_unstable();
            (id.raw(), members)
        })
        .collect()
}

fn corpus(seed: u64, events: usize) -> Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_seed(seed)
            .with_sources(4)
            .with_target_snippets(events),
    )
    .build()
}

/// Register the corpus sources against a possibly-faulting server,
/// retrying rejected registrations. A rejected ADD_SOURCE still burns a
/// source id (the id is allocated at admission, before the journal
/// append that the fault fails), so the ids the server grants can drift
/// from the corpus ids — the returned stream is the corpus re-keyed to
/// the *granted* ids, plus how many attempts a fault rejected.
fn remapped_stream(client: &mut Client, corpus: &Corpus) -> (Vec<Source>, Vec<Snippet>, u64) {
    let mut rejected = 0u64;
    let mut sample_err = String::new();
    let mut sources = Vec::with_capacity(corpus.sources.len());
    let mut map: BTreeMap<u32, u32> = BTreeMap::new();
    for source in &corpus.sources {
        let granted = loop {
            match client.add_source(&source.name, source.kind, source.typical_lag) {
                Ok(id) => break id,
                Err(e) => {
                    sample_err = e.to_string();
                    rejected += 1;
                    assert!(rejected < 10_000, "add_source never landed: {sample_err}");
                }
            }
        };
        map.insert(source.id.raw(), granted.raw());
        sources.push(Source { id: granted, ..source.clone() });
    }
    if rejected > 0 {
        assert!(
            sample_err.contains("injected fault"),
            "only injected faults should reject registrations, got: {sample_err}"
        );
    }
    let snippets = corpus
        .snippets
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.source = storypivot_types::SourceId::new(map[&s.source.raw()]);
            s
        })
        .collect();
    (sources, snippets, rejected)
}

/// Ingest every snippet, retrying the ones an injected fault rejects;
/// returns how many attempts were rejected. `ingest_backoff` already
/// absorbs BUSY/SHED internally, so every `Err` here is a typed server
/// error riding a still-healthy connection.
fn ingest_with_retry(client: &mut Client, snippets: &[Snippet]) -> u64 {
    let mut rejected = 0u64;
    for snippet in snippets {
        loop {
            match client.ingest_backoff(snippet, Default::default()) {
                Ok(_) => break,
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains("injected fault"),
                        "unexpected ingest failure: {msg}"
                    );
                    rejected += 1;
                    assert!(rejected < 10_000, "ingest never landed");
                }
            }
        }
    }
    rejected
}

/// The uninterrupted in-process twin of the granted-id stream.
fn twin_of(sources: &[Source], snippets: &[Snippet]) -> DynamicPivot {
    let mut twin = DynamicPivot::new(
        PivotConfig::default(),
        PipelinePolicy { align_every: 0, ..PipelinePolicy::default() },
    );
    for source in sources {
        twin.pivot_mut().add_source_registered(source.clone()).unwrap();
    }
    for snippet in snippets {
        twin.ingest(snippet.clone()).unwrap();
    }
    twin
}

/// In-process server with an aggressive WAL fault plan: rejected writes
/// must leave no trace (append-before-apply), so blind retries converge
/// on exactly the partition of the uninterrupted twin.
#[test]
fn injected_wal_faults_reject_cleanly_and_retries_converge() {
    let wal = scratch("inproc-wal");
    let ckpt = scratch("inproc-ckpt");
    let cfg = ServerConfig {
        shards: 2,
        align_every: 0,
        wal_dir: Some(wal.clone()),
        checkpoint_dir: Some(ckpt.clone()),
        fsync: SyncPolicy::Always,
        faults: Some(FaultPlan::parse("seed=5,wal_enospc=120,wal_short=80").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let corpus = corpus(13, 240);
    let (sources, snippets, rejected_sources) = remapped_stream(&mut client, &corpus);
    let rejected_ingests = ingest_with_retry(&mut client, &snippets);
    if cfg!(debug_assertions) {
        // permille 120+80 over ~240 appends per shard: statistically
        // certain to fire, and deterministic for this seed.
        assert!(
            rejected_sources + rejected_ingests > 0,
            "the fault plan never fired in a debug build"
        );
    }

    let served = partition_of_summaries(&client.query_stories().unwrap());
    assert_eq!(
        served,
        partition_of_engine(&twin_of(&sources, &snippets)),
        "faulted-and-retried stream must reach the uninterrupted twin's partition"
    );

    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// The ISSUE's acceptance bar: SIGKILL a pivotd that ran its whole load
/// under an active disk-fault plan (torn WAL appends, failed periodic
/// checkpoints) and prove a clean restart serves the byte-identical
/// partition the loaded daemon acknowledged.
#[test]
fn sigkill_under_fault_plan_recovers_the_exact_partition() {
    let wal = scratch("kill-wal");
    let ckpt = scratch("kill-ckpt");
    let port_file = wal.join("port");
    let wal_s = wal.to_str().unwrap().to_string();
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    // Small checkpoint threshold so the run crosses it repeatedly —
    // some of those checkpoints fail by injection and are skipped; the
    // WAL they would have truncated must still replay correctly.
    let args = [
        "--shards",
        "2",
        "--align-every",
        "0",
        "--fsync",
        "always",
        "--checkpoint-every-bytes",
        "4096",
        "--wal-dir",
        &wal_s,
        "--checkpoint-dir",
        &ckpt_s,
    ];

    let corpus = corpus(17, 240);
    let (mut child, addr) =
        spawn_pivotd(&args, &port_file, Some("seed=9,wal_enospc=60,wal_short=60,checkpoint=250"));
    let mut client = Client::connect(addr).unwrap();
    let (sources, snippets, _) = remapped_stream(&mut client, &corpus);
    let _ = ingest_with_retry(&mut client, &snippets);
    // Everything above was acknowledged under --fsync always *despite*
    // the fault plan; this partition is the durability contract.
    let before = partition_of_summaries(&client.query_stories().unwrap());
    drop(client);

    child.kill().unwrap();
    let _ = child.wait();

    // Clean restart, no fault plan: replay must see a whole journal
    // (torn appends were repaired in place, failed appends left nothing).
    let (mut child2, addr2) = spawn_pivotd(&args, &port_file, None);
    let mut client = Client::connect(addr2).unwrap();
    let after = partition_of_summaries(&client.query_stories().unwrap());
    assert_eq!(after, before, "restart must reconstruct the acked partition");
    assert_eq!(
        after,
        partition_of_engine(&twin_of(&sources, &snippets)),
        "recovered partition must equal the uninterrupted twin"
    );

    client.shutdown().unwrap();
    let status = child2.wait().unwrap();
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&wal);
    let _ = std::fs::remove_dir_all(&ckpt);
}
