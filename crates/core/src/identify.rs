//! Story identification within one data source (paper §2.2).
//!
//! The identifier processes snippets *incrementally*: for every incoming
//! snippet it finds the most likely story and joins it, or opens a new
//! story around the snippet — exactly the loop described in §2.1. The
//! comparison scope depends on the [`MatchMode`]:
//!
//! * **Temporal** (Figure 2b): only snippets with timestamps in
//!   `[t-ω, t+ω]` are candidates — faster, and robust to story drift.
//! * **Complete** (Figure 2a): every prior snippet of the source is a
//!   candidate — the baseline that "overfits stories".
//!
//! Stories evolve, so the identifier also supports **merge** (an
//! incoming snippet that strongly matches two stories is evidence they
//! are one) and **split** (a maintenance pass that breaks a story whose
//! member-similarity graph has fallen apart) — the incremental record
//! linkage behaviour the paper cites.

use std::collections::HashMap;

use storypivot_sketch::HashFamily;
use storypivot_store::EventStore;
use storypivot_types::ids::IdGen;
use storypivot_types::{Snippet, SnippetId, SourceId, StoryId};

use crate::config::{IdentifyConfig, MatchMode, SketchConfig};
use crate::state::StoryState;
use crate::unionfind::UnionFind;

/// Number of story-id slots reserved per source (story ids are
/// partitioned by source so identifiers can run in parallel without a
/// shared allocator).
pub const STORY_ID_STRIDE: u32 = 1 << 24;

/// What happened when a snippet was identified.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifyDecision {
    /// The story the snippet ended up in.
    pub story: StoryId,
    /// Whether that story was newly created for this snippet.
    pub created: bool,
    /// The best candidate score observed (0 when there were no candidates).
    pub best_score: f64,
    /// Stories merged into `story` as a side effect of this snippet.
    pub merged: Vec<StoryId>,
    /// Number of snippet comparisons performed (drives experiment E1).
    pub compared: usize,
}

/// Report of a maintenance pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MaintenanceReport {
    /// Each entry: a story that split, with the ids of the fragments
    /// (the original id is reused for the largest fragment).
    pub splits: Vec<(StoryId, Vec<StoryId>)>,
}

/// Incremental story identifier for one data source.
#[derive(Debug, Clone)]
pub struct Identifier {
    source: SourceId,
    cfg: IdentifyConfig,
    sketch_cfg: SketchConfig,
    family: HashFamily,
    stories: HashMap<StoryId, StoryState>,
    assignment: HashMap<SnippetId, StoryId>,
    ids: IdGen<StoryId>,
    since_maintenance: usize,
}

impl Identifier {
    /// A fresh identifier for `source`.
    pub fn new(source: SourceId, cfg: IdentifyConfig, sketch_cfg: SketchConfig) -> Self {
        Identifier {
            source,
            family: HashFamily::new(sketch_cfg.seed, sketch_cfg.minhash_k),
            stories: HashMap::new(),
            assignment: HashMap::new(),
            ids: IdGen::starting_at(source.raw().wrapping_mul(STORY_ID_STRIDE)),
            since_maintenance: 0,
            cfg,
            sketch_cfg,
        }
    }

    /// The source this identifier owns.
    pub fn source(&self) -> SourceId {
        self.source
    }

    /// Number of (non-empty) stories.
    pub fn story_count(&self) -> usize {
        self.stories.len()
    }

    /// All story states (arbitrary order).
    pub fn stories(&self) -> impl Iterator<Item = &StoryState> + '_ {
        self.stories.values()
    }

    /// Story ids sorted ascending (deterministic iteration).
    pub fn story_ids(&self) -> Vec<StoryId> {
        let mut v: Vec<StoryId> = self.stories.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// One story's state.
    pub fn story(&self, id: StoryId) -> Option<&StoryState> {
        self.stories.get(&id)
    }

    /// The story a snippet is assigned to.
    pub fn story_of(&self, snippet: SnippetId) -> Option<StoryId> {
        self.assignment.get(&snippet).copied()
    }

    /// Number of assigned snippets.
    pub fn assigned_count(&self) -> usize {
        self.assignment.len()
    }

    /// Iterate all `(snippet, story)` assignments (arbitrary order).
    pub fn assignments(&self) -> impl Iterator<Item = (SnippetId, StoryId)> + '_ {
        self.assignment.iter().map(|(&s, &c)| (s, c))
    }

    /// Raw value of the next story id this identifier would allocate
    /// (checkpointing).
    pub fn next_story_id_raw(&self) -> u32 {
        self.ids.allocated()
    }

    /// Restore the story-id allocator position (checkpoint load).
    pub fn restore_next_story_id(&mut self, raw: u32) {
        self.ids = IdGen::starting_at(raw);
    }

    /// The hash family used by this identifier's sketches.
    pub fn family(&self) -> &HashFamily {
        &self.family
    }

    /// Identify one snippet. The snippet must already be stored in
    /// `store` (so window queries can see it); it must belong to this
    /// identifier's source.
    ///
    /// Returns the decision; also runs the periodic maintenance pass
    /// when due (its effect is visible through the story table, not the
    /// returned decision).
    pub fn assign(&mut self, snippet: &Snippet, store: &EventStore) -> IdentifyDecision {
        debug_assert_eq!(snippet.source, self.source);

        // ---- candidate scoring ------------------------------------------
        //
        // Score = pair_blend·best-pair + (1-pair_blend)·window-centroid.
        // The best-pair (single-link) component lets evolving stories
        // chain through their most recent snippets; the centroid of the
        // story's *windowed* members keeps one spuriously similar pair
        // from chaining unrelated stories together (the incremental
        // record-linkage failure mode at scale). E10 ablates the blend.
        struct Candidate {
            pair: f64,
            entities: storypivot_types::SparseVec<storypivot_types::EntityId>,
            terms: storypivot_types::SparseVec<storypivot_types::TermId>,
            count: u32,
        }
        let mut per_story: HashMap<StoryId, Candidate> = HashMap::new();
        let mut compared = 0usize;
        let candidates: Vec<&Snippet> = match self.cfg.mode {
            MatchMode::Temporal { omega } => store.window(self.source, snippet.timestamp, omega),
            MatchMode::Complete => store.snippets_of_source(self.source),
        };
        for cand in candidates {
            if cand.id == snippet.id {
                continue;
            }
            let Some(&story) = self.assignment.get(&cand.id) else {
                continue; // not yet identified (e.g. later batch position)
            };
            compared += 1;
            let s = self.cfg.weights.snippet_sim(snippet, cand);
            let entry = per_story.entry(story).or_insert_with(|| Candidate {
                pair: 0.0,
                entities: storypivot_types::SparseVec::new(),
                terms: storypivot_types::SparseVec::new(),
                count: 0,
            });
            if s > entry.pair {
                entry.pair = s;
            }
            entry.entities.merge_add(cand.entities());
            entry.terms.merge_add(cand.terms());
            entry.count += 1;
        }

        // ---- pick the best story, detect merge evidence ---------------
        let w = &self.cfg.weights;
        let mut ranked: Vec<(StoryId, f64)> = per_story
            .into_iter()
            .map(|(story, c)| {
                let type_affinity = snippet.content.event_type.affinity(
                    self.stories
                        .get(&story)
                        .map(|s| s.dominant_event_type())
                        .unwrap_or(snippet.content.event_type),
                );
                let centroid = (w.entity * snippet.entities().cosine(&c.entities)
                    + w.term * snippet.terms().cosine(&c.terms)
                    + w.event * type_affinity)
                    / w.total();
                (
                    story,
                    self.cfg.pair_blend * c.pair + (1.0 - self.cfg.pair_blend) * centroid,
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));

        let decision = match ranked.first() {
            Some(&(best_story, best_score)) if best_score >= self.cfg.match_threshold => {
                // Merge every other story that also matches strongly.
                let mut merged = Vec::new();
                for &(other, score) in ranked.iter().skip(1) {
                    if score >= self.cfg.merge_threshold {
                        if let Some(other_state) = self.stories.remove(&other) {
                            for &m in &other_state.story.members {
                                self.assignment.insert(m, best_story);
                            }
                            self.stories
                                .get_mut(&best_story)
                                .expect("best story exists")
                                .absorb(&other_state);
                            merged.push(other);
                        }
                    }
                }
                let state = self.stories.get_mut(&best_story).expect("best story exists");
                state.add_snippet(snippet, &self.family);
                self.assignment.insert(snippet.id, best_story);
                IdentifyDecision {
                    story: best_story,
                    created: false,
                    best_score,
                    merged,
                    compared,
                }
            }
            other => {
                let best_score = other.map_or(0.0, |&(_, s)| s);
                let id = self.ids.next_id();
                let mut state = StoryState::new(
                    id,
                    self.source,
                    &self.family,
                    &self.sketch_cfg,
                    self.cfg_bucket_width(),
                );
                state.add_snippet(snippet, &self.family);
                self.stories.insert(id, state);
                self.assignment.insert(snippet.id, id);
                IdentifyDecision {
                    story: id,
                    created: true,
                    best_score,
                    merged: Vec::new(),
                    compared,
                }
            }
        };

        self.since_maintenance += 1;
        decision
    }

    /// Whether the periodic merge/split maintenance pass is due. Owners
    /// call [`Identifier::maintain`] when it is (the pass is separate so
    /// the caller can observe the split report, e.g. for dirty-story
    /// tracking in incremental alignment).
    pub fn maintenance_due(&self) -> bool {
        self.cfg.maintenance_every > 0 && self.since_maintenance >= self.cfg.maintenance_every
    }

    /// Bucket width for story evolution signatures. Identification keeps
    /// day-granularity signatures; alignment may rebucket.
    fn cfg_bucket_width(&self) -> i64 {
        storypivot_types::DAY
    }

    /// Remove a snippet from its story (document removal / refinement).
    /// Rebuilds the story's aggregates exactly; drops the story when it
    /// becomes empty. Returns the story it was removed from.
    pub fn remove_snippet(&mut self, snippet: &Snippet, store: &EventStore) -> Option<StoryId> {
        let story_id = self.assignment.remove(&snippet.id)?;
        let state = self.stories.get_mut(&story_id)?;
        state.story.remove_member(snippet.id);
        if state.story.is_empty() {
            self.stories.remove(&story_id);
        } else {
            let members: Vec<&Snippet> = state
                .story
                .members
                .iter()
                .filter_map(|&m| store.get(m))
                .collect();
            let family = self.family.clone();
            let cfg = self.sketch_cfg;
            self.stories
                .get_mut(&story_id)
                .expect("story exists")
                .rebuild(members, &family, &cfg);
        }
        Some(story_id)
    }

    /// Force-assign a snippet to a specific story (used by refinement to
    /// propagate alignment decisions back, Figure 1d). Creates the story
    /// if it does not exist.
    pub fn force_assign(&mut self, snippet: &Snippet, story: StoryId) {
        debug_assert_eq!(snippet.source, self.source);
        let state = self.stories.entry(story).or_insert_with(|| {
            StoryState::new(
                story,
                self.source,
                &self.family,
                &self.sketch_cfg,
                storypivot_types::DAY,
            )
        });
        state.add_snippet(snippet, &self.family);
        self.assignment.insert(snippet.id, story);
    }

    /// Allocate a fresh story id (for refinement moves that need a new
    /// story).
    pub fn fresh_story_id(&mut self) -> StoryId {
        self.ids.next_id()
    }

    /// Run the merge/split maintenance pass now.
    ///
    /// Split: inside each story, member snippets stay connected when
    /// their pairwise similarity reaches `split_threshold` *and* (in
    /// temporal mode) they lie within `2ω` of each other. Stories whose
    /// member graph decomposes are split into their components.
    pub fn maintain(&mut self, store: &EventStore) -> MaintenanceReport {
        self.since_maintenance = 0;
        let mut report = MaintenanceReport::default();
        let story_ids = self.story_ids();
        for story_id in story_ids {
            let members: Vec<&Snippet> = {
                let state = &self.stories[&story_id];
                if state.len() < 3 {
                    continue;
                }
                state
                    .story
                    .members
                    .iter()
                    .filter_map(|&m| store.get(m))
                    .collect()
            };
            if members.len() < 3 {
                continue;
            }
            let mut uf = UnionFind::new(members.len());
            let max_gap = self.cfg.mode.omega().map(|w| 2 * w);
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if let Some(gap) = max_gap {
                        if members[i].timestamp.distance(members[j].timestamp) > gap {
                            continue;
                        }
                    }
                    if self.cfg.weights.snippet_sim(members[i], members[j])
                        >= self.cfg.split_threshold
                    {
                        uf.union(i, j);
                    }
                }
            }
            if uf.component_count() == 1 {
                continue;
            }
            // Split: largest component keeps the id, others get new ids.
            let mut groups = uf.groups();
            groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
            let family = self.family.clone();
            let sketch_cfg = self.sketch_cfg;
            let mut fragment_ids = Vec::new();

            // Rebuild the surviving story from the largest group.
            let keep: Vec<&Snippet> = groups[0].iter().map(|&i| members[i]).collect();
            self.stories
                .get_mut(&story_id)
                .expect("story exists")
                .rebuild(keep.iter().copied(), &family, &sketch_cfg);
            fragment_ids.push(story_id);

            for group in &groups[1..] {
                let new_id = self.ids.next_id();
                let mut state = StoryState::new(
                    new_id,
                    self.source,
                    &family,
                    &sketch_cfg,
                    storypivot_types::DAY,
                );
                for &i in group {
                    state.add_snippet(members[i], &family);
                    self.assignment.insert(members[i].id, new_id);
                }
                self.stories.insert(new_id, state);
                fragment_ids.push(new_id);
            }
            report.splits.push((story_id, fragment_ids));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, EventType, Source, SourceKind, TermId, Timestamp, DAY};

    fn store() -> EventStore {
        let mut s = EventStore::new();
        s.register_source(Source::new(SourceId::new(0), "s0", SourceKind::Newspaper))
            .unwrap();
        s
    }

    fn snip(id: u32, day: i64, entities: &[u32], terms: &[u32]) -> Snippet {
        let mut b = Snippet::builder(
            SnippetId::new(id),
            SourceId::new(0),
            Timestamp::from_secs(day * DAY),
        )
        .event_type(EventType::Accident);
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        b.build()
    }

    fn ident(mode: MatchMode) -> Identifier {
        let cfg = IdentifyConfig {
            mode,
            maintenance_every: 0,
            ..IdentifyConfig::default()
        };
        Identifier::new(SourceId::new(0), cfg, SketchConfig::default())
    }

    fn ingest(st: &mut EventStore, id: &mut Identifier, s: Snippet) -> IdentifyDecision {
        st.insert(s.clone()).unwrap();
        id.assign(&s, st)
    }

    #[test]
    fn first_snippet_creates_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let d = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        assert!(d.created);
        assert_eq!(d.best_score, 0.0);
        assert_eq!(id.story_count(), 1);
        assert_eq!(id.story_of(SnippetId::new(0)), Some(d.story));
    }

    #[test]
    fn similar_snippets_join_the_same_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        let d1 = ingest(&mut st, &mut id, snip(1, 1, &[1, 2], &[10, 11]));
        assert!(!d1.created);
        assert_eq!(d1.story, d0.story);
        assert_eq!(id.story_count(), 1);
        assert!(d1.best_score > 0.9);
    }

    #[test]
    fn dissimilar_snippets_get_separate_stories() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        let d = ingest(&mut st, &mut id, snip(1, 0, &[7, 8], &[20]));
        assert!(d.created);
        assert_eq!(id.story_count(), 2);
    }

    #[test]
    fn temporal_mode_ignores_out_of_window_candidates() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 2 * DAY });
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        // Identical content but 100 days later: outside the window.
        let d1 = ingest(&mut st, &mut id, snip(1, 100, &[1, 2], &[10]));
        assert!(d1.created);
        assert_ne!(d1.story, d0.story);
        assert_eq!(d1.compared, 0);
    }

    #[test]
    fn complete_mode_chains_across_time() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let d0 = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10]));
        let d1 = ingest(&mut st, &mut id, snip(1, 100, &[1, 2], &[10]));
        assert_eq!(d1.story, d0.story);
        assert!(d1.compared >= 1);
    }

    #[test]
    fn complete_comparisons_grow_with_corpus() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let mut last = 0;
        for i in 0..20 {
            let d = ingest(&mut st, &mut id, snip(i, i as i64, &[i, i + 100], &[i]));
            last = d.compared;
        }
        assert_eq!(last, 19, "complete mode compares against all prior snippets");
    }

    #[test]
    fn temporal_comparisons_stay_bounded() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 3 * DAY });
        let mut last = 0;
        for i in 0..50 {
            let d = ingest(&mut st, &mut id, snip(i, i as i64, &[1], &[1]));
            last = d.compared;
        }
        assert!(last <= 7, "window bounds comparisons, got {last}");
    }

    #[test]
    fn bridging_snippet_merges_stories() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        // Two initially distinct stories...
        let da = ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        let db = ingest(&mut st, &mut id, snip(1, 1, &[3, 4], &[12, 13]));
        assert_ne!(da.story, db.story);
        // ...bridged by a snippet strongly matching both.
        let d = ingest(&mut st, &mut id, snip(2, 2, &[1, 2, 3, 4], &[10, 11, 12, 13]));
        assert_eq!(id.story_count(), 1, "stories should merge");
        assert_eq!(d.merged.len(), 1);
        // All three snippets now share one story.
        let s0 = id.story_of(SnippetId::new(0)).unwrap();
        let s1 = id.story_of(SnippetId::new(1)).unwrap();
        let s2 = id.story_of(SnippetId::new(2)).unwrap();
        assert_eq!(s0, s1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn maintenance_splits_disconnected_story() {
        let mut st = store();
        // High merge threshold so the bridge joins but doesn't merge, low
        // split threshold so the split check uses pure connectivity.
        let cfg = IdentifyConfig {
            mode: MatchMode::Complete,
            match_threshold: 0.2,
            merge_threshold: 0.99,
            split_threshold: 0.3,
            maintenance_every: 0,
            ..IdentifyConfig::default()
        };
        let mut id = Identifier::new(SourceId::new(0), cfg, SketchConfig::default());
        // A story built from a chain a-bridge-b where a and b are
        // unrelated; removing the bridge disconnects them.
        ingest(&mut st, &mut id, snip(0, 0, &[1, 2], &[10, 11]));
        ingest(&mut st, &mut id, snip(1, 1, &[1, 2, 3, 4], &[10, 11, 12, 13]));
        ingest(&mut st, &mut id, snip(2, 2, &[3, 4], &[12, 13]));
        assert_eq!(id.story_count(), 1);
        // Remove the bridge.
        let bridge = st.get(SnippetId::new(1)).unwrap().clone();
        st.remove(SnippetId::new(1)).unwrap();
        id.remove_snippet(&bridge, &st);
        let report = id.maintain(&st);
        // Two members left with sim 0 → still one story of 2? No:
        // stories under 3 members are skipped. Add a third to each side
        // and re-check.
        assert_eq!(report.splits.len(), 0);
        ingest(&mut st, &mut id, snip(3, 0, &[1, 2], &[10, 11]));
        ingest(&mut st, &mut id, snip(4, 2, &[3, 4], &[12, 13]));
        let report = id.maintain(&st);
        assert_eq!(report.splits.len(), 1);
        assert_eq!(id.story_count(), 2);
        // The two sides are now distinct stories.
        let sa = id.story_of(SnippetId::new(0)).unwrap();
        let sb = id.story_of(SnippetId::new(2)).unwrap();
        assert_ne!(sa, sb);
        assert_eq!(id.story_of(SnippetId::new(3)), Some(sa));
        assert_eq!(id.story_of(SnippetId::new(4)), Some(sb));
    }

    #[test]
    fn remove_snippet_drops_empty_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let s = snip(0, 0, &[1], &[10]);
        ingest(&mut st, &mut id, s.clone());
        st.remove(SnippetId::new(0)).unwrap();
        let removed_from = id.remove_snippet(&s, &st);
        assert!(removed_from.is_some());
        assert_eq!(id.story_count(), 0);
        assert_eq!(id.story_of(SnippetId::new(0)), None);
    }

    #[test]
    fn out_of_order_arrival_joins_existing_story() {
        let mut st = store();
        let mut id = ident(MatchMode::Temporal { omega: 5 * DAY });
        ingest(&mut st, &mut id, snip(0, 10, &[1, 2], &[10]));
        // A late-arriving snippet dated *before* the first one.
        let d = ingest(&mut st, &mut id, snip(1, 8, &[1, 2], &[10]));
        assert!(!d.created, "symmetric window must catch late arrivals");
        assert_eq!(id.story_count(), 1);
    }

    #[test]
    fn story_ids_are_partitioned_by_source() {
        let a = Identifier::new(SourceId::new(0), IdentifyConfig::default(), SketchConfig::default());
        let b = Identifier::new(SourceId::new(1), IdentifyConfig::default(), SketchConfig::default());
        let mut a = a;
        let mut b = b;
        assert_ne!(a.fresh_story_id(), b.fresh_story_id());
    }

    #[test]
    fn force_assign_moves_snippet() {
        let mut st = store();
        let mut id = ident(MatchMode::Complete);
        let s = snip(0, 0, &[1], &[10]);
        ingest(&mut st, &mut id, s.clone());
        let target = id.fresh_story_id();
        id.remove_snippet(&s, &st);
        id.force_assign(&s, target);
        assert_eq!(id.story_of(SnippetId::new(0)), Some(target));
        assert_eq!(id.story(target).unwrap().len(), 1);
    }
}
