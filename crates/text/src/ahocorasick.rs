//! Aho–Corasick multi-pattern string matching.
//!
//! The gazetteer must locate thousands of entity aliases in every
//! document; scanning once with an Aho–Corasick automaton is `O(text +
//! matches)` regardless of dictionary size, where naive per-alias search
//! would be `O(text × aliases)`. Built from scratch: byte-level trie,
//! BFS failure links, merged output sets.

use std::collections::{HashMap, VecDeque};

/// A match produced by [`AhoCorasick::find_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the matched pattern (insertion order in the builder).
    pub pattern: usize,
    /// Byte offset of the match start in the haystack.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<u8, u32>,
    fail: u32,
    /// Patterns ending at this node (own + inherited via failure links).
    outputs: Vec<u32>,
}

/// Builder for [`AhoCorasick`].
#[derive(Debug, Default)]
pub struct AhoCorasickBuilder {
    patterns: Vec<Vec<u8>>,
}

impl AhoCorasickBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one pattern; returns its index. Empty patterns are accepted
    /// but never match.
    pub fn add_pattern<P: AsRef<[u8]>>(&mut self, pattern: P) -> usize {
        self.patterns.push(pattern.as_ref().to_vec());
        self.patterns.len() - 1
    }

    /// Add many patterns.
    pub fn add_patterns<I, P>(&mut self, patterns: I) -> &mut Self
    where
        I: IntoIterator<Item = P>,
        P: AsRef<[u8]>,
    {
        for p in patterns {
            self.add_pattern(p);
        }
        self
    }

    /// Construct the automaton.
    pub fn build(&self) -> AhoCorasick {
        let mut nodes = vec![Node::default()]; // root = 0

        // Phase 1: trie.
        for (idx, pat) in self.patterns.iter().enumerate() {
            if pat.is_empty() {
                continue;
            }
            let mut cur = 0u32;
            for &b in pat {
                let next = match nodes[cur as usize].children.get(&b) {
                    Some(&n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node::default());
                        nodes[cur as usize].children.insert(b, n);
                        n
                    }
                };
                cur = next;
            }
            nodes[cur as usize].outputs.push(idx as u32);
        }

        // Phase 2: failure links via BFS; merge output sets down the links.
        let mut queue = VecDeque::new();
        let root_children: Vec<u32> = nodes[0].children.values().copied().collect();
        for child in root_children {
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(u) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> =
                nodes[u as usize].children.iter().map(|(&b, &n)| (b, n)).collect();
            for (b, v) in transitions {
                // Walk failure links of u until a node with a b-child.
                let mut f = nodes[u as usize].fail;
                let fail_target = loop {
                    if let Some(&n) = nodes[f as usize].children.get(&b) {
                        if n != v {
                            break n;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[v as usize].fail = fail_target;
                let inherited = nodes[fail_target as usize].outputs.clone();
                nodes[v as usize].outputs.extend(inherited);
                queue.push_back(v);
            }
        }

        AhoCorasick {
            nodes,
            pattern_lens: self.patterns.iter().map(Vec::len).collect(),
        }
    }
}

/// A compiled Aho–Corasick automaton.
///
/// ```
/// use storypivot_text::AhoCorasickBuilder;
/// let mut b = AhoCorasickBuilder::new();
/// b.add_patterns(["he", "she", "his", "hers"]);
/// let ac = b.build();
/// let matches = ac.find_all(b"ushers");
/// // "she" at 1..4, "he" at 2..4, "hers" at 2..6
/// assert_eq!(matches.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Number of patterns the automaton was built from.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Number of automaton states (diagnostics).
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// Advance from `state` on byte `b`, following failure links.
    #[inline]
    fn step(&self, mut state: u32, b: u8) -> u32 {
        loop {
            if let Some(&next) = self.nodes[state as usize].children.get(&b) {
                return next;
            }
            if state == 0 {
                return 0;
            }
            state = self.nodes[state as usize].fail;
        }
    }

    /// Find **all** (possibly overlapping) pattern occurrences.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut matches = Vec::new();
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            for &pat in &self.nodes[state as usize].outputs {
                let len = self.pattern_lens[pat as usize];
                matches.push(Match {
                    pattern: pat as usize,
                    start: i + 1 - len,
                    end: i + 1,
                });
            }
        }
        matches
    }

    /// Find the leftmost-longest non-overlapping matches: at each
    /// position prefer the longest match starting there, then continue
    /// after its end. This is the semantics the gazetteer wants so that
    /// "United Nations" wins over "United".
    pub fn find_leftmost_longest(&self, haystack: &[u8]) -> Vec<Match> {
        let all = self.find_all(haystack);
        if all.is_empty() {
            return all;
        }
        // Group by start, keep the longest per start.
        let mut best_at: HashMap<usize, Match> = HashMap::new();
        for m in all {
            best_at
                .entry(m.start)
                .and_modify(|cur| {
                    if m.end > cur.end {
                        *cur = m;
                    }
                })
                .or_insert(m);
        }
        let mut starts: Vec<usize> = best_at.keys().copied().collect();
        starts.sort_unstable();
        let mut out = Vec::new();
        let mut cursor = 0usize;
        for s in starts {
            let m = best_at[&s];
            if m.start >= cursor {
                cursor = m.end;
                out.push(m);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(patterns: &[&str]) -> AhoCorasick {
        let mut b = AhoCorasickBuilder::new();
        b.add_patterns(patterns);
        b.build()
    }

    /// Brute-force oracle: find all occurrences of every pattern.
    fn naive_find_all(patterns: &[&str], haystack: &str) -> Vec<Match> {
        let hay = haystack.as_bytes();
        let mut out = Vec::new();
        for (pi, p) in patterns.iter().enumerate() {
            let pb = p.as_bytes();
            if pb.is_empty() || pb.len() > hay.len() {
                continue;
            }
            for start in 0..=hay.len().saturating_sub(pb.len()) {
                if &hay[start..start + pb.len()] == pb {
                    out.push(Match {
                        pattern: pi,
                        start,
                        end: start + pb.len(),
                    });
                }
            }
        }
        out.sort_by_key(|m| (m.end, m.start, m.pattern));
        out
    }

    #[test]
    fn classic_ushers_example() {
        let patterns = ["he", "she", "his", "hers"];
        let ac = build(&patterns);
        let mut got = ac.find_all(b"ushers");
        got.sort_by_key(|m| (m.end, m.start, m.pattern));
        assert_eq!(got, naive_find_all(&patterns, "ushers"));
    }

    #[test]
    fn matches_agree_with_naive_oracle() {
        let patterns = ["a", "ab", "bab", "bc", "bca", "c", "caa"];
        let ac = build(&patterns);
        for hay in ["abccab", "bcaabab", "", "zzz", "aaaa", "cabcabca"] {
            let mut got = ac.find_all(hay.as_bytes());
            got.sort_by_key(|m| (m.end, m.start, m.pattern));
            assert_eq!(got, naive_find_all(&patterns, hay), "haystack {hay:?}");
        }
    }

    #[test]
    fn leftmost_longest_prefers_long_entity() {
        let patterns = ["united", "united nations", "nations"];
        let ac = build(&patterns);
        let got = ac.find_leftmost_longest(b"the united nations met");
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pattern, 1);
        assert_eq!(&b"the united nations met"[got[0].start..got[0].end], b"united nations");
    }

    #[test]
    fn leftmost_longest_non_overlapping() {
        let patterns = ["ab", "bc"];
        let ac = build(&patterns);
        let got = ac.find_leftmost_longest(b"abc");
        // "ab" wins at 0; "bc" overlaps and is dropped.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].pattern, 0);
    }

    #[test]
    fn duplicate_patterns_both_report() {
        let patterns = ["x", "x"];
        let ac = build(&patterns);
        let got = ac.find_all(b"x");
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn empty_pattern_never_matches() {
        let patterns = ["", "a"];
        let ac = build(&patterns);
        let got = ac.find_all(b"aa");
        assert!(got.iter().all(|m| m.pattern == 1));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn no_patterns_no_matches() {
        let ac = AhoCorasickBuilder::new().build();
        assert!(ac.find_all(b"anything").is_empty());
        assert_eq!(ac.pattern_count(), 0);
    }

    #[test]
    fn overlapping_suffix_patterns() {
        let patterns = ["ukraine", "kraine", "raine"];
        let ac = build(&patterns);
        let got = ac.find_all(b"ukraine");
        assert_eq!(got.len(), 3);
        let mut pats: Vec<usize> = got.iter().map(|m| m.pattern).collect();
        pats.sort_unstable();
        assert_eq!(pats, vec![0, 1, 2]);
    }

    #[test]
    fn randomized_against_oracle() {
        // Deterministic pseudo-random strings over a tiny alphabet to
        // stress failure links.
        let patterns = ["aa", "aba", "bb", "abab", "baa", "b"];
        let ac = build(&patterns);
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..50 {
            let mut hay = String::new();
            for _ in 0..40 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                hay.push(if (seed >> 33) & 1 == 0 { 'a' } else { 'b' });
            }
            let mut got = ac.find_all(hay.as_bytes());
            got.sort_by_key(|m| (m.end, m.start, m.pattern));
            assert_eq!(got, naive_find_all(&patterns, &hay), "haystack {hay}");
        }
    }
}
