//! Replayable engine operations — the payloads of a per-shard
//! write-ahead log.
//!
//! `pivotd` journals every state-changing request *before* applying it
//! (see `storypivot-serve`); after a crash, replaying the journal on
//! top of the newest checkpoint reconstructs the exact pre-crash
//! engine. Three operations change engine state over the wire, and each
//! one is its own record:
//!
//! ```text
//! op := 0x01 | source        (register a source)
//!     | 0x02 | snippet       (ingest one snippet)
//!     | 0x03 | doc u32       (remove a document everywhere)
//! ```
//!
//! Sources and snippets reuse the store's binary codec, so a journaled
//! ingest is byte-identical to a checkpointed or served one.
//!
//! Replay is **idempotent by construction**: a checkpoint is written
//! first and the journal truncated second, so a crash between the two
//! leaves ops in the journal that the checkpoint already contains.
//! [`replay_op`] therefore treats "already there" (duplicate snippet or
//! source) and "already gone" (unknown document) as successful no-ops
//! and only propagates errors that indicate real corruption.

use storypivot_store::codec::{decode_snippet, decode_source, encode_snippet, encode_source};
use storypivot_substrate::buf::{Buf, BufMut};
use storypivot_types::{DocId, Error, Result, Snippet, Source};

use crate::pipeline::DynamicPivot;

const OP_ADD_SOURCE: u8 = 0x01;
const OP_INGEST: u8 = 0x02;
const OP_REMOVE_DOC: u8 = 0x03;

/// One journaled engine mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayOp {
    /// Register a source (with its server-allocated id).
    AddSource(Source),
    /// Ingest one snippet.
    Ingest(Snippet),
    /// Remove a document and every snippet extracted from it.
    RemoveDoc(DocId),
}

impl ReplayOp {
    /// Append the binary encoding.
    pub fn encode(&self, buf: &mut impl BufMut) {
        match self {
            ReplayOp::AddSource(source) => {
                buf.put_u8(OP_ADD_SOURCE);
                encode_source(buf, source);
            }
            ReplayOp::Ingest(snippet) => {
                buf.put_u8(OP_INGEST);
                encode_snippet(buf, snippet);
            }
            ReplayOp::RemoveDoc(doc) => {
                buf.put_u8(OP_REMOVE_DOC);
                buf.put_u32_le(doc.raw());
            }
        }
    }

    /// The encoding as a fresh byte vector (journal payload form).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode(&mut out);
        out
    }

    /// Decode one op from a full journal payload; trailing bytes are a
    /// codec error.
    pub fn decode(mut payload: &[u8]) -> Result<ReplayOp> {
        let buf = &mut payload;
        if !buf.has_remaining() {
            return Err(Error::Codec("empty replay op".into()));
        }
        let op = match buf.get_u8() {
            OP_ADD_SOURCE => ReplayOp::AddSource(decode_source(buf)?),
            OP_INGEST => ReplayOp::Ingest(decode_snippet(buf)?),
            OP_REMOVE_DOC => {
                if buf.remaining() < 4 {
                    return Err(Error::Codec("truncated remove-doc op".into()));
                }
                ReplayOp::RemoveDoc(DocId::new(buf.get_u32_le()))
            }
            other => return Err(Error::Codec(format!("unknown replay op kind 0x{other:02x}"))),
        };
        if buf.has_remaining() {
            return Err(Error::Codec(format!(
                "{} trailing bytes after replay op",
                buf.remaining()
            )));
        }
        Ok(op)
    }

    /// A stable 64-bit identity for quarantine bookkeeping: FNV-1a over
    /// the encoded bytes, so the same logical op hashes identically
    /// across process restarts (unlike `std`'s randomized hasher).
    pub fn fingerprint(&self) -> u64 {
        let bytes = self.to_bytes();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Apply one op during recovery. Returns `true` when the op changed
/// state, `false` when it was an idempotent no-op (already applied via
/// the checkpoint it rode behind); corruption-class errors propagate.
pub fn replay_op(engine: &mut DynamicPivot, op: &ReplayOp) -> Result<bool> {
    let outcome = match op {
        ReplayOp::AddSource(source) => engine
            .pivot_mut()
            .add_source_registered(source.clone())
            .map(|_| ()),
        ReplayOp::Ingest(snippet) => engine.ingest(snippet.clone()).map(|_| ()),
        ReplayOp::RemoveDoc(doc) => engine.pivot_mut().remove_document(*doc).map(|_| ()),
    };
    match outcome {
        Ok(()) => Ok(true),
        // The checkpoint this journal tail rides behind already holds
        // the effect (crash landed between checkpoint and truncate).
        Err(Error::Duplicate(_)) | Err(Error::UnknownDocument(_)) => Ok(false),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotConfig;
    use crate::pipeline::PipelinePolicy;
    use storypivot_types::{EntityId, SnippetId, SourceId, SourceKind, TermId, Timestamp};

    fn fresh_engine() -> DynamicPivot {
        DynamicPivot::new(
            PivotConfig::default(),
            PipelinePolicy {
                align_every: 0,
                ..PipelinePolicy::default()
            },
        )
    }

    fn snip(id: u32) -> Snippet {
        Snippet::builder(SnippetId::new(id), SourceId::new(0), Timestamp::from_secs(id as i64))
            .doc(DocId::new(id / 2))
            .entity(EntityId::new(1), 1.0)
            .term(TermId::new(2), 0.5)
            .headline(format!("op {id}"))
            .build()
    }

    #[test]
    fn every_op_round_trips() {
        let ops = [
            ReplayOp::AddSource(Source::new(SourceId::new(3), "wire — ütf8", SourceKind::Wire)),
            ReplayOp::Ingest(snip(9)),
            ReplayOp::RemoveDoc(DocId::new(17)),
        ];
        for op in ops {
            let bytes = op.to_bytes();
            assert_eq!(ReplayOp::decode(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn garbage_and_trailing_bytes_are_codec_errors() {
        assert!(matches!(ReplayOp::decode(&[]), Err(Error::Codec(_))));
        assert!(matches!(ReplayOp::decode(&[0x7F]), Err(Error::Codec(_))));
        let mut bytes = ReplayOp::RemoveDoc(DocId::new(1)).to_bytes();
        bytes.push(0xEE);
        assert!(matches!(ReplayOp::decode(&bytes), Err(Error::Codec(_))));
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_ops() {
        let a = ReplayOp::Ingest(snip(1));
        let b = ReplayOp::Ingest(snip(2));
        assert_eq!(a.fingerprint(), ReplayOp::decode(&a.to_bytes()).unwrap().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn replay_applies_in_order_and_tolerates_duplicates() {
        let mut engine = fresh_engine();
        let source = Source::new(SourceId::new(0), "s0", SourceKind::Wire);
        assert!(replay_op(&mut engine, &ReplayOp::AddSource(source.clone())).unwrap());
        assert!(replay_op(&mut engine, &ReplayOp::Ingest(snip(0))).unwrap());
        assert!(replay_op(&mut engine, &ReplayOp::Ingest(snip(1))).unwrap());
        // Double-applied ops (checkpoint/truncate crash window) no-op.
        assert!(!replay_op(&mut engine, &ReplayOp::AddSource(source)).unwrap());
        assert!(!replay_op(&mut engine, &ReplayOp::Ingest(snip(1))).unwrap());
        assert!(replay_op(&mut engine, &ReplayOp::RemoveDoc(DocId::new(0))).unwrap());
        assert!(!replay_op(&mut engine, &ReplayOp::RemoveDoc(DocId::new(0))).unwrap());
        assert_eq!(engine.pivot().store().len(), 0);
    }
}
