//! Property tests for the text substrate.

use proptest::prelude::*;

use storypivot_text::{porter_stem, tokenize, AhoCorasickBuilder, GazetteerBuilder, Match};
use storypivot_types::EntityId;

// ---- tokenizer -------------------------------------------------------

proptest! {
    #[test]
    fn tokenizer_never_panics_and_spans_are_valid(text in "\\PC{0,200}") {
        let tokens = tokenize(&text);
        for t in &tokens {
            prop_assert!(t.start < t.end);
            prop_assert!(t.end <= text.len());
            // Spans are on char boundaries (surface() must not panic).
            let _ = t.surface(&text);
            prop_assert!(!t.norm.is_empty());
        }
        // Tokens are ordered and non-overlapping.
        for w in tokens.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn tokenization_is_deterministic(text in "\\PC{0,100}") {
        prop_assert_eq!(tokenize(&text), tokenize(&text));
    }

    #[test]
    fn norms_are_lowercase(text in "[a-zA-Z' .,-]{0,80}") {
        for t in tokenize(&text) {
            prop_assert_eq!(t.norm.to_lowercase(), t.norm.clone(), "norm {:?}", t.norm);
        }
    }
}

// ---- stemmer -----------------------------------------------------------

proptest! {
    #[test]
    fn stemmer_never_panics_or_grows_much(word in "[a-z]{0,20}") {
        let stem = porter_stem(&word);
        // Porter only ever appends an 'e' after removals; it never grows
        // the word by more than one character.
        prop_assert!(stem.len() <= word.len() + 1, "{word} -> {stem}");
        prop_assert!(stem.chars().all(|c| c.is_ascii_lowercase()) || stem.is_empty());
    }

    // NOTE: the Porter algorithm is *not* idempotent in general (e.g.
    // "uase" → "uas" → "ua": dropping a final 'e' can expose a plural
    // 's'), so we assert determinism and monotone shrinking under
    // re-stemming instead.
    #[test]
    fn restemming_is_deterministic_and_never_grows(word in "[a-z]{3,15}") {
        let once = porter_stem(&word);
        prop_assert_eq!(porter_stem(&word), once.clone());
        let twice = porter_stem(&once);
        prop_assert!(twice.len() <= once.len(), "{word} -> {once} -> {twice}");
    }
}

// ---- aho-corasick vs naive oracle --------------------------------------

fn naive_find_all(patterns: &[String], haystack: &[u8]) -> Vec<Match> {
    let mut out = Vec::new();
    for (pi, p) in patterns.iter().enumerate() {
        let pb = p.as_bytes();
        if pb.is_empty() || pb.len() > haystack.len() {
            continue;
        }
        for start in 0..=haystack.len() - pb.len() {
            if &haystack[start..start + pb.len()] == pb {
                out.push(Match {
                    pattern: pi,
                    start,
                    end: start + pb.len(),
                });
            }
        }
    }
    out.sort_by_key(|m| (m.start, m.end, m.pattern));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn aho_corasick_matches_naive_search(
        patterns in proptest::collection::vec("[ab]{1,4}", 1..8),
        haystack in "[abc]{0,60}",
    ) {
        let mut builder = AhoCorasickBuilder::new();
        builder.add_patterns(patterns.iter());
        let ac = builder.build();
        let mut got = ac.find_all(haystack.as_bytes());
        got.sort_by_key(|m| (m.start, m.end, m.pattern));
        prop_assert_eq!(got, naive_find_all(&patterns, haystack.as_bytes()));
    }

    #[test]
    fn leftmost_longest_is_non_overlapping_and_maximal(
        patterns in proptest::collection::vec("[ab]{1,4}", 1..8),
        haystack in "[ab]{0,50}",
    ) {
        let mut builder = AhoCorasickBuilder::new();
        builder.add_patterns(patterns.iter());
        let ac = builder.build();
        let selected = ac.find_leftmost_longest(haystack.as_bytes());
        for w in selected.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlap: {:?}", w);
        }
    }
}

// ---- gazetteer ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn gazetteer_hits_are_registered_entities_with_valid_spans(
        names in proptest::collection::hash_set("[a-z]{3,8}", 1..10),
        text in "[a-z ]{0,120}",
    ) {
        let names: Vec<String> = names.into_iter().collect();
        let mut b = GazetteerBuilder::new();
        for (i, n) in names.iter().enumerate() {
            b.add_entity(EntityId::new(i as u32), n, &[]);
        }
        let g = b.build();
        let tokens = tokenize(&text);
        for hit in g.recognize(&tokens) {
            prop_assert!(hit.token_start < hit.token_end);
            prop_assert!(hit.token_end <= tokens.len());
            prop_assert!((hit.entity.index()) < names.len());
            // The covered token must equal the entity's (single-token) name.
            let covered = &tokens[hit.token_start].norm;
            prop_assert_eq!(covered, &names[hit.entity.index()]);
        }
    }

    #[test]
    fn every_exact_mention_is_found(
        name in "[a-z]{4,8}",
        prefix in "[a-z]{0,6}",
        suffix in "[a-z]{0,6}",
    ) {
        let mut b = GazetteerBuilder::new();
        b.add_entity(EntityId::new(0), &name, &[]);
        let g = b.build();
        let text = format!("{prefix} {name} {suffix} {name}");
        let hits = g.recognize(&tokenize(&text));
        // The name appears exactly twice as a standalone token — unless
        // prefix/suffix happen to equal it, in which case more.
        let expected = 2
            + usize::from(prefix == name)
            + usize::from(suffix == name);
        prop_assert_eq!(hits.len(), expected);
    }
}
