//! Decision explanations (paper §4.2.1).
//!
//! The demo modules exist to "help the user to understand why our
//! algorithms make certain decisions through visualizing" them: why a
//! snippet sits in its story, and which cross-source counterparts tie a
//! story together. This module computes those explanations from live
//! engine state.

use storypivot_types::{SnippetId, SourceId, StoryId};

use crate::pivot::StoryPivot;
use crate::sim::SimWeights;

/// The per-component breakdown of one snippet–snippet similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimBreakdown {
    /// Entity overlap (weighted Jaccard), unweighted by the mix.
    pub entity: f64,
    /// Description-term cosine.
    pub term: f64,
    /// Event-type affinity.
    pub event: f64,
    /// The combined, weight-mixed score.
    pub combined: f64,
    /// The component contributing most to `combined` *after* weighting
    /// ("entities", "description", or "event type").
    pub dominant: &'static str,
}

impl SimBreakdown {
    fn between(
        a: &storypivot_types::Snippet,
        b: &storypivot_types::Snippet,
        w: &SimWeights,
    ) -> Self {
        let entity = a.entities().weighted_jaccard(b.entities());
        let term = a.terms().cosine(b.terms());
        let event = a.content.event_type.affinity(b.content.event_type);
        let (we, wt, wv) = (w.entity * entity, w.term * term, w.event * event);
        let dominant = if we >= wt && we >= wv {
            "entities"
        } else if wt >= wv {
            "description"
        } else {
            "event type"
        };
        SimBreakdown {
            entity,
            term,
            event,
            combined: w.snippet_sim(a, b),
            dominant,
        }
    }

    /// The dominant component name (weighted; see the `dominant` field).
    pub fn dominant(&self) -> &'static str {
        self.dominant
    }
}

/// One neighbor supporting (or contesting) a snippet's assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborEvidence {
    /// The neighboring snippet.
    pub snippet: SnippetId,
    /// Its source.
    pub source: SourceId,
    /// Its per-source story.
    pub story: Option<StoryId>,
    /// Similarity breakdown to the explained snippet.
    pub sim: SimBreakdown,
    /// Whether the neighbor shares the explained snippet's story.
    pub same_story: bool,
}

/// Why a snippet is where it is.
#[derive(Debug, Clone, PartialEq)]
pub struct Explanation {
    /// The explained snippet.
    pub snippet: SnippetId,
    /// Its per-source story.
    pub story: Option<StoryId>,
    /// Strongest same-story neighbors (the evidence *for* the
    /// assignment), descending by similarity.
    pub supporting: Vec<NeighborEvidence>,
    /// Strongest other-story neighbors within the same source (what the
    /// snippet was *not* matched with — the paper's Figure 5 shows
    /// exactly this for `v¹₂` vs `v¹₄`), descending by similarity.
    pub contesting: Vec<NeighborEvidence>,
}

/// Explain a snippet's story assignment: its strongest same-story and
/// other-story neighbors within its source, each with a component
/// breakdown. `k` bounds each list.
pub fn explain_assignment(pivot: &StoryPivot, snippet: SnippetId, k: usize) -> Option<Explanation> {
    let v = pivot.store().get(snippet)?;
    let story = pivot.story_of(snippet);
    let weights = pivot.config().identify.weights;

    let mut supporting = Vec::new();
    let mut contesting = Vec::new();
    for other in pivot.store().snippets_of_source(v.source) {
        if other.id == snippet {
            continue;
        }
        let other_story = pivot.story_of(other.id);
        let sim = SimBreakdown::between(v, other, &weights);
        if sim.combined == 0.0 {
            continue;
        }
        let evidence = NeighborEvidence {
            snippet: other.id,
            source: other.source,
            story: other_story,
            same_story: story.is_some() && other_story == story,
            sim,
        };
        if evidence.same_story {
            supporting.push(evidence);
        } else {
            contesting.push(evidence);
        }
    }
    let by_sim = |a: &NeighborEvidence, b: &NeighborEvidence| {
        b.sim
            .combined
            .total_cmp(&a.sim.combined)
            .then(a.snippet.cmp(&b.snippet))
    };
    supporting.sort_by(by_sim);
    contesting.sort_by(by_sim);
    supporting.truncate(k);
    contesting.truncate(k);

    Some(Explanation {
        snippet,
        story,
        supporting,
        contesting,
    })
}

/// The cross-source counterparts holding a snippet inside its *global*
/// story (why it is `Aligning`): other-source members within the
/// counterpart lag, with breakdowns, descending by similarity.
pub fn explain_counterparts(
    pivot: &StoryPivot,
    snippet: SnippetId,
    k: usize,
) -> Vec<NeighborEvidence> {
    let Some(v) = pivot.store().get(snippet) else {
        return Vec::new();
    };
    let Some(gid) = pivot.global_of(snippet) else {
        return Vec::new();
    };
    let Some(g) = pivot.alignment().and_then(|o| o.global_story(gid)) else {
        return Vec::new();
    };
    let weights = pivot.config().identify.weights;
    let lag = pivot.config().align.counterpart_lag;
    let mut out = Vec::new();
    for &(m, _) in &g.members {
        let Some(other) = pivot.store().get(m) else { continue };
        if other.source == v.source || other.timestamp.distance(v.timestamp) > lag {
            continue;
        }
        let sim = SimBreakdown::between(v, other, &weights);
        if sim.combined == 0.0 {
            continue;
        }
        out.push(NeighborEvidence {
            snippet: m,
            source: other.source,
            story: pivot.story_of(m),
            same_story: false,
            sim,
        });
    }
    out.sort_by(|a, b| {
        b.sim
            .combined
            .total_cmp(&a.sim.combined)
            .then(a.snippet.cmp(&b.snippet))
    });
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PivotConfig;
    use storypivot_types::{EntityId, EventType, Snippet, SourceKind, TermId, Timestamp, DAY};

    fn fixture() -> (StoryPivot, Vec<SnippetId>) {
        let mut pivot = StoryPivot::new(PivotConfig::default());
        let a = pivot.add_source("a", SourceKind::Newspaper);
        let b = pivot.add_source("b", SourceKind::Newspaper);
        let mut ids = Vec::new();
        let mk = |pivot: &mut StoryPivot, src, day: i64, e: u32, t: u32| {
            let id = pivot.fresh_snippet_id();
            let s = Snippet::builder(id, src, Timestamp::from_secs(day * DAY))
                .entity(EntityId::new(e), 1.0)
                .entity(EntityId::new(e + 1), 1.0)
                .term(TermId::new(t), 1.0)
                .event_type(EventType::Accident)
                .build();
            pivot.ingest(s).unwrap();
            id
        };
        // Source a: crash story (0,1) + sports story (2).
        ids.push(mk(&mut pivot, a, 0, 1, 10)); // 0
        ids.push(mk(&mut pivot, a, 1, 1, 10)); // 1
        ids.push(mk(&mut pivot, a, 0, 50, 60)); // 2
        // Source b mirrors the crash story.
        ids.push(mk(&mut pivot, b, 0, 1, 10)); // 3
        pivot.align();
        (pivot, ids)
    }

    #[test]
    fn supporting_evidence_is_same_story_and_ranked() {
        let (pivot, ids) = fixture();
        let ex = explain_assignment(&pivot, ids[0], 5).unwrap();
        assert_eq!(ex.story, pivot.story_of(ids[0]));
        assert_eq!(ex.supporting.len(), 1);
        assert_eq!(ex.supporting[0].snippet, ids[1]);
        assert!(ex.supporting[0].same_story);
        assert!(ex.supporting[0].sim.combined > 0.9);
        assert_eq!(ex.supporting[0].sim.dominant(), "entities");
    }

    #[test]
    fn contesting_evidence_shows_the_road_not_taken() {
        let (pivot, ids) = fixture();
        let ex = explain_assignment(&pivot, ids[0], 5).unwrap();
        // The sports snippet shares only the event type: weak contest.
        assert_eq!(ex.contesting.len(), 1);
        assert_eq!(ex.contesting[0].snippet, ids[2]);
        assert!(!ex.contesting[0].same_story);
        assert!(ex.contesting[0].sim.combined < 0.2);
        assert_eq!(ex.contesting[0].sim.dominant(), "event type");
    }

    #[test]
    fn counterparts_come_from_other_sources() {
        let (pivot, ids) = fixture();
        let cps = explain_counterparts(&pivot, ids[0], 5);
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].snippet, ids[3]);
        assert_ne!(cps[0].source, pivot.store().get(ids[0]).unwrap().source);
    }

    #[test]
    fn unknown_snippet_explains_to_none() {
        let (pivot, _) = fixture();
        assert!(explain_assignment(&pivot, SnippetId::new(999), 3).is_none());
        assert!(explain_counterparts(&pivot, SnippetId::new(999), 3).is_empty());
    }

    #[test]
    fn k_truncates_lists() {
        let (pivot, ids) = fixture();
        let ex = explain_assignment(&pivot, ids[0], 0).unwrap();
        assert!(ex.supporting.is_empty());
        assert!(ex.contesting.is_empty());
    }
}
