//! Render generated snippets as article text.
//!
//! The extraction pipeline (tokenizer → gazetteer NER → TF-IDF) needs
//! real text to chew on. This module turns a generated snippet back into
//! a small article whose title and body mention the snippet's entities
//! (by display name) and description terms — so that running the full
//! pipeline over the rendered document recovers (a noisy version of) the
//! original annotation.

use storypivot_sketch::mix64;
use storypivot_types::Snippet;

/// Sentence templates; `{e}` slots take entity names, `{t}` slots take
/// description terms.
const TEMPLATES: &[&str] = &[
    "Officials in {e} said the {t} continued as {e2} observers arrived.",
    "Reports from {e} describe {t} involving {e2}.",
    "The situation around {e} escalated after the {t}, sources close to {e2} said.",
    "Analysts linked the {t} in {e} to earlier developments concerning {e2}.",
    "Witnesses reported {t} near {e}, while {e2} declined to comment.",
];

/// Render one snippet as `(title, body)` using the corpus catalogs.
///
/// Deterministic: the same snippet renders to the same text.
pub fn render_document(
    snippet: &Snippet,
    entity_names: &[String],
    term_names: &[String],
) -> (String, String) {
    let entities: Vec<&str> = snippet
        .entities()
        .keys()
        .filter_map(|e| entity_names.get(e.index()).map(String::as_str))
        .collect();
    let terms: Vec<&str> = snippet
        .terms()
        .keys()
        .filter_map(|t| term_names.get(t.index()).map(String::as_str))
        .collect();

    let pick = |slice: &[&str], h: u64, fallback: &'static str| -> String {
        if slice.is_empty() {
            fallback.to_string()
        } else {
            slice[(h % slice.len() as u64) as usize].to_string()
        }
    };

    let seed = mix64(snippet.id.raw() as u64 ^ 0xD0C5);
    let title = format!(
        "{} {} over {}",
        capitalize(&pick(&terms, seed, "report")),
        snippet.content.event_type,
        pick(&entities, mix64(seed), "the region"),
    );

    let mut body = String::new();
    let sentences = 2 + (seed % 3) as usize;
    let mut h = mix64(seed ^ 0xB0D7);
    for i in 0..sentences {
        let template = TEMPLATES[(h % TEMPLATES.len() as u64) as usize];
        h = mix64(h);
        let e = pick(&entities, h, "the region");
        h = mix64(h);
        let e2 = pick(&entities, h, "international observers");
        h = mix64(h);
        let t = pick(&terms, h.wrapping_add(i as u64), "unrest");
        h = mix64(h);
        let sentence = template
            .replacen("{e}", &e, 1)
            .replacen("{e2}", &e2, 1)
            .replacen("{t}", &t, 1)
            // A template may use {e} twice before {e2}; clean leftovers.
            .replace("{e}", &e)
            .replace("{e2}", &e2)
            .replace("{t}", &t);
        body.push_str(&sentence);
        body.push(' ');
    }
    // Mention every entity at least once so gazetteer recall is possible.
    for e in &entities {
        body.push_str(&format!("The role of {e} remains under review. "));
    }
    for t in &terms {
        body.push_str(&format!("Observers again noted the {t}. "));
    }
    (title, body.trim_end().to_string())
}

fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EntityId, EventType, SnippetId, SourceId, TermId, Timestamp};

    fn sample() -> (Snippet, Vec<String>, Vec<String>) {
        let s = Snippet::builder(SnippetId::new(3), SourceId::new(0), Timestamp::EPOCH)
            .entity(EntityId::new(0), 1.0)
            .entity(EntityId::new(1), 1.0)
            .term(TermId::new(0), 1.0)
            .term(TermId::new(1), 1.0)
            .event_type(EventType::Conflict)
            .build();
        let entities = vec!["Velonia".to_string(), "Kamara Front".to_string()];
        let terms = vec!["skirmish".to_string(), "blockade".to_string()];
        (s, entities, terms)
    }

    #[test]
    fn rendering_is_deterministic() {
        let (s, e, t) = sample();
        assert_eq!(render_document(&s, &e, &t), render_document(&s, &e, &t));
    }

    #[test]
    fn every_entity_and_term_is_mentioned() {
        let (s, e, t) = sample();
        let (title, body) = render_document(&s, &e, &t);
        let text = format!("{title} {body}");
        for name in &e {
            assert!(text.contains(name), "missing entity {name} in: {text}");
        }
        for term in &t {
            assert!(text.contains(term), "missing term {term} in: {text}");
        }
    }

    #[test]
    fn no_unfilled_template_slots() {
        let (s, e, t) = sample();
        let (title, body) = render_document(&s, &e, &t);
        for slot in ["{e}", "{e2}", "{t}"] {
            assert!(!title.contains(slot));
            assert!(!body.contains(slot), "unfilled slot in: {body}");
        }
    }

    #[test]
    fn empty_content_still_renders() {
        let s = Snippet::builder(SnippetId::new(0), SourceId::new(0), Timestamp::EPOCH).build();
        let (title, body) = render_document(&s, &[], &[]);
        assert!(!title.is_empty());
        assert!(!body.is_empty());
    }

    #[test]
    fn different_snippets_render_differently() {
        let (s, e, t) = sample();
        let mut s2 = s.clone();
        s2.id = SnippetId::new(4);
        assert_ne!(render_document(&s, &e, &t), render_document(&s2, &e, &t));
    }
}
