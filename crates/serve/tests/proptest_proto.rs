//! Property tests: every wire-protocol frame round-trips through
//! encode → frame → read_frame → decode for randomized contents, the
//! borrowed decode path accepts/rejects exactly what the owned path
//! does, and the frame reader never panics on arbitrary byte soup.

use storypivot_serve::proto::{
    frame, frame_ready, read_frame, Request, Response, StorySummary, MAX_FRAME_LEN,
};
use storypivot_serve::stats::{ServeStats, ShardStats};
use storypivot_substrate::prop;
use storypivot_substrate::rng::{RngExt, StdRng};
use storypivot_types::{
    DocId, EntityId, EventType, Snippet, SnippetId, SourceId, SourceKind, StoryId, TermId,
    TimeRange, Timestamp,
};

fn random_weight(rng: &mut StdRng) -> f32 {
    // Sixteenths are exactly representable, so equality after the
    // bit-level round-trip is exact equality of the original value.
    rng.random_range(1..2000u32) as f32 / 16.0
}

fn random_snippet(rng: &mut StdRng) -> Snippet {
    let mut b = Snippet::builder(
        SnippetId::new(rng.random()),
        SourceId::new(rng.random_range(0..256u32)),
        Timestamp::from_secs(rng.random_range(-4_000_000_000i64..4_000_000_000)),
    )
    .doc(DocId::new(rng.random()))
    .event_type(EventType::ALL[rng.random_range(0..EventType::ALL.len())])
    .headline(prop::unicode_string(rng, 0, 40));
    for _ in 0..rng.random_range(0..6usize) {
        b = b.entity(EntityId::new(rng.random_range(0..10_000u32)), random_weight(rng));
    }
    for _ in 0..rng.random_range(0..6usize) {
        b = b.term(TermId::new(rng.random_range(0..10_000u32)), random_weight(rng));
    }
    b.build()
}

fn random_summary(rng: &mut StdRng) -> StorySummary {
    StorySummary {
        id: StoryId::new(rng.random()),
        source: SourceId::new(rng.random_range(0..256u32)),
        lifespan: TimeRange::new(
            Timestamp::from_secs(rng.random_range(-1_000_000i64..1_000_000)),
            Timestamp::from_secs(rng.random_range(-1_000_000i64..1_000_000)),
        ),
        members: prop::vec_with(rng, 0, 12, |r| SnippetId::new(r.random())),
    }
}

fn random_shard_stats(rng: &mut StdRng) -> ShardStats {
    ShardStats {
        shard: rng.random_range(0..64u32),
        sources: rng.random_range(0..256u32),
        queue_depth: rng.random(),
        queue_capacity: rng.random(),
        stories: rng.random_range(0..1u64 << 32),
        snippets: rng.random(),
        ingested: rng.random(),
        queries: rng.random(),
        busy_rejections: rng.random(),
        ingest_count: rng.random(),
        ingest_p50_ns: rng.random(),
        ingest_p95_ns: rng.random(),
        ingest_p99_ns: rng.random(),
        wal_bytes: rng.random(),
        last_checkpoint_age_ops: rng.random(),
        restarts: rng.random(),
        quarantined: rng.random(),
    }
}

fn random_request(rng: &mut StdRng) -> Request {
    match rng.random_range(0..9u32) {
        0 => Request::AddSource {
            name: prop::unicode_string(rng, 0, 30),
            kind: SourceKind::ALL[rng.random_range(0..SourceKind::ALL.len())],
            lag: rng.random_range(-1_000_000i64..1_000_000),
        },
        1 => Request::IngestSnippet(random_snippet(rng)),
        2 => Request::IngestBatch(prop::vec_with(rng, 0, 8, random_snippet)),
        3 => Request::QueryStories,
        4 => Request::GetStory(StoryId::new(rng.random())),
        5 => Request::RemoveDoc(DocId::new(rng.random())),
        6 => Request::Stats,
        7 => Request::ReplSubscribe {
            shard: rng.random_range(0..64u32),
            generation: rng.random(),
            wal_offset: rng.random(),
        },
        _ => Request::Shutdown,
    }
}

fn random_response(rng: &mut StdRng) -> Response {
    match rng.random_range(0..14u32) {
        0 => Response::SourceAdded(SourceId::new(rng.random_range(0..256u32))),
        1 => Response::Ingested(StoryId::new(rng.random())),
        2 => Response::BatchIngested(rng.random()),
        3 => Response::Stories(prop::vec_with(rng, 0, 6, random_summary)),
        4 => Response::Story(random_summary(rng)),
        5 => Response::Removed(rng.random()),
        6 => Response::Stats(ServeStats {
            shards: prop::vec_with(rng, 0, 8, random_shard_stats),
        }),
        7 => Response::ShutdownAck,
        8 => Response::Busy {
            retry_after_ms: rng.random(),
        },
        9 => Response::NotLeader {
            leader: prop::unicode_string(rng, 0, 40),
        },
        10 => Response::ReplFrame {
            generation: rng.random(),
            next_offset: rng.random(),
            leader_wal_len: rng.random(),
            leader_ops: rng.random(),
            records: prop::vec_with(rng, 0, 64, |r| r.random()),
        },
        11 => Response::ReplCheckpoint {
            generation: rng.random(),
            checkpoint: prop::vec_with(rng, 0, 64, |r| r.random()),
        },
        12 => Response::Shed {
            retry_after_ms: rng.random(),
        },
        _ => Response::Error {
            code: rng.random(),
            message: prop::unicode_string(rng, 0, 60),
        },
    }
}

#[test]
fn prop_requests_round_trip() {
    prop::run(256, |rng| {
        let req = random_request(rng);
        let bytes = frame(|b| req.encode(b));
        let mut r: &[u8] = &bytes;
        let payload = read_frame(&mut r).expect("well-formed frame").expect("non-empty");
        assert_eq!(Request::decode(&payload).expect("decodes"), req);
        assert!(r.is_empty(), "no bytes left after one frame");
    });
}

#[test]
fn prop_responses_round_trip() {
    prop::run(256, |rng| {
        let resp = random_response(rng);
        let bytes = frame(|b| resp.encode(b));
        let mut r: &[u8] = &bytes;
        let payload = read_frame(&mut r).expect("well-formed frame").expect("non-empty");
        assert_eq!(Response::decode(&payload).expect("decodes"), resp);
    });
}

#[test]
fn prop_back_to_back_frames_stream_cleanly() {
    prop::run(64, |rng| {
        let reqs = prop::vec_with(rng, 1, 5, random_request);
        let mut wire = Vec::new();
        for req in &reqs {
            wire.extend_from_slice(&frame(|b| req.encode(b)));
        }
        let mut r: &[u8] = &wire;
        for req in &reqs {
            let payload = read_frame(&mut r).unwrap().unwrap();
            assert_eq!(&Request::decode(&payload).unwrap(), req);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF at the end");
    });
}

#[test]
fn prop_borrowed_request_decode_matches_owned() {
    prop::run(256, |rng| {
        let req = random_request(rng);
        let bytes = frame(|b| req.encode(b));
        let payload = &bytes[4..];
        let owned = Request::decode(payload).expect("owned decodes");
        let borrowed = Request::decode_borrowed(payload).expect("borrowed decodes");
        assert_eq!(borrowed.to_owned(), owned, "borrowed == owned for {req:?}");
    });
}

#[test]
fn prop_borrowed_response_decode_matches_owned() {
    prop::run(256, |rng| {
        let resp = random_response(rng);
        let bytes = frame(|b| resp.encode(b));
        let payload = &bytes[4..];
        let owned = Response::decode(payload).expect("owned decodes");
        let borrowed = Response::decode_borrowed(payload).expect("borrowed decodes");
        assert_eq!(borrowed.to_owned(), owned, "borrowed == owned for {resp:?}");
    });
}

#[test]
fn prop_borrowed_and_owned_agree_on_rejects() {
    // The two decode paths must agree not only on valid frames but on
    // every truncation of a valid frame and on arbitrary garbage: a
    // payload is accepted by both or rejected by both (the server uses
    // the borrowed path, clients the owned one — a disagreement would
    // be a protocol fork).
    prop::run(256, |rng| {
        let req = random_request(rng);
        let valid = frame(|b| req.encode(b));
        let payload = &valid[4..];
        for cut in 0..payload.len() {
            let torn = &payload[..cut];
            assert!(
                Request::decode(torn).is_err() == Request::decode_borrowed(torn).is_err(),
                "owned/borrowed disagree on truncation at {cut} of {req:?}"
            );
        }
        let garbage: Vec<u8> = prop::vec_with(rng, 0, 64, |r| r.random());
        assert_eq!(
            Request::decode(&garbage).is_err(),
            Request::decode_borrowed(&garbage).is_err(),
            "owned/borrowed disagree on garbage request payload"
        );
        assert_eq!(
            Response::decode(&garbage).is_err(),
            Response::decode_borrowed(&garbage).is_err(),
            "owned/borrowed disagree on garbage response payload"
        );
    });
}

#[test]
fn oversized_length_prefix_rejected_before_any_payload_arrives() {
    // frame_ready sees only the 4-byte header of an oversized frame and
    // must reject it there — before the server reserves a buffer for a
    // body that may be gigabytes of hostile air.
    for len in [MAX_FRAME_LEN + 1, u32::MAX / 2, u32::MAX] {
        let head = len.to_le_bytes();
        assert!(frame_ready(&head).is_err(), "len {len} must be rejected from header alone");
    }
    // Zero-length frames carry no opcode and are equally malformed.
    assert!(frame_ready(&0u32.to_le_bytes()).is_err());
    // A maximal *legal* prefix is not an error — just not ready yet.
    assert_eq!(frame_ready(&MAX_FRAME_LEN.to_le_bytes()).unwrap(), None);
}

#[test]
fn prop_decoder_never_panics_on_byte_soup() {
    prop::run(256, |rng| {
        // Truncations of a valid frame plus pure garbage: decode and
        // read_frame may reject, but must never panic.
        let req = random_request(rng);
        let valid = frame(|b| req.encode(b));
        let cut = rng.random_range(0..=valid.len());
        let mut torn: &[u8] = &valid[..cut];
        let _ = read_frame(&mut torn);
        let garbage: Vec<u8> = prop::vec_with(rng, 0, 64, |r| r.random());
        let _ = Request::decode(&garbage);
        let _ = Response::decode(&garbage);
        let mut soup: &[u8] = &garbage;
        let _ = read_frame(&mut soup);
    });
}
