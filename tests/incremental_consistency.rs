//! Consistency of the incremental machinery: incremental alignment vs
//! full alignment, source onboarding, and snapshot persistence.

use std::collections::HashSet;

use storypivot::core::config::PivotConfig;
use storypivot::gen::{CorpusBuilder, GenConfig};
use storypivot::prelude::*;
use storypivot::types::DAY;

fn corpus(target: usize, sources: u32, seed: u64) -> storypivot::gen::Corpus {
    CorpusBuilder::new(
        GenConfig::default()
            .with_sources(sources)
            .with_seed(seed)
            .with_target_snippets(target),
    )
    .build()
}

fn partition(pivot: &StoryPivot) -> Vec<Vec<u32>> {
    let mut p: Vec<Vec<u32>> = pivot
        .global_stories()
        .iter()
        .map(|g| {
            let mut m: Vec<u32> = g.members.iter().map(|&(id, _)| id.raw()).collect();
            m.sort_unstable();
            m
        })
        .collect();
    p.sort();
    p
}

#[test]
fn incremental_alignment_equals_full_alignment() {
    let c = corpus(900, 6, 50);
    let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    // Ingest in three waves, aligning incrementally after each.
    let waves = c.snippets.chunks(c.len() / 3 + 1);
    for wave in waves {
        for s in wave {
            pivot.ingest(s.clone()).unwrap();
        }
        pivot.align_incremental();
    }
    let incremental = partition(&pivot);
    // A final full pass from the same state must agree.
    pivot.align();
    assert_eq!(incremental, partition(&pivot));
}

#[test]
fn onboarding_a_source_incrementally_matches_full_realignment() {
    let c = corpus(900, 8, 51);
    let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        if s.source.raw() < 6 {
            pivot.ingest(s.clone()).unwrap();
        }
    }
    pivot.align();
    for s in &c.snippets {
        if s.source.raw() >= 6 {
            pivot.ingest(s.clone()).unwrap();
        }
    }
    let mut full = pivot.clone();
    pivot.align_incremental();
    full.align();
    assert_eq!(partition(&pivot), partition(&full));
    // Incremental pass reuses prior decisions: fewer pairs scored.
    assert!(
        pivot.alignment().unwrap().pairs_scored < full.alignment().unwrap().pairs_scored,
        "incremental {} vs full {}",
        pivot.alignment().unwrap().pairs_scored,
        full.alignment().unwrap().pairs_scored
    );
}

#[test]
fn store_snapshot_round_trips_and_rebuilds_identically() {
    let c = corpus(400, 4, 52);
    let mut pivot = StoryPivot::new(PivotConfig::default());
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        pivot.ingest(s.clone()).unwrap();
    }
    pivot.align();

    // Persist the event store, reload, rebuild a pivot from it.
    let mut path = std::env::temp_dir();
    path.push(format!("storypivot-it-{}.snap", std::process::id()));
    storypivot::store::snapshot::save(pivot.store(), &path).unwrap();
    let loaded = storypivot::store::snapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.len(), pivot.store().len());
    assert_eq!(loaded.stats(), pivot.store().stats());

    // Re-identify from the loaded store: same inputs → same partition.
    let mut rebuilt = StoryPivot::new(PivotConfig::default());
    for s in loaded.sources() {
        rebuilt.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    let mut snippets: Vec<Snippet> = loaded.iter().cloned().collect();
    snippets.sort_by_key(|s| s.id); // original delivery order = id order
    for s in snippets {
        rebuilt.ingest(s).unwrap();
    }
    rebuilt.align();
    assert_eq!(partition(&rebuilt), partition(&pivot));
}

#[test]
fn document_remove_then_readd_converges() {
    let c = corpus(500, 4, 53);
    let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        pivot.ingest(s.clone()).unwrap();
    }
    pivot.align();
    let stories_before = pivot.story_count();
    let store_before = pivot.store().len();

    // Remove 10 documents then re-add their snippets.
    let docs: Vec<DocId> = (0..10u32).map(DocId::new).collect();
    let mut removed_snippets = Vec::new();
    for &d in &docs {
        let ids: HashSet<SnippetId> = pivot.store().snippets_of_doc(d).into_iter().collect();
        for &s in &ids {
            removed_snippets.push(pivot.store().get(s).unwrap().clone());
        }
        pivot.remove_document(d).unwrap();
    }
    pivot.align_incremental();
    assert_eq!(pivot.store().len(), store_before - removed_snippets.len());

    for s in removed_snippets {
        pivot.ingest(s).unwrap();
    }
    pivot.align_incremental();
    assert_eq!(pivot.store().len(), store_before);
    // Story structure converges to a similar size (exact equality is not
    // guaranteed — identification is order-dependent — but the count
    // must be in the same ballpark).
    let diff = (pivot.story_count() as i64 - stories_before as i64).abs();
    assert!(diff <= stories_before as i64 / 5, "story count drifted: {stories_before} -> {}", pivot.story_count());
}

#[test]
fn dirty_tracking_is_conservative() {
    let c = corpus(300, 3, 54);
    let mut pivot = StoryPivot::new(PivotConfig::default());
    for s in &c.sources {
        pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
    }
    for s in &c.snippets {
        pivot.ingest(s.clone()).unwrap();
    }
    assert!(pivot.dirty_count() > 0);
    pivot.align();
    assert_eq!(pivot.dirty_count(), 0);
    // Incremental alignment with nothing dirty is a no-op on results.
    let p1 = partition(&pivot);
    pivot.align_incremental();
    assert_eq!(p1, partition(&pivot));
}
