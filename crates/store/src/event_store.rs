//! The canonical snippet repository.
//!
//! Owns every ingested [`Snippet`] plus the indexes StoryPivot's phases
//! query:
//!
//! * a per-source [`WindowIndex`] for temporal identification (§2.2);
//! * a global entity [`InvertedIndex`] for counterpart search during
//!   alignment (§2.3);
//! * a document index for the demo's add/remove-document interaction
//!   (§4.2.1);
//! * source registration, because "any story detection system should
//!   allow the addition or removal of data sources" (§2.4).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use storypivot_types::{
    DocId, EntityId, Error, Result, Snippet, SnippetId, Source, SourceId, TimeRange, Timestamp,
};

use crate::inverted::InvertedIndex;
use crate::window::WindowIndex;

/// Aggregate statistics about a store (drives the demo's dataset
/// information panel, Figure 7 inset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of registered sources.
    pub source_count: usize,
    /// Number of stored snippets.
    pub snippet_count: usize,
    /// Number of distinct entities appearing in any snippet.
    pub entity_count: usize,
    /// Number of distinct documents.
    pub document_count: usize,
    /// Tight time range covered by all snippets.
    pub coverage: TimeRange,
}

/// In-memory event store with temporal, entity, and document indexes.
///
/// Snippets live in a slot arena (`arena` + `free`); the id map and the
/// per-source window indexes both reference arena slots, so the hot
/// window-range queries resolve snippets by direct indexing instead of
/// a hash lookup per hit.
#[derive(Debug, Clone, Default)]
pub struct EventStore {
    arena: Vec<Option<Snippet>>,
    slot_of: HashMap<SnippetId, u32>,
    free: Vec<u32>,
    sources: BTreeMap<SourceId, Source>,
    windows: HashMap<SourceId, WindowIndex>,
    entity_index: InvertedIndex<EntityId, SnippetId>,
    doc_index: HashMap<DocId, BTreeSet<SnippetId>>,
}

impl EventStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- sources ---------------------------------------------------

    /// Register a data source. Fails on duplicate id.
    pub fn register_source(&mut self, source: Source) -> Result<()> {
        if self.sources.contains_key(&source.id) {
            return Err(Error::Duplicate(format!("source {}", source.id)));
        }
        self.windows.insert(source.id, WindowIndex::new());
        self.sources.insert(source.id, source);
        Ok(())
    }

    /// Remove a source and all its snippets; returns the evicted
    /// snippets (oldest first).
    pub fn remove_source(&mut self, id: SourceId) -> Result<Vec<Snippet>> {
        if self.sources.remove(&id).is_none() {
            return Err(Error::UnknownSource(id));
        }
        let window = self.windows.remove(&id).unwrap_or_default();
        let ids: Vec<SnippetId> = window.iter().map(|(_, sid)| sid).collect();
        let mut evicted = Vec::with_capacity(ids.len());
        for sid in ids {
            evicted.push(self.detach(sid)?);
        }
        Ok(evicted)
    }

    /// Metadata of a registered source.
    pub fn source(&self, id: SourceId) -> Option<&Source> {
        self.sources.get(&id)
    }

    /// All registered sources, ordered by id.
    pub fn sources(&self) -> impl Iterator<Item = &Source> + '_ {
        self.sources.values()
    }

    /// Registered source ids, ascending.
    pub fn source_ids(&self) -> Vec<SourceId> {
        self.sources.keys().copied().collect()
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    // ---- snippets --------------------------------------------------

    /// Insert a snippet. Fails on duplicate id or unregistered source.
    pub fn insert(&mut self, snippet: Snippet) -> Result<()> {
        if self.slot_of.contains_key(&snippet.id) {
            return Err(Error::Duplicate(format!("snippet {}", snippet.id)));
        }
        let window = self
            .windows
            .get_mut(&snippet.source)
            .ok_or(Error::UnknownSource(snippet.source))?;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.arena.push(None);
                (self.arena.len() - 1) as u32
            }
        };
        window.insert(snippet.timestamp, snippet.id, slot);
        self.entity_index
            .insert_all(snippet.entities().keys(), snippet.id);
        self.doc_index.entry(snippet.doc).or_default().insert(snippet.id);
        self.slot_of.insert(snippet.id, slot);
        self.arena[slot as usize] = Some(snippet);
        Ok(())
    }

    /// Remove one snippet, unhooking every index.
    pub fn remove(&mut self, id: SnippetId) -> Result<Snippet> {
        // Leave source-window bookkeeping to detach, but verify first so
        // the caller gets a precise error.
        let Some(snippet) = self.get(id) else {
            return Err(Error::UnknownSnippet(id));
        };
        let source = snippet.source;
        let timestamp = snippet.timestamp;
        if let Some(w) = self.windows.get_mut(&source) {
            w.remove(timestamp, id);
        }
        self.detach(id)
    }

    /// Remove a snippet from all indexes *except* the source window
    /// (used by `remove_source`, which drops the window wholesale).
    fn detach(&mut self, id: SnippetId) -> Result<Snippet> {
        let slot = self.slot_of.remove(&id).ok_or(Error::UnknownSnippet(id))?;
        let snippet = self.arena[slot as usize]
            .take()
            .expect("id map and arena agree");
        self.free.push(slot);
        self.entity_index
            .remove_all(snippet.entities().keys(), id);
        if let Some(set) = self.doc_index.get_mut(&snippet.doc) {
            set.remove(&id);
            if set.is_empty() {
                self.doc_index.remove(&snippet.doc);
            }
        }
        Ok(snippet)
    }

    /// Remove every snippet of a document; returns them sorted by id.
    pub fn remove_document(&mut self, doc: DocId) -> Result<Vec<Snippet>> {
        let ids: Vec<SnippetId> = self
            .doc_index
            .get(&doc)
            .ok_or(Error::UnknownDocument(doc))?
            .iter()
            .copied()
            .collect();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            out.push(self.remove(id)?);
        }
        Ok(out)
    }

    /// Look up a snippet.
    pub fn get(&self, id: SnippetId) -> Option<&Snippet> {
        let &slot = self.slot_of.get(&id)?;
        self.arena[slot as usize].as_ref()
    }

    /// Look up a snippet, erroring when absent.
    pub fn get_or_err(&self, id: SnippetId) -> Result<&Snippet> {
        self.get(id).ok_or(Error::UnknownSnippet(id))
    }

    /// Whether the snippet exists.
    pub fn contains(&self, id: SnippetId) -> bool {
        self.slot_of.contains_key(&id)
    }

    /// Number of stored snippets.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    /// Whether the store holds no snippets.
    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// Iterate over all snippets (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Snippet> + '_ {
        self.arena.iter().filter_map(Option::as_ref)
    }

    // ---- queries ---------------------------------------------------

    /// Snippets of `source` inside the symmetric window `[t-ω, t+ω]`,
    /// ascending by `(timestamp, id)`.
    pub fn window(&self, source: SourceId, t: Timestamp, omega: i64) -> Vec<&Snippet> {
        self.range(source, TimeRange::window(t, omega))
    }

    /// Snippets of `source` inside `range`, ascending by `(timestamp, id)`.
    pub fn range(&self, source: SourceId, range: TimeRange) -> Vec<&Snippet> {
        match self.windows.get(&source) {
            Some(w) => w
                .query_slots(range)
                .map(|slot| {
                    self.arena[slot as usize]
                        .as_ref()
                        .expect("window entries point at live slots")
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// All snippets of a source, ascending by `(timestamp, id)`.
    pub fn snippets_of_source(&self, source: SourceId) -> Vec<&Snippet> {
        self.range(source, TimeRange::ALL)
    }

    /// Number of snippets in a source.
    pub fn source_len(&self, source: SourceId) -> usize {
        self.windows.get(&source).map_or(0, WindowIndex::len)
    }

    /// Snippet ids of a document, ascending.
    pub fn snippets_of_doc(&self, doc: DocId) -> Vec<SnippetId> {
        self.doc_index
            .get(&doc)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Snippets sharing at least one entity with the query set, ranked
    /// by number of shared entities (candidate generation for
    /// counterpart search, §2.3).
    pub fn candidates_by_entities<I: IntoIterator<Item = EntityId>>(
        &self,
        entities: I,
    ) -> Vec<(SnippetId, usize)> {
        self.entity_index.candidates(entities)
    }

    /// Tight time range covered by a source's snippets.
    pub fn source_coverage(&self, source: SourceId) -> TimeRange {
        self.windows.get(&source).map_or(TimeRange::EMPTY, WindowIndex::coverage)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let coverage = self
            .windows
            .values()
            .map(WindowIndex::coverage)
            .fold(TimeRange::EMPTY, TimeRange::cover);
        StoreStats {
            source_count: self.sources.len(),
            snippet_count: self.slot_of.len(),
            entity_count: self.entity_index.key_count(),
            document_count: self.doc_index.len(),
            coverage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::{EventType, SourceKind};

    fn store_with_sources(n: u32) -> EventStore {
        let mut s = EventStore::new();
        for i in 0..n {
            s.register_source(Source::new(SourceId::new(i), format!("s{i}"), SourceKind::Newspaper))
                .unwrap();
        }
        s
    }

    fn snip(id: u32, source: u32, t: i64, entities: &[u32]) -> Snippet {
        let mut b = Snippet::builder(SnippetId::new(id), SourceId::new(source), Timestamp::from_secs(t));
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        b.doc(DocId::new(id / 2)).event_type(EventType::Other).build()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = store_with_sources(1);
        s.insert(snip(0, 0, 100, &[1, 2])).unwrap();
        assert!(s.contains(SnippetId::new(0)));
        assert_eq!(s.len(), 1);
        let got = s.remove(SnippetId::new(0)).unwrap();
        assert_eq!(got.id, SnippetId::new(0));
        assert!(s.is_empty());
        assert_eq!(s.stats().entity_count, 0);
    }

    #[test]
    fn duplicate_snippet_rejected() {
        let mut s = store_with_sources(1);
        s.insert(snip(0, 0, 100, &[])).unwrap();
        assert!(matches!(s.insert(snip(0, 0, 200, &[])), Err(Error::Duplicate(_))));
    }

    #[test]
    fn unregistered_source_rejected() {
        let mut s = store_with_sources(1);
        assert!(matches!(
            s.insert(snip(0, 7, 100, &[])),
            Err(Error::UnknownSource(_))
        ));
    }

    #[test]
    fn window_queries_are_per_source() {
        let mut s = store_with_sources(2);
        s.insert(snip(0, 0, 100, &[1])).unwrap();
        s.insert(snip(1, 1, 100, &[1])).unwrap();
        s.insert(snip(2, 0, 300, &[1])).unwrap();
        let w: Vec<u32> = s
            .window(SourceId::new(0), Timestamp::from_secs(100), 50)
            .iter()
            .map(|sn| sn.id.raw())
            .collect();
        assert_eq!(w, vec![0]);
        assert_eq!(s.source_len(SourceId::new(0)), 2);
        assert_eq!(s.source_len(SourceId::new(1)), 1);
    }

    #[test]
    fn entity_candidates_ranked_by_overlap() {
        let mut s = store_with_sources(1);
        s.insert(snip(0, 0, 1, &[1, 2, 3])).unwrap();
        s.insert(snip(1, 0, 2, &[1, 9])).unwrap();
        s.insert(snip(2, 0, 3, &[8])).unwrap();
        let cands = s.candidates_by_entities([EntityId::new(1), EntityId::new(2)]);
        assert_eq!(cands[0], (SnippetId::new(0), 2));
        assert_eq!(cands[1], (SnippetId::new(1), 1));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn document_removal_evicts_all_its_snippets() {
        let mut s = store_with_sources(1);
        s.insert(snip(0, 0, 1, &[1])).unwrap(); // doc 0
        s.insert(snip(1, 0, 2, &[2])).unwrap(); // doc 0
        s.insert(snip(2, 0, 3, &[3])).unwrap(); // doc 1
        let removed = s.remove_document(DocId::new(0)).unwrap();
        assert_eq!(removed.len(), 2);
        assert_eq!(s.len(), 1);
        assert!(matches!(
            s.remove_document(DocId::new(0)),
            Err(Error::UnknownDocument(_))
        ));
    }

    #[test]
    fn source_removal_evicts_and_unindexes() {
        let mut s = store_with_sources(2);
        s.insert(snip(0, 0, 1, &[1])).unwrap();
        s.insert(snip(1, 1, 2, &[1])).unwrap();
        let evicted = s.remove_source(SourceId::new(0)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(s.source_count(), 1);
        assert_eq!(s.len(), 1);
        // Entity index must no longer return the evicted snippet.
        let cands = s.candidates_by_entities([EntityId::new(1)]);
        assert_eq!(cands, vec![(SnippetId::new(1), 1)]);
        assert!(matches!(
            s.remove_source(SourceId::new(0)),
            Err(Error::UnknownSource(_))
        ));
    }

    #[test]
    fn out_of_order_ingest_sorts_in_queries() {
        let mut s = store_with_sources(1);
        s.insert(snip(0, 0, 300, &[])).unwrap();
        s.insert(snip(1, 0, 100, &[])).unwrap();
        s.insert(snip(2, 0, 200, &[])).unwrap();
        let order: Vec<i64> = s
            .snippets_of_source(SourceId::new(0))
            .iter()
            .map(|sn| sn.timestamp.secs())
            .collect();
        assert_eq!(order, vec![100, 200, 300]);
    }

    #[test]
    fn stats_aggregate_everything() {
        let mut s = store_with_sources(2);
        s.insert(snip(0, 0, 100, &[1, 2])).unwrap();
        s.insert(snip(1, 1, 500, &[2, 3])).unwrap();
        let st = s.stats();
        assert_eq!(st.source_count, 2);
        assert_eq!(st.snippet_count, 2);
        assert_eq!(st.entity_count, 3);
        assert_eq!(st.document_count, 1);
        assert_eq!(
            st.coverage,
            TimeRange::new(Timestamp::from_secs(100), Timestamp::from_secs(500))
        );
    }

    #[test]
    fn duplicate_source_rejected() {
        let mut s = store_with_sources(1);
        let dup = Source::new(SourceId::new(0), "again", SourceKind::Blog);
        assert!(matches!(s.register_source(dup), Err(Error::Duplicate(_))));
    }

    #[test]
    fn get_or_err_reports_missing() {
        let s = store_with_sources(0);
        assert!(matches!(
            s.get_or_err(SnippetId::new(9)),
            Err(Error::UnknownSnippet(_))
        ));
    }
}
