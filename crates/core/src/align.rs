//! Story alignment across data sources (paper §2.3).
//!
//! Alignment finds per-source stories that "contain the same semantic
//! information" and integrates them into global stories. Two stories
//! align when their **content** is similar *and* their **temporal
//! evolution** is similar — "it is highly unlikely that two stories c₁
//! and c₂ are similar if c₁ ends at tᵢ and c₂ starts at tⱼ with
//! tᵢ ≪ tⱼ". Within an integrated story, each snippet either **aligns**
//! (has a temporally-proximate counterpart in another source) or
//! **enriches** (source-exclusive extras such as special reports).
//!
//! The aligner supports both full recomputation and **incremental**
//! re-alignment against a previous outcome — the capability that makes
//! adding a new data source cheap (paper §2.1: "as new sources become
//! available, we first identify the stories associated with them and
//! then align them with existing stories").

use std::collections::{HashMap, HashSet};

use storypivot_store::EventStore;
use storypivot_types::ids::IdGen;
use storypivot_types::{
    EntityId, GlobalStory, GlobalStoryId, SnippetId, SnippetRole, StoryId,
};

use crate::config::AlignConfig;
use crate::sim::SimWeights;
use crate::state::StoryState;
use crate::unionfind::UnionFind;

/// The result of an alignment pass.
#[derive(Debug, Clone, Default)]
pub struct AlignOutcome {
    /// Integrated stories, sorted by id. Every per-source story appears
    /// in exactly one global story (singletons included — unaligned
    /// stories "still hold interest for a variety of users").
    pub global_stories: Vec<GlobalStory>,
    /// Per-source story → its global story.
    pub story_to_global: HashMap<StoryId, GlobalStoryId>,
    /// Snippet → global story (derived convenience map).
    pub snippet_to_global: HashMap<SnippetId, GlobalStoryId>,
    /// The story pairs whose combined similarity passed the threshold.
    pub accepted_pairs: Vec<(StoryId, StoryId)>,
    /// Number of candidate pairs scored in this pass (perf metric).
    pub pairs_scored: usize,
}

impl AlignOutcome {
    /// Look up a global story by id.
    pub fn global_story(&self, id: GlobalStoryId) -> Option<&GlobalStory> {
        self.global_stories
            .binary_search_by_key(&id, |g| g.id)
            .ok()
            .map(|i| &self.global_stories[i])
    }

    /// Global stories corroborated by more than one source.
    pub fn cross_source_stories(&self) -> impl Iterator<Item = &GlobalStory> + '_ {
        self.global_stories.iter().filter(|g| g.is_cross_source())
    }
}

/// Cross-source story aligner.
#[derive(Debug, Clone)]
pub struct Aligner {
    cfg: AlignConfig,
    weights: SimWeights,
}

impl Aligner {
    /// Build an aligner from configuration.
    pub fn new(cfg: AlignConfig, weights: SimWeights) -> Self {
        Aligner { cfg, weights }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlignConfig {
        &self.cfg
    }

    /// Combined story–story similarity: content (exact or sketched)
    /// gated by lag-tolerant evolution similarity.
    pub fn story_pair_score(&self, a: &StoryState, b: &StoryState) -> f64 {
        // Cheap temporal prune first: stories whose lifespans are
        // further apart than the lag tolerance cannot align.
        let max_gap = (self.cfg.max_lag_buckets + 1) * self.cfg.bucket_width;
        if a.lifespan().gap(b.lifespan()) > max_gap {
            return 0.0;
        }
        let content = if self.cfg.use_sketches {
            a.content_sim_sketch(b)
        } else {
            a.content_sim_exact(b)
        };
        if content == 0.0 {
            return 0.0;
        }
        // Containment, not cosine: a sparse source's short story must be
        // able to align with a prolific source's long story; disjoint
        // lifespans still gate to zero (§2.3).
        let evolution = a
            .signature
            .containment_similarity(&b.signature, self.cfg.max_lag_buckets);
        content * evolution
    }

    /// Score candidate pairs, in parallel when the batch is large.
    /// Returns the accepted `(story, story)` pairs (unordered).
    fn score_pairs(
        &self,
        states: &[&StoryState],
        pairs: &[(usize, usize)],
    ) -> Vec<(StoryId, StoryId)> {
        /// Below this, thread spawn overhead dominates.
        const PARALLEL_THRESHOLD: usize = 4_096;

        let score_chunk = |chunk: &[(usize, usize)]| -> Vec<(StoryId, StoryId)> {
            chunk
                .iter()
                .filter(|&&(i, j)| {
                    self.story_pair_score(states[i], states[j]) >= self.cfg.align_threshold
                })
                .map(|&(i, j)| (states[i].id(), states[j].id()))
                .collect()
        };

        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        if pairs.len() < PARALLEL_THRESHOLD || workers < 2 {
            return score_chunk(pairs);
        }
        let chunk_size = pairs.len().div_ceil(workers);
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || score_chunk(chunk)))
                .collect();
            for h in handles {
                out.extend(h.join().expect("scoring thread panicked"));
            }
        });
        out
    }

    /// Full alignment over all per-source stories.
    pub fn align(&self, states: &[&StoryState], store: &EventStore) -> AlignOutcome {
        self.align_internal(states, store, None, None)
    }

    /// Incremental alignment: pairs between two *clean* stories reuse
    /// their accept/reject decision from `previous`; only pairs with at
    /// least one endpoint in `dirty` are (re)scored.
    pub fn align_incremental(
        &self,
        states: &[&StoryState],
        store: &EventStore,
        previous: &AlignOutcome,
        dirty: &HashSet<StoryId>,
    ) -> AlignOutcome {
        self.align_internal(states, store, Some(previous), Some(dirty))
    }

    fn align_internal(
        &self,
        states: &[&StoryState],
        store: &EventStore,
        previous: Option<&AlignOutcome>,
        dirty: Option<&HashSet<StoryId>>,
    ) -> AlignOutcome {
        let live: HashSet<StoryId> = states.iter().map(|s| s.id()).collect();
        let index_of: HashMap<StoryId, usize> =
            states.iter().enumerate().map(|(i, s)| (s.id(), i)).collect();

        // ---- candidate generation via shared entities ----------------
        let mut entity_index: HashMap<EntityId, Vec<usize>> = HashMap::new();
        for (i, s) in states.iter().enumerate() {
            for e in s.entities.keys() {
                entity_index.entry(e).or_default().push(i);
            }
        }
        let mut shared: HashMap<(usize, usize), usize> = HashMap::new();
        for posting in entity_index.values() {
            for (pi, &i) in posting.iter().enumerate() {
                for &j in &posting[pi + 1..] {
                    let key = if i < j { (i, j) } else { (j, i) };
                    // Cross-source pairs only: same-source grouping is
                    // identification's job.
                    if states[i].source() != states[j].source() {
                        *shared.entry(key).or_insert(0) += 1;
                    }
                }
            }
        }

        // ---- pair scoring (incremental reuse where possible) ----------
        let mut accepted: Vec<(StoryId, StoryId)> = Vec::new();

        // Collect the pairs that actually need scoring this pass.
        let mut to_score: Vec<(usize, usize)> = Vec::new();
        if let (Some(prev), Some(dirty)) = (previous, dirty) {
            // Reuse accepted pairs between clean, still-live stories.
            for &(a, b) in &prev.accepted_pairs {
                if live.contains(&a) && live.contains(&b) && !dirty.contains(&a) && !dirty.contains(&b)
                {
                    accepted.push((a, b));
                }
            }
            for (&(i, j), &overlap) in &shared {
                if overlap < self.cfg.min_shared_entities {
                    continue;
                }
                if !dirty.contains(&states[i].id()) && !dirty.contains(&states[j].id()) {
                    continue; // decision reused above
                }
                to_score.push((i, j));
            }
        } else {
            for (&(i, j), &overlap) in &shared {
                if overlap >= self.cfg.min_shared_entities {
                    to_score.push((i, j));
                }
            }
        }
        let pairs_scored = to_score.len();
        accepted.extend(self.score_pairs(states, &to_score));

        // Deterministic order for downstream grouping.
        accepted.sort_unstable();
        accepted.dedup();

        // ---- grouping --------------------------------------------------
        let mut uf = UnionFind::new(states.len());
        for &(a, b) in &accepted {
            if let (Some(&i), Some(&j)) = (index_of.get(&a), index_of.get(&b)) {
                uf.union(i, j);
            }
        }

        let mut outcome = AlignOutcome {
            accepted_pairs: accepted,
            pairs_scored,
            ..AlignOutcome::default()
        };

        let mut ids = IdGen::<GlobalStoryId>::new();
        for group in uf.groups() {
            let gid = ids.next_id();
            let mut global = GlobalStory::new(gid);
            for &i in &group {
                let state = states[i];
                global.member_stories.push(state.id());
                global.add_source(state.source());
                outcome.story_to_global.insert(state.id(), gid);
            }
            global.member_stories.sort_unstable();

            // ---- aligning/enriching classification --------------------
            // Collect (snippet, source, timestamp) for all members.
            let mut members: Vec<&storypivot_types::Snippet> = Vec::new();
            for &i in &group {
                for &m in &states[i].story.members {
                    if let Some(sn) = store.get(m) {
                        members.push(sn);
                    }
                }
            }
            members.sort_by_key(|s| (s.timestamp, s.id));
            for (mi, &sn) in members.iter().enumerate() {
                let role = if global.sources.len() > 1
                    && self.has_counterpart(sn, mi, &members)
                {
                    SnippetRole::Aligning
                } else {
                    SnippetRole::Enriching
                };
                global.add_member(sn.id, role, sn.timestamp);
                outcome.snippet_to_global.insert(sn.id, gid);
            }
            outcome.global_stories.push(global);
        }
        outcome
    }

    /// Whether `sn` (at sorted position `pos` in `members`) has a
    /// counterpart: a content-similar snippet from a *different source*
    /// within the counterpart lag.
    fn has_counterpart(
        &self,
        sn: &storypivot_types::Snippet,
        pos: usize,
        members: &[&storypivot_types::Snippet],
    ) -> bool {
        let lag = self.cfg.counterpart_lag;
        // Bind the probe once: the outward scans re-score `sn` against
        // every neighbour, so probe-side state is hoisted out.
        let scorer = self.weights.probe(&sn.content);
        let term_slice = sn.terms().as_slice();
        let term_norm = sn.terms().norm();
        // members is sorted by timestamp: scan outwards until the lag
        // bound is exceeded in both directions.
        let check = |other: &storypivot_types::Snippet| -> bool {
            other.source != sn.source
                && other.timestamp.distance(sn.timestamp) <= lag
                && scorer.score(&other.content) >= self.cfg.counterpart_threshold
                && storypivot_types::kernel::cosine(
                    term_slice,
                    term_norm,
                    other.terms().as_slice(),
                    other.terms().norm(),
                ) >= self.cfg.counterpart_term_floor
        };
        for other in members[pos + 1..].iter() {
            if other.timestamp.distance(sn.timestamp) > lag {
                break;
            }
            if check(other) {
                return true;
            }
        }
        for other in members[..pos].iter().rev() {
            if other.timestamp.distance(sn.timestamp) > lag {
                break;
            }
            if check(other) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IdentifyConfig, MatchMode, SketchConfig};
    use crate::identify::Identifier;
    use storypivot_types::{
        EntityId, EventType, Snippet, Source, SourceId, SourceKind, TermId, Timestamp, DAY,
    };

    struct Fixture {
        store: EventStore,
        idents: Vec<Identifier>,
        next_id: u32,
    }

    impl Fixture {
        fn new(sources: u32) -> Self {
            let mut store = EventStore::new();
            let mut idents = Vec::new();
            for i in 0..sources {
                store
                    .register_source(Source::new(SourceId::new(i), format!("s{i}"), SourceKind::Newspaper))
                    .unwrap();
                idents.push(Identifier::new(
                    SourceId::new(i),
                    IdentifyConfig {
                        mode: MatchMode::Temporal { omega: 7 * DAY },
                        maintenance_every: 0,
                        ..IdentifyConfig::default()
                    },
                    SketchConfig::default(),
                ));
            }
            Fixture {
                store,
                idents,
                next_id: 0,
            }
        }

        fn ingest(&mut self, source: u32, day: i64, entities: &[u32], terms: &[u32]) -> SnippetId {
            let id = SnippetId::new(self.next_id);
            self.next_id += 1;
            let mut b = Snippet::builder(id, SourceId::new(source), Timestamp::from_secs(day * DAY))
                .event_type(EventType::Accident);
            for &e in entities {
                b = b.entity(EntityId::new(e), 1.0);
            }
            for &t in terms {
                b = b.term(TermId::new(t), 1.0);
            }
            let s = b.build();
            self.store.insert(s.clone()).unwrap();
            self.idents[source as usize].assign(&s, &self.store);
            id
        }

        fn states(&self) -> Vec<&StoryState> {
            self.idents.iter().flat_map(|i| i.stories()).collect()
        }

        fn align(&self) -> AlignOutcome {
            Aligner::new(AlignConfig::default(), SimWeights::default())
                .align(&self.states(), &self.store)
        }
    }

    #[test]
    fn same_story_across_sources_aligns() {
        let mut f = Fixture::new(2);
        // Both sources report the same evolving story.
        for day in 0..5 {
            f.ingest(0, day, &[1, 2], &[10, 11]);
            f.ingest(1, day, &[1, 2], &[10, 11]);
        }
        let out = f.align();
        assert_eq!(out.cross_source_stories().count(), 1);
        let g = out.cross_source_stories().next().unwrap();
        assert_eq!(g.source_count(), 2);
        assert_eq!(g.len(), 10);
        // Every snippet has a same-day counterpart in the other source.
        assert_eq!(g.aligning().count(), 10);
    }

    #[test]
    fn unrelated_stories_stay_apart() {
        let mut f = Fixture::new(2);
        for day in 0..3 {
            f.ingest(0, day, &[1, 2], &[10]);
            f.ingest(1, day, &[7, 8], &[20]);
        }
        let out = f.align();
        assert_eq!(out.global_stories.len(), 2);
        assert_eq!(out.cross_source_stories().count(), 0);
    }

    #[test]
    fn temporally_disjoint_stories_do_not_align() {
        let mut f = Fixture::new(2);
        // Same content, but source 1 reports it three months later —
        // "highly unlikely" to be the same story (§2.3).
        for day in 0..3 {
            f.ingest(0, day, &[1, 2], &[10, 11]);
            f.ingest(1, day + 90, &[1, 2], &[10, 11]);
        }
        let out = f.align();
        assert_eq!(out.cross_source_stories().count(), 0);
    }

    #[test]
    fn lagged_source_still_aligns() {
        let mut f = Fixture::new(2);
        // Source 1 reports each event one day later (typical lag).
        for day in 0..5 {
            f.ingest(0, day, &[1, 2], &[10, 11]);
            f.ingest(1, day + 1, &[1, 2], &[10, 11]);
        }
        let out = f.align();
        assert_eq!(out.cross_source_stories().count(), 1);
    }

    #[test]
    fn enriching_snippets_are_classified() {
        let mut f = Fixture::new(2);
        for day in 0..4 {
            f.ingest(0, day, &[1, 2], &[10, 11]);
            f.ingest(1, day, &[1, 2], &[10, 11]);
        }
        // A source-0 exclusive background report: same entities (so it
        // stays in the story) but distinct description terms and no
        // same-time counterpart.
        let special = f.ingest(0, 2, &[1, 2], &[30, 31, 32]);
        let out = f.align();
        let g = out
            .global_story(*out.snippet_to_global.get(&special).unwrap())
            .unwrap();
        assert_eq!(g.role_of(special), Some(SnippetRole::Enriching));
        assert!(g.aligning().count() >= 8);
    }

    #[test]
    fn singleton_stories_survive_alignment() {
        let mut f = Fixture::new(2);
        f.ingest(0, 0, &[1], &[10]);
        let out = f.align();
        assert_eq!(out.global_stories.len(), 1);
        let g = &out.global_stories[0];
        assert!(!g.is_cross_source());
        // Single-source members are enriching by definition.
        assert_eq!(g.enriching().count(), 1);
    }

    #[test]
    fn three_sources_chain_into_one_global_story() {
        let mut f = Fixture::new(3);
        for day in 0..4 {
            f.ingest(0, day, &[1, 2, 3], &[10, 11]);
            f.ingest(1, day, &[1, 2], &[10, 11]);
            f.ingest(2, day, &[2, 3], &[10, 11]);
        }
        let out = f.align();
        assert_eq!(out.cross_source_stories().count(), 1);
        assert_eq!(out.cross_source_stories().next().unwrap().source_count(), 3);
    }

    #[test]
    fn incremental_alignment_matches_full() {
        let mut f = Fixture::new(2);
        for day in 0..4 {
            f.ingest(0, day, &[1, 2], &[10, 11]);
            f.ingest(1, day, &[1, 2], &[10, 11]);
        }
        let aligner = Aligner::new(AlignConfig::default(), SimWeights::default());
        let full0 = aligner.align(&f.states(), &f.store);

        // New snippets arrive in source 1 (dirtying its story).
        let v = f.ingest(1, 4, &[1, 2], &[10, 11]);
        let dirty_story = f.idents[1].story_of(v).unwrap();
        let dirty: HashSet<StoryId> = [dirty_story].into_iter().collect();

        let incremental = aligner.align_incremental(&f.states(), &f.store, &full0, &dirty);
        let full1 = aligner.align(&f.states(), &f.store);

        // Same grouping (compare member-story partitions).
        let partition = |o: &AlignOutcome| -> Vec<Vec<StoryId>> {
            let mut p: Vec<Vec<StoryId>> = o
                .global_stories
                .iter()
                .map(|g| g.member_stories.clone())
                .collect();
            p.sort();
            p
        };
        assert_eq!(partition(&incremental), partition(&full1));
        // And the incremental pass scored fewer or equal pairs.
        assert!(incremental.pairs_scored <= full1.pairs_scored);
    }

    #[test]
    fn sketch_mode_agrees_on_clear_cases() {
        let mut f = Fixture::new(2);
        for day in 0..5 {
            f.ingest(0, day, &[1, 2, 3, 4], &[10, 11, 12]);
            f.ingest(1, day, &[1, 2, 3, 4], &[10, 11, 12]);
            f.ingest(0, day, &[50, 51], &[60, 61]);
        }
        let cfg = AlignConfig {
            use_sketches: true,
            ..AlignConfig::default()
        };
        let out = Aligner::new(cfg, SimWeights::default()).align(&f.states(), &f.store);
        assert_eq!(out.cross_source_stories().count(), 1);
    }

    #[test]
    fn empty_input_aligns_to_nothing() {
        let f = Fixture::new(1);
        let out = f.align();
        assert!(out.global_stories.is_empty());
        assert_eq!(out.pairs_scored, 0);
    }
}
