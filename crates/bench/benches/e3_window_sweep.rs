//! E3 — identification cost as a function of the window size ω (§2.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use storypivot_bench::{corpus_fixed_period, pivot_for};
use storypivot_core::config::PivotConfig;
use storypivot_types::DAY;

fn bench(c: &mut Criterion) {
    let corpus = corpus_fixed_period(800, 8, 13);
    let mut group = c.benchmark_group("e3_window_sweep");
    group.sample_size(10);
    for days in [1i64, 7, 14, 30, 90] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{days}d")), &corpus, |b, corpus| {
            let cfg = PivotConfig::temporal(days * DAY);
            b.iter(|| {
                let mut pivot = pivot_for(corpus, cfg.clone());
                for s in &corpus.snippets {
                    pivot.ingest(s.clone()).unwrap();
                }
                pivot.story_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
