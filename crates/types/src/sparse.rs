//! Sparse weighted vectors over interned ids.
//!
//! Snippet content (entities, description terms) is modelled as a sparse
//! vector of `(id, weight)` pairs kept sorted by id. Sorted storage makes
//! the hot similarity kernels — dot product, Jaccard, weighted Jaccard —
//! single linear merges with no hashing and no allocation, which matters
//! because story identification evaluates millions of such comparisons.

use std::fmt::Debug;

/// A sparse vector of non-negative weights, sorted by key.
///
/// ```
/// use storypivot_types::sparse::SparseVec;
/// let a = SparseVec::from_pairs(vec![(2u32, 1.0), (1, 2.0), (2, 3.0)]);
/// assert_eq!(a.len(), 2);                 // duplicate keys are summed
/// assert_eq!(a.get(&2), Some(4.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec<K> {
    entries: Vec<(K, f32)>,
}

impl<K: Copy + Ord + Debug> SparseVec<K> {
    /// The empty vector.
    pub const fn new() -> Self {
        SparseVec { entries: Vec::new() }
    }

    /// Build from arbitrary pairs; duplicate keys are summed, zero or
    /// negative weights are dropped.
    pub fn from_pairs(mut pairs: Vec<(K, f32)>) -> Self {
        pairs.sort_unstable_by_key(|a| a.0);
        let mut entries: Vec<(K, f32)> = Vec::with_capacity(pairs.len());
        for (k, w) in pairs {
            match entries.last_mut() {
                Some((lk, lw)) if *lk == k => *lw += w,
                _ => entries.push((k, w)),
            }
        }
        entries.retain(|&(_, w)| w > 0.0);
        SparseVec { entries }
    }

    /// Build from keys with unit weight each (duplicates sum).
    pub fn from_keys<I: IntoIterator<Item = K>>(keys: I) -> Self {
        Self::from_pairs(keys.into_iter().map(|k| (k, 1.0)).collect())
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight for `key`, if present.
    pub fn get(&self, key: &K) -> Option<f32> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Whether `key` has a non-zero weight.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterate `(key, weight)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (K, f32)> + '_ {
        self.entries.iter().copied()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.entries.iter().map(|&(k, _)| k)
    }

    /// Add `weight` to `key` (inserting if absent). `O(n)` worst case.
    pub fn add(&mut self, key: K, weight: f32) {
        match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.entries[i].1 += weight,
            Err(i) => self.entries.insert(i, (key, weight)),
        }
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w as f64).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(_, w)| (w as f64) * (w as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product via linear merge of the sorted entry lists.
    pub fn dot(&self, other: &Self) -> f64 {
        let (mut i, mut j, mut acc) = (0usize, 0usize, 0f64);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 as f64 * b[j].1 as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[0,1]`; 0 when either vector is empty.
    pub fn cosine(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            (self.dot(other) / denom).clamp(0.0, 1.0)
        }
    }

    /// Set Jaccard over the key sets, ignoring weights.
    ///
    /// Both empty ⇒ 0 (two contentless snippets carry no evidence of
    /// referring to the same story).
    pub fn jaccard(&self, other: &Self) -> f64 {
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Weighted Jaccard: `Σ min(a,b) / Σ max(a,b)`.
    pub fn weighted_jaccard(&self, other: &Self) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (mut num, mut den) = (0f64, 0f64);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    den += a[i].1 as f64;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    den += b[j].1 as f64;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    num += a[i].1.min(b[j].1) as f64;
                    den += a[i].1.max(b[j].1) as f64;
                    i += 1;
                    j += 1;
                }
            }
        }
        den += a[i..].iter().map(|&(_, w)| w as f64).sum::<f64>();
        den += b[j..].iter().map(|&(_, w)| w as f64).sum::<f64>();
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Accumulate `other` into `self` (element-wise addition).
    pub fn merge_add(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.entries = other.entries.clone();
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.entries = merged;
    }

    /// Subtract `other` from `self`, dropping entries that reach ≤ 0
    /// (within a small epsilon to absorb float error).
    pub fn merge_sub(&mut self, other: &Self) {
        for &(k, w) in &other.entries {
            if let Ok(i) = self.entries.binary_search_by(|(ek, _)| ek.cmp(&k)) {
                self.entries[i].1 -= w;
            }
        }
        self.entries.retain(|&(_, w)| w > 1e-6);
    }

    /// Multiply every weight by `factor` (used for temporal decay).
    pub fn scale(&mut self, factor: f32) {
        for (_, w) in &mut self.entries {
            *w *= factor;
        }
        self.entries.retain(|&(_, w)| w > 1e-6);
    }

    /// The `k` heaviest entries, by descending weight (ties by key).
    pub fn top_k(&self, k: usize) -> Vec<(K, f32)> {
        let mut v = self.entries.clone();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Expose the raw sorted entries.
    pub fn as_slice(&self) -> &[(K, f32)] {
        &self.entries
    }
}

impl<K: Copy + Ord + Debug> FromIterator<(K, f32)> for SparseVec<K> {
    fn from_iter<I: IntoIterator<Item = (K, f32)>>(iter: I) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(pairs: &[(u32, f32)]) -> SparseVec<u32> {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let v = sv(&[(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(v.as_slice(), &[(1, 2.0), (3, 1.5)]);
    }

    #[test]
    fn zero_and_negative_weights_are_dropped() {
        let v = sv(&[(1, 0.0), (2, -1.0), (3, 1.0)]);
        assert_eq!(v.len(), 1);
        assert!(v.contains(&3));
    }

    #[test]
    fn dot_product_matches_dense() {
        let a = sv(&[(1, 1.0), (2, 2.0), (5, 3.0)]);
        let b = sv(&[(2, 4.0), (5, 1.0), (9, 7.0)]);
        assert!((a.dot(&b) - (2.0 * 4.0 + 3.0 * 1.0)).abs() < 1e-9);
    }

    #[test]
    fn cosine_identity_and_orthogonal() {
        let a = sv(&[(1, 3.0), (2, 4.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
        let b = sv(&[(7, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&SparseVec::new()), 0.0);
    }

    #[test]
    fn jaccard_counts_keys_only() {
        let a = sv(&[(1, 10.0), (2, 1.0)]);
        let b = sv(&[(2, 99.0), (3, 1.0)]);
        assert!((a.jaccard(&b) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(SparseVec::<u32>::new().jaccard(&SparseVec::new()), 0.0);
    }

    #[test]
    fn weighted_jaccard_known_value() {
        let a = sv(&[(1, 2.0), (2, 1.0)]);
        let b = sv(&[(1, 1.0), (3, 1.0)]);
        // min: 1 (key 1); max: 2 (key 1) + 1 (key 2) + 1 (key 3) = 4
        assert!((a.weighted_jaccard(&b) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn merge_add_then_sub_round_trips() {
        let mut a = sv(&[(1, 1.0), (3, 2.0)]);
        let b = sv(&[(2, 5.0), (3, 1.0)]);
        a.merge_add(&b);
        assert_eq!(a.as_slice(), &[(1, 1.0), (2, 5.0), (3, 3.0)]);
        a.merge_sub(&b);
        assert_eq!(a.as_slice(), &[(1, 1.0), (3, 2.0)]);
    }

    #[test]
    fn merge_sub_drops_exhausted_entries() {
        let mut a = sv(&[(1, 1.0)]);
        a.merge_sub(&sv(&[(1, 1.0)]));
        assert!(a.is_empty());
    }

    #[test]
    fn scale_decays_weights() {
        let mut a = sv(&[(1, 2.0), (2, 4.0)]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[(1, 1.0), (2, 2.0)]);
        a.scale(0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn top_k_orders_by_weight() {
        let a = sv(&[(1, 1.0), (2, 5.0), (3, 3.0), (4, 5.0)]);
        let top = a.top_k(2);
        assert_eq!(top, vec![(2, 5.0), (4, 5.0)]);
        assert_eq!(a.top_k(0), vec![]);
        assert_eq!(a.top_k(10).len(), 4);
    }

    #[test]
    fn add_inserts_and_accumulates() {
        let mut a = SparseVec::new();
        a.add(5u32, 1.0);
        a.add(2, 2.0);
        a.add(5, 1.5);
        assert_eq!(a.as_slice(), &[(2, 2.0), (5, 2.5)]);
    }

    #[test]
    fn from_keys_unit_weights() {
        let a = SparseVec::from_keys(vec![3u32, 1, 3]);
        assert_eq!(a.as_slice(), &[(1, 1.0), (3, 2.0)]);
    }
}
