//! Temporal activity signatures.
//!
//! Story alignment must compare how stories *evolve*: "two stories are
//! likely to refer to the same real-world story if their evolution is
//! similar" and "it is highly unlikely that two stories c₁ and c₂ are
//! similar if c₁ ends at tᵢ and c₂ starts at tⱼ with tᵢ ≪ tⱼ"
//! (paper §2.3). A [`TemporalSignature`] buckets a story's snippet
//! activity into fixed-width epochs; its lag-tolerant cosine similarity
//! scores evolution overlap while forgiving per-source reporting delay.

use storypivot_types::Timestamp;

/// A bucketed activity histogram along the time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalSignature {
    bucket_width: i64,
    /// Global index of the first bucket in `counts` (timestamp / width).
    origin: i64,
    counts: Vec<f32>,
}

impl TemporalSignature {
    /// An empty signature with the given bucket width in seconds
    /// (e.g. [`storypivot_types::DAY`]).
    pub fn new(bucket_width: i64) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        TemporalSignature {
            bucket_width,
            origin: 0,
            counts: Vec::new(),
        }
    }

    /// Bucket width in seconds.
    pub fn bucket_width(&self) -> i64 {
        self.bucket_width
    }

    /// Number of buckets spanned (0 when empty).
    pub fn span(&self) -> usize {
        self.counts.len()
    }

    /// Whether no activity has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total recorded activity.
    pub fn total(&self) -> f64 {
        self.counts.iter().map(|&c| c as f64).sum()
    }

    fn bucket_of(&self, t: Timestamp) -> i64 {
        t.secs().div_euclid(self.bucket_width)
    }

    /// Record `weight` units of activity at instant `t`.
    pub fn add(&mut self, t: Timestamp, weight: f32) {
        let b = self.bucket_of(t);
        if self.counts.is_empty() {
            self.origin = b;
            self.counts.push(weight);
            return;
        }
        if b < self.origin {
            let grow = (self.origin - b) as usize;
            let mut new_counts = vec![0.0; grow];
            new_counts.extend_from_slice(&self.counts);
            self.counts = new_counts;
            self.origin = b;
        } else if (b - self.origin) as usize >= self.counts.len() {
            self.counts.resize((b - self.origin) as usize + 1, 0.0);
        }
        self.counts[(b - self.origin) as usize] += weight;
    }

    /// Remove `weight` units of activity previously added at `t`
    /// (floors at zero; supports document removal).
    pub fn remove(&mut self, t: Timestamp, weight: f32) {
        let b = self.bucket_of(t);
        if self.counts.is_empty() || b < self.origin {
            return;
        }
        let i = (b - self.origin) as usize;
        if i < self.counts.len() {
            self.counts[i] = (self.counts[i] - weight).max(0.0);
        }
    }

    /// Merge another signature (same bucket width) into this one.
    ///
    /// # Panics
    /// Panics on bucket-width mismatch.
    pub fn merge(&mut self, other: &TemporalSignature) {
        assert_eq!(self.bucket_width, other.bucket_width, "bucket width mismatch");
        for (i, &c) in other.counts.iter().enumerate() {
            if c > 0.0 {
                let t = Timestamp::from_secs((other.origin + i as i64) * other.bucket_width);
                self.add(t, c);
            }
        }
    }

    /// Activity in the bucket containing `t`.
    pub fn activity_at(&self, t: Timestamp) -> f32 {
        let b = self.bucket_of(t);
        if b < self.origin {
            return 0.0;
        }
        let i = (b - self.origin) as usize;
        self.counts.get(i).copied().unwrap_or(0.0)
    }

    /// Cosine similarity of the two activity curves when `other` is
    /// shifted by `shift` buckets.
    fn shifted_cosine(&self, other: &TemporalSignature, shift: i64) -> f64 {
        let (mut dot, mut na, mut nb) = (0f64, 0f64, 0f64);
        for (i, &a) in self.counts.iter().enumerate() {
            na += (a as f64) * (a as f64);
            // Global bucket of a: origin + i. In other (shifted): that
            // bucket corresponds to other index origin + i - other.origin - shift.
            let j = self.origin + i as i64 - other.origin - shift;
            if j >= 0 && (j as usize) < other.counts.len() {
                dot += a as f64 * other.counts[j as usize] as f64;
            }
        }
        for &b in &other.counts {
            nb += (b as f64) * (b as f64);
        }
        let denom = na.sqrt() * nb.sqrt();
        if denom == 0.0 {
            0.0
        } else {
            (dot / denom).clamp(0.0, 1.0)
        }
    }

    /// Lag-tolerant evolution similarity: the best cosine over shifts of
    /// `other` by up to ±`max_lag_buckets`, linearly discounted by the
    /// shift magnitude so that perfectly synchronous evolution scores
    /// highest.
    pub fn evolution_similarity(&self, other: &TemporalSignature, max_lag_buckets: i64) -> f64 {
        assert_eq!(self.bucket_width, other.bucket_width, "bucket width mismatch");
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut best = 0.0f64;
        for shift in -max_lag_buckets..=max_lag_buckets {
            let discount = 1.0 - shift.abs() as f64 / (max_lag_buckets as f64 + 1.0);
            let s = self.shifted_cosine(other, shift) * discount;
            if s > best {
                best = s;
            }
        }
        best
    }

    /// Overlapping activity mass when `other` is shifted by `shift`
    /// buckets: `Σᵢ min(aᵢ, b₍ᵢ₋shift₎)`.
    fn shifted_min_mass(&self, other: &TemporalSignature, shift: i64) -> f64 {
        let mut acc = 0f64;
        for (i, &a) in self.counts.iter().enumerate() {
            let j = self.origin + i as i64 - other.origin - shift;
            if j >= 0 && (j as usize) < other.counts.len() {
                acc += a.min(other.counts[j as usize]) as f64;
            }
        }
        acc
    }

    /// Lag-tolerant evolution **containment**: the best over shifts of
    /// `Σ min(a,b) / min(Σa, Σb)`, discounted by shift magnitude.
    ///
    /// Unlike [`TemporalSignature::evolution_similarity`], containment
    /// does not penalize span mismatch: a one-event story whose event
    /// falls inside a long story's active period scores 1.0. Story
    /// alignment uses this as its temporal compatibility gate — a short
    /// story reported by a sparse source must still be able to align
    /// with the full story of a prolific source (paper §2.3), while
    /// temporally disjoint stories still score 0.
    pub fn containment_similarity(&self, other: &TemporalSignature, max_lag_buckets: i64) -> f64 {
        assert_eq!(self.bucket_width, other.bucket_width, "bucket width mismatch");
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let denom = self.total().min(other.total());
        if denom == 0.0 {
            return 0.0;
        }
        let mut best = 0.0f64;
        for shift in -max_lag_buckets..=max_lag_buckets {
            let discount = 1.0 - shift.abs() as f64 / (max_lag_buckets as f64 + 1.0);
            let s = (self.shifted_min_mass(other, shift) / denom).min(1.0) * discount;
            if s > best {
                best = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_types::DAY;

    fn ts(day: i64) -> Timestamp {
        Timestamp::from_secs(day * DAY)
    }

    #[test]
    fn add_buckets_activity() {
        let mut s = TemporalSignature::new(DAY);
        s.add(ts(10), 1.0);
        s.add(ts(10) + 3600, 1.0); // same day, later hour
        s.add(ts(12), 2.0);
        assert_eq!(s.activity_at(ts(10)), 2.0);
        assert_eq!(s.activity_at(ts(11)), 0.0);
        assert_eq!(s.activity_at(ts(12)), 2.0);
        assert_eq!(s.span(), 3);
        assert_eq!(s.total(), 4.0);
    }

    #[test]
    fn add_grows_backwards() {
        let mut s = TemporalSignature::new(DAY);
        s.add(ts(10), 1.0);
        s.add(ts(5), 1.0);
        assert_eq!(s.span(), 6);
        assert_eq!(s.activity_at(ts(5)), 1.0);
        assert_eq!(s.activity_at(ts(10)), 1.0);
        assert_eq!(s.activity_at(ts(7)), 0.0);
    }

    #[test]
    fn negative_timestamps_bucket_correctly() {
        let mut s = TemporalSignature::new(DAY);
        s.add(Timestamp::from_secs(-1), 1.0); // belongs to day -1
        s.add(ts(0), 1.0);
        assert_eq!(s.activity_at(Timestamp::from_secs(-10)), 1.0);
        assert_eq!(s.activity_at(ts(0)), 1.0);
        assert_eq!(s.span(), 2);
    }

    #[test]
    fn identical_evolution_scores_one() {
        let mut a = TemporalSignature::new(DAY);
        let mut b = TemporalSignature::new(DAY);
        for d in [0, 1, 2, 5, 9] {
            a.add(ts(d), 1.0);
            b.add(ts(d), 1.0);
        }
        assert!((a.evolution_similarity(&b, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_evolution_scores_zero() {
        let mut a = TemporalSignature::new(DAY);
        let mut b = TemporalSignature::new(DAY);
        a.add(ts(0), 1.0);
        b.add(ts(100), 1.0);
        assert_eq!(a.evolution_similarity(&b, 3), 0.0);
    }

    #[test]
    fn lag_tolerance_recovers_shifted_story() {
        // b reports the same activity curve one day late.
        let mut a = TemporalSignature::new(DAY);
        let mut b = TemporalSignature::new(DAY);
        for d in [0, 1, 3, 4] {
            a.add(ts(d), 1.0);
            b.add(ts(d + 1), 1.0);
        }
        let strict = a.evolution_similarity(&b, 0);
        let tolerant = a.evolution_similarity(&b, 2);
        assert!(tolerant > strict, "lag tolerance must help: {tolerant} vs {strict}");
        assert!(tolerant > 0.5);
    }

    #[test]
    fn closer_lag_scores_higher_via_discount() {
        let mut a = TemporalSignature::new(DAY);
        a.add(ts(0), 1.0);
        let mut near = TemporalSignature::new(DAY);
        near.add(ts(1), 1.0);
        let mut far = TemporalSignature::new(DAY);
        far.add(ts(3), 1.0);
        let s_near = a.evolution_similarity(&near, 3);
        let s_far = a.evolution_similarity(&far, 3);
        assert!(s_near > s_far, "{s_near} vs {s_far}");
    }

    #[test]
    fn merge_combines_curves() {
        let mut a = TemporalSignature::new(DAY);
        a.add(ts(0), 1.0);
        let mut b = TemporalSignature::new(DAY);
        b.add(ts(0), 2.0);
        b.add(ts(5), 1.0);
        a.merge(&b);
        assert_eq!(a.activity_at(ts(0)), 3.0);
        assert_eq!(a.activity_at(ts(5)), 1.0);
        assert_eq!(a.total(), 4.0);
    }

    #[test]
    fn remove_floors_at_zero() {
        let mut a = TemporalSignature::new(DAY);
        a.add(ts(1), 1.0);
        a.remove(ts(1), 5.0);
        assert_eq!(a.activity_at(ts(1)), 0.0);
        a.remove(ts(99), 1.0); // out of range: no-op
        a.remove(ts(-5), 1.0);
    }

    #[test]
    fn empty_signatures_score_zero() {
        let a = TemporalSignature::new(DAY);
        let mut b = TemporalSignature::new(DAY);
        b.add(ts(0), 1.0);
        assert_eq!(a.evolution_similarity(&b, 2), 0.0);
        assert_eq!(b.evolution_similarity(&a, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn mismatched_widths_panic() {
        let a = TemporalSignature::new(DAY);
        let b = TemporalSignature::new(3600);
        a.evolution_similarity(&b, 1);
    }
}

#[cfg(test)]
mod containment_tests {
    use super::*;
    use storypivot_types::{Timestamp, DAY};

    fn ts(day: i64) -> Timestamp {
        Timestamp::from_secs(day * DAY)
    }

    #[test]
    fn short_story_inside_long_story_scores_one() {
        let mut long = TemporalSignature::new(DAY);
        for d in 0..10 {
            long.add(ts(d), 1.0);
        }
        let mut short = TemporalSignature::new(DAY);
        short.add(ts(4), 1.0);
        assert_eq!(short.containment_similarity(&long, 0), 1.0);
        assert_eq!(long.containment_similarity(&short, 0), 1.0);
        // Cosine, by contrast, punishes the span mismatch.
        assert!(long.evolution_similarity(&short, 0) < 0.5);
    }

    #[test]
    fn disjoint_stories_contain_nothing() {
        let mut a = TemporalSignature::new(DAY);
        a.add(ts(0), 1.0);
        let mut b = TemporalSignature::new(DAY);
        b.add(ts(50), 1.0);
        assert_eq!(a.containment_similarity(&b, 3), 0.0);
    }

    #[test]
    fn lag_shift_recovers_containment_with_discount() {
        let mut a = TemporalSignature::new(DAY);
        a.add(ts(0), 1.0);
        let mut b = TemporalSignature::new(DAY);
        b.add(ts(2), 1.0);
        assert_eq!(a.containment_similarity(&b, 0), 0.0);
        let s = a.containment_similarity(&b, 3);
        assert!(s > 0.0 && s < 1.0, "shifted containment discounted: {s}");
    }

    #[test]
    fn identical_signatures_score_one() {
        let mut a = TemporalSignature::new(DAY);
        for d in [0, 2, 5] {
            a.add(ts(d), 2.0);
        }
        assert_eq!(a.containment_similarity(&a, 2), 1.0);
    }

    #[test]
    fn empty_scores_zero() {
        let e = TemporalSignature::new(DAY);
        let mut a = TemporalSignature::new(DAY);
        a.add(ts(0), 1.0);
        assert_eq!(e.containment_similarity(&a, 1), 0.0);
    }
}
