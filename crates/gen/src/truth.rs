//! Ground-truth labels for generated corpora.

use std::collections::HashMap;

use storypivot_types::{SnippetId, SourceId};

/// True story labels of a generated corpus: each snippet carries the id
/// of the real-world story it reports.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    labels: HashMap<SnippetId, u32>,
    sources: HashMap<SnippetId, SourceId>,
}

impl GroundTruth {
    /// Empty truth table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a snippet's true story and source.
    pub fn record(&mut self, snippet: SnippetId, story: u32, source: SourceId) {
        self.labels.insert(snippet, story);
        self.sources.insert(snippet, source);
    }

    /// The true story of a snippet.
    pub fn label_of(&self, snippet: SnippetId) -> Option<u32> {
        self.labels.get(&snippet).copied()
    }

    /// Forget a snippet (its document was retracted); returns whether
    /// it was present.
    pub fn remove(&mut self, snippet: SnippetId) -> bool {
        self.sources.remove(&snippet);
        self.labels.remove(&snippet).is_some()
    }

    /// Number of labelled snippets.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the truth table is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct true stories.
    pub fn story_count(&self) -> usize {
        let set: std::collections::HashSet<u32> = self.labels.values().copied().collect();
        set.len()
    }

    /// All `(snippet, label)` pairs, sorted by snippet id.
    pub fn pairs(&self) -> Vec<(SnippetId, u32)> {
        let mut v: Vec<(SnippetId, u32)> = self.labels.iter().map(|(&s, &l)| (s, l)).collect();
        v.sort_unstable();
        v
    }

    /// The truth restricted to one source — the reference clustering for
    /// *story identification* quality, which is a per-source problem.
    pub fn restricted_to(&self, source: SourceId) -> GroundTruth {
        let mut out = GroundTruth::new();
        for (&s, &l) in &self.labels {
            if self.sources.get(&s) == Some(&source) {
                out.record(s, l, source);
            }
        }
        out
    }

    /// The true clusters: story label → sorted member snippets.
    pub fn clusters(&self) -> HashMap<u32, Vec<SnippetId>> {
        let mut out: HashMap<u32, Vec<SnippetId>> = HashMap::new();
        for (&s, &l) in &self.labels {
            out.entry(l).or_default().push(s);
        }
        for members in out.values_mut() {
            members.sort_unstable();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = GroundTruth::new();
        t.record(SnippetId::new(0), 5, SourceId::new(0));
        t.record(SnippetId::new(1), 5, SourceId::new(1));
        t.record(SnippetId::new(2), 9, SourceId::new(0));
        assert_eq!(t.label_of(SnippetId::new(0)), Some(5));
        assert_eq!(t.label_of(SnippetId::new(7)), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.story_count(), 2);
    }

    #[test]
    fn restriction_keeps_only_one_source() {
        let mut t = GroundTruth::new();
        t.record(SnippetId::new(0), 5, SourceId::new(0));
        t.record(SnippetId::new(1), 5, SourceId::new(1));
        let r = t.restricted_to(SourceId::new(0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.label_of(SnippetId::new(0)), Some(5));
        assert_eq!(r.label_of(SnippetId::new(1)), None);
    }

    #[test]
    fn clusters_group_members() {
        let mut t = GroundTruth::new();
        t.record(SnippetId::new(2), 1, SourceId::new(0));
        t.record(SnippetId::new(0), 1, SourceId::new(0));
        t.record(SnippetId::new(1), 2, SourceId::new(0));
        let c = t.clusters();
        assert_eq!(c[&1], vec![SnippetId::new(0), SnippetId::new(2)]);
        assert_eq!(c[&2], vec![SnippetId::new(1)]);
    }
}
