//! Reading and writing the paper's event-tuple format.
//!
//! Paper §1: extracted data is "stored in a tuple format containing
//! information about its origin, the type of the corresponding
//! real-world event, the entities associated with the corresponding
//! activity, a short description and a timestamp", e.g.
//! `<New York Times, Accident, {Ukraine, Malaysian Airlines}, "Plane
//! Crash", 07/17/2014>`.
//!
//! This module serializes snippets to a line-oriented TSV rendering of
//! that tuple and parses it back, interning source/entity/term names on
//! the fly — the interchange path for feeding real GDELT-style
//! extractions into StoryPivot:
//!
//! ```text
//! source \t event_type \t entity;entity;… \t description words \t timestamp \t headline
//! ```

use storypivot_text::Interner;
use storypivot_types::ids::IdGen;
use storypivot_types::{
    DocId, EntityId, Error, EventType, Result, Snippet, SnippetId, Source, SourceId, SourceKind,
    TermId, Timestamp,
};

/// Interners shared across a tuple stream: names seen in any line map
/// to stable dense ids.
#[derive(Debug, Clone, Default)]
pub struct TupleCatalog {
    /// Source-name interner.
    pub sources: Interner<SourceId>,
    /// Entity-name interner.
    pub entities: Interner<EntityId>,
    /// Description-term interner.
    pub terms: Interner<TermId>,
}

/// Streaming tuple parser: each line becomes one snippet (and one
/// document).
///
/// ```
/// use storypivot_extract::TupleReader;
/// use storypivot_types::{EventType, Timestamp};
///
/// let mut reader = TupleReader::new();
/// let snippet = reader
///     .parse_line("New York Times\taccident\tUkraine;Malaysian Airlines\tplane crash\t07/17/2014\tPlane Crash")
///     .unwrap()
///     .unwrap();
/// assert_eq!(snippet.content.event_type, EventType::Accident);
/// assert_eq!(snippet.timestamp, Timestamp::from_ymd(2014, 7, 17));
/// assert_eq!(reader.catalog.entities.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TupleReader {
    /// Name catalogs built up while reading.
    pub catalog: TupleCatalog,
    snippet_ids: IdGen<SnippetId>,
    doc_ids: IdGen<DocId>,
}

impl TupleReader {
    /// A fresh reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse one tuple line. Empty lines and `#` comments yield
    /// `Ok(None)`.
    pub fn parse_line(&mut self, line: &str) -> Result<Option<Snippet>> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            return Ok(None);
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() < 5 {
            return Err(Error::Parse(format!(
                "tuple needs ≥5 tab-separated fields (source, type, entities, description, timestamp), got {}",
                fields.len()
            )));
        }
        let source = self.catalog.sources.get_or_intern(fields[0].trim());
        let event_type: EventType = fields[1].trim().parse()?;
        let entities: Vec<EntityId> = fields[2]
            .split(';')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .map(|e| self.catalog.entities.get_or_intern(e))
            .collect();
        let terms: Vec<TermId> = fields[3]
            .split_whitespace()
            .map(|t| self.catalog.terms.get_or_intern(&t.to_ascii_lowercase()))
            .collect();
        let timestamp = Timestamp::parse(fields[4])?;
        let headline = fields.get(5).map(|h| h.trim()).unwrap_or("").to_string();

        let snippet = Snippet::builder(self.snippet_ids.next_id(), source, timestamp)
            .doc(self.doc_ids.next_id())
            .entities(entities)
            .terms(terms)
            .event_type(event_type)
            .headline(headline)
            .build();
        Ok(Some(snippet))
    }

    /// Parse a whole tuple document. Returns the registered sources (in
    /// id order) and the snippets (in line order). Fails on the first
    /// malformed line, reporting its 1-based number.
    pub fn read_str(&mut self, text: &str) -> Result<(Vec<Source>, Vec<Snippet>)> {
        let mut snippets = Vec::new();
        for (no, line) in text.lines().enumerate() {
            match self.parse_line(line) {
                Ok(Some(s)) => snippets.push(s),
                Ok(None) => {}
                Err(e) => return Err(Error::Parse(format!("line {}: {e}", no + 1))),
            }
        }
        let sources = self
            .catalog
            .sources
            .iter()
            .map(|(id, name)| Source::new(id, name, SourceKind::Newspaper))
            .collect();
        Ok((sources, snippets))
    }
}

/// Serialize snippets to the tuple TSV format, resolving ids through the
/// provided name lookups (ids without a name render as `e7`-style
/// fallbacks so the output is always parseable).
pub fn write_tsv<'a, I>(
    snippets: I,
    source_name: &dyn Fn(SourceId) -> String,
    entity_name: &dyn Fn(EntityId) -> String,
    term_name: &dyn Fn(TermId) -> String,
) -> String
where
    I: IntoIterator<Item = &'a Snippet>,
{
    let mut out = String::new();
    out.push_str("# source\tevent_type\tentities\tdescription\ttimestamp\theadline\n");
    for s in snippets {
        let entities = s
            .entities()
            .keys()
            .map(entity_name)
            .collect::<Vec<_>>()
            .join(";");
        let terms = s
            .terms()
            .keys()
            .map(term_name)
            .collect::<Vec<_>>()
            .join(" ");
        // Tabs/newlines inside names would corrupt the framing; strip.
        let clean = |x: String| x.replace(['\t', '\n'], " ");
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            clean(source_name(s.source)),
            s.content.event_type,
            clean(entities),
            clean(terms),
            s.timestamp,
            clean(s.content.headline.clone()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_TUPLE: &str =
        "New York Times\taccident\tUkraine;Malaysian Airlines\tplane crash\t07/17/2014\tPlane Crash";

    #[test]
    fn parses_the_papers_example_tuple() {
        let mut r = TupleReader::new();
        let s = r.parse_line(PAPER_TUPLE).unwrap().unwrap();
        assert_eq!(s.source, SourceId::new(0));
        assert_eq!(s.content.event_type, EventType::Accident);
        assert_eq!(s.entities().len(), 2);
        assert_eq!(s.terms().len(), 2);
        assert_eq!(s.timestamp, Timestamp::from_ymd(2014, 7, 17));
        assert_eq!(s.content.headline, "Plane Crash");
        assert_eq!(r.catalog.entities.resolve(EntityId::new(0)), Some("Ukraine"));
    }

    #[test]
    fn names_intern_consistently_across_lines() {
        let mut r = TupleReader::new();
        let a = r.parse_line(PAPER_TUPLE).unwrap().unwrap();
        let b = r
            .parse_line("Wall Street Journal\taccident\tUkraine\tcrash jet\t2014-07-17\t")
            .unwrap()
            .unwrap();
        assert_ne!(a.source, b.source);
        // "Ukraine" resolves to the same entity id in both.
        let ukr = r.catalog.entities.get("ukraine").unwrap();
        assert!(a.entities().contains(&ukr));
        assert!(b.entities().contains(&ukr));
        // "crash" term shared.
        let crash = r.catalog.terms.get("crash").unwrap();
        assert!(a.terms().contains(&crash));
        assert!(b.terms().contains(&crash));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let mut r = TupleReader::new();
        let text = format!("# header\n\n{PAPER_TUPLE}\n   \n");
        let (sources, snippets) = r.read_str(&text).unwrap();
        assert_eq!(sources.len(), 1);
        assert_eq!(snippets.len(), 1);
    }

    #[test]
    fn malformed_lines_report_their_number() {
        let mut r = TupleReader::new();
        let text = format!("{PAPER_TUPLE}\nnot a tuple\n");
        let err = r.read_str(&text).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn bad_event_type_and_timestamp_fail() {
        let mut r = TupleReader::new();
        assert!(r
            .parse_line("NYT\tavalanche-party\tU\tx\t2014-07-17\t")
            .is_err());
        assert!(r.parse_line("NYT\taccident\tU\tx\tlast tuesday\t").is_err());
    }

    #[test]
    fn round_trip_through_tsv() {
        let mut r = TupleReader::new();
        let text = format!(
            "{PAPER_TUPLE}\nWall Street Journal\tdiplomacy\tRussia;European Union\tsanctions trade\t2014-07-29 10:30:00\tSanctions Widen\n"
        );
        let (_, original) = r.read_str(&text).unwrap();

        let catalog = r.catalog.clone();
        let rendered = write_tsv(
            original.iter(),
            &|s| catalog.sources.resolve(s).unwrap_or("?").to_string(),
            &|e| catalog.entities.resolve(e).unwrap_or("?").to_string(),
            &|t| catalog.terms.resolve(t).unwrap_or("?").to_string(),
        );

        let mut r2 = TupleReader::new();
        let (_, reparsed) = r2.read_str(&rendered).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for (a, b) in original.iter().zip(&reparsed) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.content.event_type, b.content.event_type);
            assert_eq!(a.entities().len(), b.entities().len());
            assert_eq!(a.terms().len(), b.terms().len());
            assert_eq!(a.content.headline, b.content.headline);
        }
    }

    #[test]
    fn unnamed_ids_render_parseable_fallbacks() {
        let s = Snippet::builder(SnippetId::new(0), SourceId::new(3), Timestamp::from_ymd(2020, 1, 1))
            .entity(EntityId::new(9), 1.0)
            .term(TermId::new(4), 1.0)
            .event_type(EventType::Other)
            .build();
        let rendered = write_tsv(
            [&s],
            &|s| s.to_string(),
            &|e| e.to_string(),
            &|t| t.to_string(),
        );
        let mut r = TupleReader::new();
        let (_, snippets) = r.read_str(&rendered).unwrap();
        assert_eq!(snippets.len(), 1);
    }
}
