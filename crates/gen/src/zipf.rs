//! Zipf-distributed sampling.
//!
//! Entity popularity in news follows a heavy-tailed law: a few entities
//! (major countries, leaders) appear in a large share of events. The
//! sampler precomputes the cumulative distribution and draws in
//! `O(log n)` via binary search.

use rand::RngExt;

/// A Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s ≥ 0` (0 =
    /// uniform).
    ///
    /// # Panics
    /// Panics when `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Draw `k` *distinct* ranks (by rejection; `k` must not exceed the
    /// number of ranks).
    pub fn sample_distinct<R: RngExt + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(k <= self.len(), "cannot draw {k} distinct from {}", self.len());
        let mut out = Vec::with_capacity(k);
        let mut guard = 0usize;
        while out.len() < k {
            let x = self.sample(rng);
            if !out.contains(&x) {
                out.push(x);
            }
            guard += 1;
            if guard > 64 * k + 1024 {
                // Pathological exponents: fall back to filling with the
                // smallest unused ranks to guarantee termination.
                for r in 0..self.len() {
                    if out.len() == k {
                        break;
                    }
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // With s=1.2 the top-10 ranks carry well over a third of the mass.
        assert!(head > n / 3, "head got {head} of {n}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1600..=2400).contains(&c), "rank {i}: {c}");
        }
    }

    #[test]
    fn distinct_sampling_has_no_duplicates() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let got = z.sample_distinct(&mut rng, 10);
        assert_eq!(got.len(), 10);
        let set: std::collections::HashSet<usize> = got.iter().copied().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn distinct_sampling_full_range() {
        let z = Zipf::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut got = z.sample_distinct(&mut rng, 5);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.1);
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let sa: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}
