//! Interactive StoryPivot exploration shell — the scriptable equivalent
//! of the paper's demo UI, over either the curated MH17 corpus
//! (§4.2.1, with document add/remove) or a large generated GDELT-like
//! corpus (§4.2.2, fixed dataset, query-only).
//!
//! ```text
//! cargo run -p storypivot-demo --bin explore                      # MH17
//! cargo run -p storypivot-demo --bin explore -- --generated 4000 # large-scale
//! echo -e "overview\nstory 0\nquit" | cargo run -p storypivot-demo --bin explore
//! ```
//!
//! Commands:
//!
//! ```text
//! docs                 document selection module (Figure 3; MH17 only)
//! overview             story overview module (Figure 4)
//! source <id>          stories per source (Figure 5)
//! story <id>           snippets per story (Figure 6)
//! snippet <id>         one snippet's extraction record
//! why <id>             explain a snippet's assignment (§4.2.1)
//! find <entity name>   stories mentioning an entity (§4.2 queries)
//! add <doc> / remove <doc>   interactive document exploration (MH17 only)
//! stats                dataset statistics
//! help / quit
//! ```

use std::io::{self, BufRead, Write};

use storypivot_core::config::PivotConfig;
use storypivot_core::pivot::StoryPivot;
use storypivot_core::query::{query_stories, StoryQuery};
use storypivot_demo::mh17::Mh17Demo;
use storypivot_demo::modules;
use storypivot_demo::names::{CorpusNames, NameSource, PipelineNames};
use storypivot_gen::{Corpus, CorpusBuilder, GenConfig};
use storypivot_text::tokenize;
use storypivot_types::{EntityId, GlobalStoryId, SnippetId, SourceId, DAY};

/// The two demo worlds of §4.2.
enum World {
    /// Curated MH17 corpus with interactive document add/remove.
    Mh17(Box<Mh17Demo>, Vec<bool>),
    /// Pre-computed large-scale run over a generated corpus.
    Generated(Box<StoryPivot>, Box<Corpus>),
}

impl World {
    fn pivot(&self) -> &StoryPivot {
        match self {
            World::Mh17(demo, _) => &demo.pivot,
            World::Generated(pivot, _) => pivot,
        }
    }

    fn with_names<T>(&self, f: impl FnOnce(&dyn NameSource) -> T) -> T {
        match self {
            World::Mh17(demo, _) => f(&PipelineNames(&demo.pipeline)),
            World::Generated(_, corpus) => f(&CorpusNames(corpus)),
        }
    }

    /// Resolve an entity by display name.
    fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        match self {
            World::Mh17(demo, _) => {
                let tokens = tokenize(name);
                demo.pipeline
                    .annotator()
                    .gazetteer()
                    .recognize(&tokens)
                    .first()
                    .map(|m| m.entity)
            }
            World::Generated(_, corpus) => corpus
                .entity_names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(name))
                .map(|i| EntityId::new(i as u32)),
        }
    }
}

fn build_world() -> World {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--generated") {
        let target: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000);
        eprintln!("generating a GDELT-like corpus (~{target} snippets) and detecting stories …");
        let corpus = CorpusBuilder::new(
            GenConfig::default()
                .with_sources(10)
                .with_target_snippets(target),
        )
        .build();
        let mut pivot = StoryPivot::new(PivotConfig::temporal(14 * DAY));
        for s in &corpus.sources {
            pivot.add_source_with_lag(s.name.clone(), s.kind, s.typical_lag);
        }
        for s in &corpus.snippets {
            pivot.ingest(s.clone()).expect("valid corpus snippet");
        }
        pivot.align();
        eprintln!(
            "done: {} snippets → {} per-source stories → {} global stories",
            corpus.len(),
            pivot.story_count(),
            pivot.global_stories().len()
        );
        World::Generated(Box::new(pivot), Box::new(corpus))
    } else {
        World::Mh17(Box::new(Mh17Demo::build()), vec![true; 12])
    }
}

fn main() {
    let mut world = build_world();
    let stdin = io::stdin();
    let mut out = io::stdout();

    println!(
        "StoryPivot explorer — {} snippets loaded. Type `help` for commands.",
        world.pivot().store().len()
    );
    print!("> ");
    out.flush().ok();

    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let arg = parts.collect::<Vec<_>>().join(" ");
        match cmd {
            "" => {}
            "help" => println!(
                "commands: docs | overview | source <id> | story <id> | snippet <id> | \
                 why <id> | find <entity> | add <doc> | remove <doc> | stats | quit"
            ),
            "docs" => match &world {
                World::Mh17(demo, ingested) => print!(
                    "{}",
                    modules::document_selection(&demo.pivot, &demo.documents, ingested)
                ),
                World::Generated(..) => {
                    println!("document selection is part of the curated demo (run without --generated)")
                }
            },
            "overview" => {
                let view = world.with_names(|n| modules::story_overview(world.pivot(), n));
                print!("{view}");
            }
            "source" => match arg.parse::<u32>() {
                Ok(id) => {
                    let view = world.with_names(|n| {
                        modules::stories_per_source(world.pivot(), SourceId::new(id), n)
                    });
                    print!("{view}");
                }
                Err(_) => println!("usage: source <numeric id>"),
            },
            "story" => match arg.parse::<u32>() {
                Ok(id) => {
                    let view = world.with_names(|n| {
                        modules::snippets_per_story(world.pivot(), GlobalStoryId::new(id), n)
                    });
                    print!("{view}");
                }
                Err(_) => println!("usage: story <numeric global story id>"),
            },
            "why" => match arg.parse::<u32>() {
                Ok(id) => {
                    let view = world
                        .with_names(|n| modules::why_snippet(world.pivot(), SnippetId::new(id), n));
                    print!("{view}");
                }
                Err(_) => println!("usage: why <numeric snippet id>"),
            },
            "snippet" => match arg.parse::<u32>() {
                Ok(id) => {
                    let view = world.with_names(|n| {
                        modules::snippet_information(world.pivot(), SnippetId::new(id), n)
                    });
                    print!("{view}");
                }
                Err(_) => println!("usage: snippet <numeric id>"),
            },
            "find" => match world.entity_by_name(&arg) {
                None => println!("unknown entity {arg:?}"),
                Some(e) => {
                    let hits = query_stories(world.pivot(), &StoryQuery::entity(e));
                    if hits.is_empty() {
                        println!("no stories mention {arg}");
                    }
                    for hit in hits.into_iter().take(10) {
                        let view = world
                            .with_names(|n| modules::story_information(world.pivot(), hit.story, n));
                        print!("{view}");
                    }
                }
            },
            "add" | "remove" => match &mut world {
                World::Generated(..) => {
                    println!("the large-scale dataset is fixed (§4.2.2); document editing is in the curated demo")
                }
                World::Mh17(demo, ingested) => match arg.parse::<usize>() {
                    Ok(i) if i < demo.len() => {
                        let result = if cmd == "add" {
                            demo.add_document(i)
                        } else {
                            demo.remove_document(i)
                        };
                        match result {
                            Ok(()) => {
                                ingested[i] = cmd == "add";
                                demo.recompute();
                                let verb = if cmd == "add" { "added" } else { "removed" };
                                println!(
                                    "{verb} document {i}; now {} global stories",
                                    demo.pivot.global_stories().len()
                                );
                            }
                            Err(e) => println!("cannot {cmd} document {i}: {e}"),
                        }
                    }
                    _ => println!("usage: {cmd} <document index 0..{}>", demo.len() - 1),
                },
            },
            "stats" => {
                let s = world.pivot().store().stats();
                println!(
                    "sources {} | snippets {} | entities {} | documents {} | coverage {}",
                    s.source_count, s.snippet_count, s.entity_count, s.document_count, s.coverage
                );
                println!(
                    "stories: {} per-source, {} global ({} cross-source)",
                    world.pivot().story_count(),
                    world.pivot().global_stories().len(),
                    world
                        .pivot()
                        .alignment()
                        .map(|o| o.cross_source_stories().count())
                        .unwrap_or(0),
                );
            }
            "quit" | "exit" => break,
            other => println!("unknown command {other:?}; type `help`"),
        }
        print!("> ");
        out.flush().ok();
    }
    println!("bye");
}
