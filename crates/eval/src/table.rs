//! Plain-text result tables (markdown-compatible) for the experiment
//! harness and EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    ///
    /// # Panics
    /// Panics on column-count mismatch — a malformed experiment table is
    /// a bug, not a runtime condition.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            out.push('|');
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (no quoting; cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a JSON array of row objects keyed by header. Numeric
    /// cells become numbers; everything else is an escaped string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  {");
            for (j, (key, cell)) in self.header.iter().zip(row).enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}: {}", json_string(key), json_cell(cell));
            }
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out
    }
}

/// A cell as a JSON value: bare if it parses as a finite JSON number
/// (no leading `+`, no `1.` / `.5` forms), a string otherwise.
fn json_cell(cell: &str) -> String {
    let numeric = cell.parse::<f64>().is_ok_and(f64::is_finite)
        && !cell.starts_with('+')
        && !cell.ends_with('.')
        && !cell.starts_with('.')
        && !cell.starts_with("-.")
        && !cell.eq_ignore_ascii_case("nan")
        && !cell.contains("inf")
        && !cell.contains("Inf");
    if numeric {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a nanosecond count as a human-readable duration.
pub fn fmt_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.0}ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.1}µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2}ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new(["method", "f1"]);
        t.row(["temporal", "0.91"]);
        t.row(["complete", "0.72"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| method"));
        assert!(md.contains("| temporal | 0.91 |"));
        assert_eq!(md.lines().count(), 4);
        // Separator row present.
        assert!(md.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    fn csv_renders_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn json_renders_typed_rows() {
        let mut t = Table::new(["method", "f1", "note"]);
        t.row(["temporal", "0.91", "ok \"quoted\""]);
        t.row(["complete", "-", "inf"]);
        let json = t.to_json();
        assert!(json.starts_with("[\n") && json.ends_with(']'));
        // Numbers stay bare, strings are escaped.
        assert!(json.contains("\"f1\": 0.91"));
        assert!(json.contains("\"method\": \"temporal\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"f1\": \"-\""));
        assert!(json.contains("\"note\": \"inf\""));
        assert_eq!(json.matches('{').count(), 2);
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(500.0), "500ns");
        assert_eq!(fmt_nanos(1_500.0), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000.0), "2.50ms");
        assert_eq!(fmt_nanos(3_200_000_000.0), "3.20s");
    }
}
