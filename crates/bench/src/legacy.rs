//! The pre-kernel identification scoring loop, preserved for the E17
//! before/after benchmark.
//!
//! This module re-implements the similarity inner loop exactly as it
//! stood before the hot-path rework, with its two performance bugs
//! intact:
//!
//! 1. cosine recomputes **both** operands' full-pass L2 norms (with
//!    `sqrt`) on every call — no cached norm;
//! 2. candidate accumulation allocates a **fresh merged vector per
//!    candidate** (`merge_alloc`), O(story size) allocation per
//!    candidate per probe.
//!
//! The harness times [`score_probe`] against the *same evolving story
//! state* as the real `Identifier::score_probe`, so the before/after
//! ns/event in `BENCH_hotpath.json` compare identical work on identical
//! data: both timers cover exactly the candidate-scoring loop, while
//! the (unchanged) decision bookkeeping evolves the state untimed.

use std::collections::HashMap;

use storypivot_core::config::{IdentifyConfig, MatchMode};
use storypivot_core::identify::Identifier;
use storypivot_store::EventStore;
use storypivot_types::{EntityId, Snippet, StoryId, TermId};

/// Full-pass Euclidean norm — the per-call cost the norm cache removes.
fn full_norm<K>(v: &[(K, f32)]) -> f64 {
    v.iter().map(|&(_, w)| (w as f64) * (w as f64)).sum::<f64>().sqrt()
}

/// Match-based merge dot product (the historical `SparseVec::dot`).
fn dot<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> f64 {
    let (mut i, mut j, mut acc) = (0usize, 0usize, 0f64);
    while i < a.len() && j < b.len() {
        let (ka, wa) = a[i];
        let (kb, wb) = b[j];
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += wa as f64 * wb as f64;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Cosine with both norms recomputed per call (performance bug #1).
fn cosine<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> f64 {
    let denom = full_norm(a) * full_norm(b);
    if denom == 0.0 {
        0.0
    } else {
        (dot(a, b) / denom).clamp(0.0, 1.0)
    }
}

/// Match-based weighted Jaccard (the historical implementation).
fn weighted_jaccard<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> f64 {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut num, mut den) = (0f64, 0f64);
    while i < a.len() && j < b.len() {
        let (ka, wa) = a[i];
        let (kb, wb) = b[j];
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => {
                den += wa as f64;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                den += wb as f64;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                num += wa.min(wb) as f64;
                den += wa.max(wb) as f64;
                i += 1;
                j += 1;
            }
        }
    }
    den += a[i..].iter().map(|&(_, w)| w as f64).sum::<f64>();
    den += b[j..].iter().map(|&(_, w)| w as f64).sum::<f64>();
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Element-wise sum allocating a fresh output vector (performance
/// bug #2: the old `merge_add` built one of these per candidate).
fn merge_alloc<K: Copy + Ord>(a: &[(K, f32)], b: &[(K, f32)]) -> Vec<(K, f32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (ka, wa) = a[i];
        let (kb, wb) = b[j];
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => {
                out.push((ka, wa));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push((kb, wb));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((ka, wa + wb));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The historical per-snippet content similarity.
fn content_sim(cfg: &IdentifyConfig, a: &Snippet, b: &Snippet) -> f64 {
    let w = &cfg.weights;
    let e = weighted_jaccard(a.entities().as_slice(), b.entities().as_slice());
    let t = cosine(a.terms().as_slice(), b.terms().as_slice());
    let ev = a.content.event_type.affinity(b.content.event_type);
    (w.entity * e + w.term * t + w.event * ev) / w.total()
}

/// The pre-rework candidate-scoring loop: per-candidate pair similarity
/// with full-pass norms, per-candidate allocating centroid accumulation,
/// ranked blend, `partial_cmp` sort. Reads (but does not mutate) the
/// identifier's story table, so it can be timed against the same
/// evolving state as the real `assign`.
///
/// Returns the ranked `(story, score)` list head and the number of
/// snippet comparisons performed.
pub fn score_probe(
    cfg: &IdentifyConfig,
    snippet: &Snippet,
    store: &EventStore,
    ident: &Identifier,
) -> (Option<(StoryId, f64)>, usize) {
    struct Candidate {
        pair: f64,
        entities: Vec<(EntityId, f32)>,
        terms: Vec<(TermId, f32)>,
    }
    let mut per_story: HashMap<StoryId, Candidate> = HashMap::new();
    let mut compared = 0usize;
    let candidates: Vec<&Snippet> = match cfg.mode {
        MatchMode::Temporal { omega } => store.window(snippet.source, snippet.timestamp, omega),
        MatchMode::Complete => store.snippets_of_source(snippet.source),
    };
    for cand in candidates {
        if cand.id == snippet.id {
            continue;
        }
        let Some(story) = ident.story_of(cand.id) else {
            continue;
        };
        compared += 1;
        let s = content_sim(cfg, snippet, cand);
        let entry = per_story.entry(story).or_insert_with(|| Candidate {
            pair: 0.0,
            entities: Vec::new(),
            terms: Vec::new(),
        });
        if s > entry.pair {
            entry.pair = s;
        }
        entry.entities = merge_alloc(&entry.entities, cand.entities().as_slice());
        entry.terms = merge_alloc(&entry.terms, cand.terms().as_slice());
    }

    let w = &cfg.weights;
    let mut ranked: Vec<(StoryId, f64)> = per_story
        .into_iter()
        .map(|(story, c)| {
            let type_affinity = snippet.content.event_type.affinity(
                ident
                    .story(story)
                    .map(|s| s.dominant_event_type())
                    .unwrap_or(snippet.content.event_type),
            );
            let centroid = (w.entity * cosine(snippet.entities().as_slice(), &c.entities)
                + w.term * cosine(snippet.terms().as_slice(), &c.terms)
                + w.event * type_affinity)
                / w.total();
            (story, cfg.pair_blend * c.pair + (1.0 - cfg.pair_blend) * centroid)
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    (ranked.first().copied(), compared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_core::config::SketchConfig;
    use storypivot_types::{
        EntityId, EventType, SnippetId, Source, SourceId, SourceKind, TermId, Timestamp, DAY,
    };

    fn snip(id: u32, day: i64, entities: &[u32], terms: &[u32]) -> Snippet {
        let mut b = Snippet::builder(
            SnippetId::new(id),
            SourceId::new(0),
            Timestamp::from_secs(day * DAY),
        )
        .event_type(EventType::Accident);
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        b.build()
    }

    /// The legacy scorer must agree with the modern `assign` on the
    /// winning story and score — it is the same math, only slower.
    #[test]
    fn legacy_scorer_agrees_with_modern_assign() {
        let cfg = IdentifyConfig {
            mode: MatchMode::Complete,
            maintenance_every: 0,
            ..IdentifyConfig::default()
        };
        let mut store = EventStore::new();
        store
            .register_source(Source::new(SourceId::new(0), "s0", SourceKind::Newspaper))
            .unwrap();
        let mut ident = Identifier::new(SourceId::new(0), cfg.clone(), SketchConfig::default());
        for (i, s) in [
            snip(0, 0, &[1, 2], &[10, 11]),
            snip(1, 1, &[1, 2], &[10, 11]),
            snip(2, 2, &[7, 8], &[20, 21]),
            snip(3, 2, &[1, 2, 3], &[10, 12]),
        ]
        .into_iter()
        .enumerate()
        {
            store.insert(s.clone()).unwrap();
            let (legacy_best, legacy_compared) = score_probe(&cfg, &s, &store, &ident);
            let d = ident.assign(&s, &store);
            assert_eq!(legacy_compared, d.compared, "snippet {i}");
            if let Some((_, score)) = legacy_best {
                assert!(
                    (score - d.best_score).abs() < 1e-9,
                    "snippet {i}: legacy {score} vs modern {}",
                    d.best_score
                );
            } else {
                assert_eq!(d.best_score, 0.0, "snippet {i}");
            }
        }
    }
}
