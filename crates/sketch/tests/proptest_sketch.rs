//! Property tests for the sketch layer.

use storypivot_sketch::{CountMin, HashFamily, MinHash, TemporalSignature, TopK};
use storypivot_substrate::prop;
use storypivot_substrate::rng::RngExt;
use storypivot_types::{Timestamp, DAY};

// ---- count-min: one-sided error -------------------------------

#[test]
fn countmin_never_undercounts() {
    prop::run(256, |rng| {
        let adds = prop::vec_with(rng, 1, 99, |r| {
            (r.random_range(0u64..200), r.random_range(1u64..20))
        });
        let mut cm = CountMin::new(5, 128, 4);
        let mut exact = std::collections::HashMap::new();
        for &(item, count) in &adds {
            cm.add(item, count);
            *exact.entry(item).or_insert(0u64) += count;
        }
        for (&item, &count) in &exact {
            assert!(cm.estimate(item) >= count, "item {item}");
        }
        assert_eq!(cm.total(), adds.iter().map(|&(_, c)| c).sum::<u64>());
    });
}

#[test]
fn countmin_merge_equals_combined_stream() {
    prop::run(128, |rng| {
        let a = prop::vec_with(rng, 0, 39, |r| {
            (r.random_range(0u64..100), r.random_range(1u64..10))
        });
        let b = prop::vec_with(rng, 0, 39, |r| {
            (r.random_range(0u64..100), r.random_range(1u64..10))
        });
        let mut ca = CountMin::new(9, 64, 4);
        let mut cb = CountMin::new(9, 64, 4);
        let mut combined = CountMin::new(9, 64, 4);
        for &(i, c) in &a {
            ca.add(i, c);
            combined.add(i, c);
        }
        for &(i, c) in &b {
            cb.add(i, c);
            combined.add(i, c);
        }
        ca.merge(&cb);
        for item in 0u64..100 {
            assert_eq!(ca.estimate(item), combined.estimate(item));
        }
    });
}

// ---- space-saving: heavy hitters survive ------------------------

#[test]
fn topk_tracked_items_never_undercount() {
    prop::run(256, |rng| {
        let adds = prop::vec_with(rng, 1, 199, |r| r.random_range(0u64..30));
        let mut tk = TopK::new(8);
        let mut exact = std::collections::HashMap::new();
        for &item in &adds {
            tk.add(item, 1);
            *exact.entry(item).or_insert(0u64) += 1;
        }
        for (item, est) in tk.ranked() {
            assert!(est >= exact[&item], "item {item}: {est} < {}", exact[&item]);
        }
        assert_eq!(tk.total(), adds.len() as u64);
    });
}

// ---- minhash ------------------------------------------------------

#[test]
fn minhash_subset_estimate_reflects_containment() {
    prop::run(128, |rng| {
        let base = prop::set_with(rng, 10, 59, |r| r.random_range(0u64..300));
        // A set vs itself minus half its elements: jaccard = |half|/|base|.
        let family = HashFamily::new(3, 256);
        let half: std::collections::HashSet<u64> =
            base.iter().copied().take(base.len() / 2).collect();
        let mb = MinHash::from_items(&family, base.iter().copied());
        let mh = MinHash::from_items(&family, half.iter().copied());
        let exact = half.len() as f64 / base.len() as f64;
        let est = mb.estimate_jaccard(&mh);
        assert!((est - exact).abs() < 0.25, "est {est} exact {exact}");
    });
}

// ---- temporal signature ----------------------------------------------

#[test]
fn temporal_add_remove_round_trips() {
    prop::run(256, |rng| {
        let adds = prop::vec_with(rng, 0, 39, |r| {
            (r.random_range(-100i64..100), r.random_range(1u32..5))
        });
        let mut sig = TemporalSignature::new(DAY);
        for &(d, w) in &adds {
            sig.add(Timestamp::from_secs(d * DAY + 7), w as f32);
        }
        let total: f64 = adds.iter().map(|&(_, w)| w as f64).sum();
        assert!((sig.total() - total).abs() < 1e-3);
        for &(d, w) in &adds {
            sig.remove(Timestamp::from_secs(d * DAY + 7), w as f32);
        }
        assert!(sig.total() < 1e-3, "residual {}", sig.total());
    });
}

#[test]
fn similarities_are_bounded_and_self_is_maximal() {
    prop::run(128, |rng| {
        let a = prop::vec_with(rng, 1, 29, |r| {
            (r.random_range(-50i64..50), r.random_range(1u32..4))
        });
        let b = prop::vec_with(rng, 1, 29, |r| {
            (r.random_range(-50i64..50), r.random_range(1u32..4))
        });
        let lag = rng.random_range(0i64..5);
        let mut sa = TemporalSignature::new(DAY);
        for &(d, w) in &a {
            sa.add(Timestamp::from_secs(d * DAY), w as f32);
        }
        let mut sb = TemporalSignature::new(DAY);
        for &(d, w) in &b {
            sb.add(Timestamp::from_secs(d * DAY), w as f32);
        }
        for f in [
            TemporalSignature::evolution_similarity,
            TemporalSignature::containment_similarity,
        ] {
            let ab = f(&sa, &sb, lag);
            assert!((0.0..=1.0).contains(&ab), "out of range: {ab}");
            let self_sim = f(&sa, &sa, lag);
            assert!((self_sim - 1.0).abs() < 1e-9, "self sim {self_sim}");
        }
        // Containment is symmetric (min-normalized); check directly.
        assert!(
            (sa.containment_similarity(&sb, lag) - sb.containment_similarity(&sa, lag)).abs()
                < 1e-9
        );
    });
}

#[test]
fn merge_total_is_sum_of_totals() {
    prop::run(256, |rng| {
        let a = prop::vec_with(rng, 0, 19, |r| {
            (r.random_range(-30i64..30), r.random_range(1u32..4))
        });
        let b = prop::vec_with(rng, 0, 19, |r| {
            (r.random_range(-30i64..30), r.random_range(1u32..4))
        });
        let mut sa = TemporalSignature::new(DAY);
        for &(d, w) in &a {
            sa.add(Timestamp::from_secs(d * DAY), w as f32);
        }
        let mut sb = TemporalSignature::new(DAY);
        for &(d, w) in &b {
            sb.add(Timestamp::from_secs(d * DAY), w as f32);
        }
        let expected = sa.total() + sb.total();
        sa.merge(&sb);
        assert!((sa.total() - expected).abs() < 1e-3);
    });
}
