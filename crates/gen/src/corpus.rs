//! The corpus builder: ground-truth world → noisy multi-source stream.

use storypivot_substrate::rng::{RngExt, SliceRandom, StdRng};

use storypivot_types::{
    DocId, EntityId, EventType, Snippet, SnippetId, Source, SourceId, SourceKind, TermId,
    Timestamp, DAY, HOUR, MINUTE,
};

use crate::config::GenConfig;
use crate::names;
use crate::truth::GroundTruth;
use crate::zipf::Zipf;

/// A generated corpus: sources, a snippet stream in *delivery order*
/// (publication lag makes event timestamps arrive out of order), and the
/// ground truth labels.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The generating configuration.
    pub config: GenConfig,
    /// Registered sources.
    pub sources: Vec<Source>,
    /// Snippets in delivery order. Snippet ids are assigned in this
    /// order, so `snippets[i].id == SnippetId(i)`.
    pub snippets: Vec<Snippet>,
    /// True story label per snippet.
    pub truth: GroundTruth,
    /// Display names of the entity catalog (index = entity id).
    pub entity_names: Vec<String>,
    /// Display names of the term vocabulary (index = term id).
    pub term_names: Vec<String>,
}

impl Corpus {
    /// Number of snippets.
    pub fn len(&self) -> usize {
        self.snippets.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.snippets.is_empty()
    }

    /// The snippet stream re-sorted by *event* time (the in-order
    /// baseline for the out-of-order experiments).
    pub fn snippets_by_event_time(&self) -> Vec<Snippet> {
        let mut v = self.snippets.clone();
        v.sort_by_key(|s| (s.timestamp, s.id));
        v
    }

    /// Fraction of adjacent delivery pairs whose event timestamps are
    /// inverted — a measure of out-of-orderness.
    pub fn inversion_fraction(&self) -> f64 {
        if self.snippets.len() < 2 {
            return 0.0;
        }
        let inv = self
            .snippets
            .windows(2)
            .filter(|w| w[0].timestamp > w[1].timestamp)
            .count();
        inv as f64 / (self.snippets.len() - 1) as f64
    }
}

/// One real-world event of a ground-truth story.
struct WorldEvent {
    story: u32,
    time: Timestamp,
    entities: Vec<u32>,
    terms: Vec<u32>,
    event_type: EventType,
}

/// A finished story process: what lineage (split/merge) inherits from.
struct FinishedStory {
    end: Timestamp,
    event_type: EventType,
    entities: Vec<u32>,
    terms: Vec<u32>,
}

/// Emit the events of one story process (with drift) and return its
/// final active sets and end time.
#[allow(clippy::too_many_arguments)]
fn emit_story_events(
    cfg: &GenConfig,
    rng: &mut StdRng,
    entity_zipf: &Zipf,
    term_zipf: &Zipf,
    events: &mut Vec<WorldEvent>,
    label: u32,
    event_type: EventType,
    start: Timestamp,
    dur_days: i64,
    n_events: usize,
    mut active_entities: Vec<u32>,
    mut active_terms: Vec<u32>,
) -> FinishedStory {
    let mut times: Vec<i64> = (0..n_events)
        .map(|_| rng.random_range(0..dur_days.max(1) * DAY))
        .collect();
    times.sort_unstable();
    let mut end = start;

    for offset in times {
        // Drift: the story's characteristics change over time (§2.2:
        // "story evolution means that characteristics of a story change
        // over time").
        if rng.random_bool(cfg.drift) {
            let slot = rng.random_range(0..active_entities.len());
            active_entities[slot] = entity_zipf.sample(rng) as u32;
        }
        if rng.random_bool(cfg.drift) {
            let slot = rng.random_range(0..active_terms.len());
            active_terms[slot] = term_zipf.sample(rng) as u32;
        }

        let ne = rng
            .random_range(cfg.entities_per_snippet.0..=cfg.entities_per_snippet.1)
            .min(active_entities.len());
        let nt = rng
            .random_range(cfg.terms_per_snippet.0..=cfg.terms_per_snippet.1)
            .min(active_terms.len());
        let mut es = active_entities.clone();
        es.shuffle(rng);
        es.truncate(ne);
        let mut ts = active_terms.clone();
        ts.shuffle(rng);
        ts.truncate(nt);

        let time = start + offset;
        end = end.max(time);
        events.push(WorldEvent {
            story: label,
            time,
            entities: es,
            terms: ts,
            event_type,
        });
    }
    FinishedStory {
        end,
        event_type,
        entities: active_entities,
        terms: active_terms,
    }
}

/// Builds [`Corpus`] values from a [`GenConfig`].
///
/// ```
/// use storypivot_gen::{CorpusBuilder, GenConfig};
///
/// let corpus = CorpusBuilder::new(
///     GenConfig::default().with_sources(5).with_target_snippets(500),
/// )
/// .build();
/// assert!(corpus.len() > 200);
/// assert!(corpus.truth.story_count() > 1);
/// // The stream arrives out of event-time order (publication lag).
/// assert!(corpus.inversion_fraction() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    cfg: GenConfig,
}

impl CorpusBuilder {
    /// A builder for the given configuration.
    pub fn new(cfg: GenConfig) -> Self {
        CorpusBuilder { cfg }
    }

    /// Generate the corpus (deterministic per configuration).
    pub fn build(&self) -> Corpus {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // ---- catalogs -------------------------------------------------
        let entity_names: Vec<String> = (0..cfg.entities)
            .map(|i| names::entity_name(cfg.seed, i as u64))
            .collect();
        let term_names: Vec<String> = (0..cfg.terms)
            .map(|i| names::pseudo_word(cfg.seed ^ 0x7E57, i as u64))
            .collect();
        let entity_zipf = Zipf::new(cfg.entities as usize, cfg.zipf_exponent);
        let term_zipf = Zipf::new(cfg.terms as usize, cfg.zipf_exponent);

        // ---- sources ----------------------------------------------------
        let kinds = [
            (SourceKind::Wire, "Wire", HOUR),
            (SourceKind::Newspaper, "Times", 6 * HOUR),
            (SourceKind::Newspaper, "Journal", 8 * HOUR),
            (SourceKind::Blog, "Dispatch", 12 * HOUR),
            (SourceKind::Magazine, "Weekly", 2 * DAY),
            (SourceKind::Social, "Feed", 30 * MINUTE),
        ];
        let sources: Vec<Source> = (0..cfg.sources)
            .map(|i| {
                let (kind, suffix, lag) = kinds[i as usize % kinds.len()];
                Source::new(
                    SourceId::new(i),
                    names::source_name(cfg.seed, i as u64, suffix),
                    kind,
                )
                .with_lag(lag)
            })
            .collect();

        // ---- ground-truth stories and events -----------------------------
        let mut events: Vec<WorldEvent> = Vec::new();
        let mut next_label = 0u32;
        let mut finished: Vec<FinishedStory> = Vec::new();
        let corpus_end = cfg.end();

        for _ in 0..cfg.stories {
            let label = next_label;
            next_label += 1;
            let event_type = EventType::ALL[rng.random_range(0..EventType::COUNT)];
            let dur_days =
                rng.random_range(cfg.story_duration_days.0..=cfg.story_duration_days.1);
            let latest_start = (cfg.duration_days - dur_days).max(1);
            let start = cfg.start + rng.random_range(0..latest_start) * DAY;
            let n_events = ((cfg.events_per_story * (0.5 + rng.random::<f64>())).round() as usize)
                .max(2);
            let active_entities: Vec<u32> = entity_zipf
                .sample_distinct(&mut rng, cfg.entities_per_story)
                .into_iter()
                .map(|e| e as u32)
                .collect();
            let active_terms: Vec<u32> = term_zipf
                .sample_distinct(&mut rng, cfg.terms_per_story)
                .into_iter()
                .map(|t| t as u32)
                .collect();
            finished.push(emit_story_events(
                cfg, &mut rng, &entity_zipf, &term_zipf, &mut events,
                label, event_type, start, dur_days, n_events,
                active_entities, active_terms,
            ));
        }

        // ---- lineage: splits and merges (paper §2.1) ----------------------
        //
        // A split story spawns two successors, each inheriting half of
        // the parent's final content; a merge pairs two base stories
        // into one successor inheriting from both. Successors carry new
        // ground-truth labels — after the transition they *are*
        // different stories (the Ukraine example: politics and economics
        // interweave, then separate).
        let mut merge_partner: Option<usize> = None;
        let spawn = |rng: &mut StdRng,
                         events: &mut Vec<WorldEvent>,
                         next_label: &mut u32,
                         inherited_entities: Vec<u32>,
                         inherited_terms: Vec<u32>,
                         event_type: EventType,
                         after: Timestamp| {
            let start = after + rng.random_range(1i64..=3) * DAY;
            if start + 2 * DAY >= corpus_end {
                return; // no room left in the observation period
            }
            let max_dur = ((corpus_end - start) / DAY).max(2);
            let dur_days = rng
                .random_range(cfg.story_duration_days.0..=cfg.story_duration_days.1)
                .min(max_dur);
            let n_events =
                ((cfg.events_per_story * (0.25 + rng.random::<f64>() * 0.5)).round() as usize).max(2);
            // Top up inherited content with fresh draws.
            let mut entities = inherited_entities;
            while entities.len() < cfg.entities_per_story {
                let e = entity_zipf.sample(rng) as u32;
                if !entities.contains(&e) {
                    entities.push(e);
                }
            }
            let mut terms = inherited_terms;
            while terms.len() < cfg.terms_per_story {
                let t = term_zipf.sample(rng) as u32;
                if !terms.contains(&t) {
                    terms.push(t);
                }
            }
            let label = *next_label;
            *next_label += 1;
            emit_story_events(
                cfg, rng, &entity_zipf, &term_zipf, events,
                label, event_type, start, dur_days, n_events, entities, terms,
            );
        };

        for i in 0..finished.len() {
            if rng.random_bool(cfg.split_prob) {
                // Split: two successors, each with half the content.
                let parent = &finished[i];
                let (even, odd): (Vec<_>, Vec<_>) = parent
                    .entities
                    .iter()
                    .copied()
                    .enumerate()
                    .partition(|(k, _)| k % 2 == 0);
                let (teven, todd): (Vec<_>, Vec<_>) = parent
                    .terms
                    .iter()
                    .copied()
                    .enumerate()
                    .partition(|(k, _)| k % 2 == 0);
                let strip = |v: Vec<(usize, u32)>| v.into_iter().map(|(_, x)| x).collect::<Vec<_>>();
                let (end, ty) = (parent.end, parent.event_type);
                spawn(&mut rng, &mut events, &mut next_label, strip(even), strip(teven), ty, end);
                spawn(&mut rng, &mut events, &mut next_label, strip(odd), strip(todd), ty, end);
            } else if rng.random_bool(cfg.merge_prob) {
                match merge_partner.take() {
                    None => merge_partner = Some(i),
                    Some(j) => {
                        // Merge: one successor inheriting from both.
                        let (a, b) = (&finished[i], &finished[j]);
                        let mut entities: Vec<u32> = a.entities.iter().chain(&b.entities).copied().collect();
                        entities.dedup();
                        entities.truncate(cfg.entities_per_story + 2);
                        let mut terms: Vec<u32> = a.terms.iter().chain(&b.terms).copied().collect();
                        terms.dedup();
                        terms.truncate(cfg.terms_per_story + 2);
                        let after = a.end.max(b.end);
                        let ty = a.event_type;
                        spawn(&mut rng, &mut events, &mut next_label, entities, terms, ty, after);
                    }
                }
            }
        }

        // ---- per-story source coverage (lineage successors included) ----
        let covering: Vec<Vec<bool>> = (0..next_label)
            .map(|_| {
                (0..cfg.sources)
                    .map(|_| rng.random_bool(cfg.coverage))
                    .collect()
            })
            .collect();

        // ---- observe events through sources ------------------------------
        struct Pending {
            delivery: Timestamp,
            source: SourceId,
            timestamp: Timestamp,
            entities: Vec<u32>,
            terms: Vec<u32>,
            event_type: EventType,
            story: u32,
            headline: String,
        }
        let mut pending: Vec<Pending> = Vec::new();
        for ev in &events {
            for src in &sources {
                if !covering[ev.story as usize][src.id.raw() as usize] {
                    continue;
                }
                if !rng.random_bool(cfg.report_prob) {
                    continue;
                }
                // Timestamp estimate jitter.
                let jitter = if cfg.timestamp_jitter > 0 {
                    rng.random_range(-cfg.timestamp_jitter..=cfg.timestamp_jitter)
                } else {
                    0
                };
                // Publication lag: exponential with source-typical mean.
                let mean_lag = (cfg.mean_pub_lag + src.typical_lag).max(1) as f64;
                let u: f64 = rng.random();
                let pub_lag = (-(1.0 - u).ln() * mean_lag) as i64;

                // Annotation noise.
                let mut es = ev.entities.clone();
                if es.len() > 1 && rng.random_bool(cfg.entity_dropout) {
                    let drop = rng.random_range(0..es.len());
                    es.remove(drop);
                }
                let mut ts = ev.terms.clone();
                if rng.random_bool(cfg.term_noise) {
                    ts.push(term_zipf.sample(&mut rng) as u32);
                }
                if ts.len() > 1 && rng.random_bool(cfg.term_noise / 2.0) {
                    let drop = rng.random_range(0..ts.len());
                    ts.remove(drop);
                }
                let event_type = if rng.random_bool(0.05) {
                    EventType::ALL[rng.random_range(0..EventType::COUNT)]
                } else {
                    ev.event_type
                };

                let headline = format!(
                    "{}: {} — {}",
                    event_type,
                    es.iter()
                        .map(|&e| entity_names[e as usize].as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    ts.first()
                        .map(|&t| term_names[t as usize].as_str())
                        .unwrap_or("report"),
                );

                pending.push(Pending {
                    delivery: ev.time + pub_lag,
                    source: src.id,
                    timestamp: ev.time + jitter,
                    entities: es,
                    terms: ts,
                    event_type,
                    story: ev.story,
                    headline,
                });
            }
        }

        // ---- deliver ----------------------------------------------------
        pending.sort_by_key(|p| p.delivery);
        let mut truth = GroundTruth::new();
        let snippets: Vec<Snippet> = pending
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let id = SnippetId::new(i as u32);
                truth.record(id, p.story, p.source);
                let mut b = Snippet::builder(id, p.source, p.timestamp)
                    .doc(DocId::new(i as u32))
                    .event_type(p.event_type)
                    .headline(p.headline);
                for e in p.entities {
                    b = b.entity(EntityId::new(e), 1.0);
                }
                for t in p.terms {
                    b = b.term(TermId::new(t), 1.0);
                }
                b.build()
            })
            .collect();

        Corpus {
            config: self.cfg.clone(),
            sources,
            snippets,
            truth,
            entity_names,
            term_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        CorpusBuilder::new(GenConfig {
            sources: 4,
            entities: 100,
            terms: 300,
            stories: 8,
            ..GenConfig::default()
        })
        .build()
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.snippets, b.snippets);
        assert_eq!(a.truth.pairs(), b.truth.pairs());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = CorpusBuilder::new(GenConfig {
            sources: 4,
            entities: 100,
            terms: 300,
            stories: 8,
            seed: 99,
            ..GenConfig::default()
        })
        .build();
        assert_ne!(a.snippets, b.snippets);
    }

    #[test]
    fn every_snippet_is_labelled_and_valid() {
        let c = small();
        assert!(!c.is_empty());
        for s in &c.snippets {
            assert!(c.truth.label_of(s.id).is_some());
            assert!(s.source.raw() < c.config.sources);
            assert!(!s.content.is_vacuous());
            assert!(s.timestamp >= c.config.start - c.config.timestamp_jitter);
        }
    }

    #[test]
    fn snippet_count_near_expectation() {
        let c = small();
        let expected = c.config.expected_snippets() as f64;
        let actual = c.len() as f64;
        assert!(
            actual > expected * 0.5 && actual < expected * 1.8,
            "expected ≈{expected}, got {actual}"
        );
    }

    #[test]
    fn delivery_order_is_out_of_order_in_event_time() {
        let c = small();
        let f = c.inversion_fraction();
        assert!(f > 0.0, "publication lag must cause inversions");
        assert!(f < 0.6, "but not total shuffling: {f}");
        // The re-sorted stream is monotone.
        let sorted = c.snippets_by_event_time();
        assert!(sorted.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn snippet_ids_match_positions() {
        let c = small();
        for (i, s) in c.snippets.iter().enumerate() {
            assert_eq!(s.id, SnippetId::new(i as u32));
        }
    }

    #[test]
    fn stories_span_multiple_sources() {
        let c = small();
        let mut sources_per_story: std::collections::HashMap<u32, std::collections::HashSet<SourceId>> =
            std::collections::HashMap::new();
        for s in &c.snippets {
            sources_per_story
                .entry(c.truth.label_of(s.id).unwrap())
                .or_default()
                .insert(s.source);
        }
        let multi = sources_per_story.values().filter(|v| v.len() > 1).count();
        assert!(multi >= sources_per_story.len() / 2, "most stories should be multi-source");
    }

    #[test]
    fn scaling_to_target_works() {
        let c = CorpusBuilder::new(
            GenConfig {
                sources: 5,
                ..GenConfig::default()
            }
            .with_target_snippets(2_000),
        )
        .build();
        assert!(c.len() > 1_000 && c.len() < 4_000, "got {}", c.len());
    }
}

#[cfg(test)]
mod lineage_tests {
    use super::*;
    use crate::config::GenConfig;

    fn with_lineage(split: f64, merge: f64) -> Corpus {
        CorpusBuilder::new(GenConfig {
            sources: 4,
            entities: 100,
            terms: 300,
            stories: 20,
            split_prob: split,
            merge_prob: merge,
            ..GenConfig::default()
        })
        .build()
    }

    #[test]
    fn splits_and_merges_create_successor_stories() {
        let none = with_lineage(0.0, 0.0);
        let some = with_lineage(0.6, 0.4);
        assert_eq!(none.truth.story_count(), 20, "no lineage → exactly the base stories");
        assert!(
            some.truth.story_count() > 20,
            "lineage must add successor stories, got {}",
            some.truth.story_count()
        );
    }

    #[test]
    fn lineage_is_deterministic() {
        let a = with_lineage(0.5, 0.3);
        let b = with_lineage(0.5, 0.3);
        assert_eq!(a.snippets, b.snippets);
    }

    #[test]
    fn successor_events_stay_inside_the_corpus_period() {
        let c = with_lineage(0.8, 0.5);
        for s in &c.snippets {
            assert!(
                s.timestamp <= c.config.end() + c.config.timestamp_jitter,
                "event at {} beyond corpus end {}",
                s.timestamp,
                c.config.end()
            );
        }
    }

    #[test]
    fn successors_share_content_with_parents() {
        // With aggressive splitting, successor stories must reuse some
        // parent entities (that is the hard part for identification).
        let c = with_lineage(1.0, 0.0);
        let clusters = c.truth.clusters();
        assert!(clusters.len() > 20);
        // Each story has a coherent entity pool; successors (labels >= 20)
        // exist and carry snippets.
        let successor_snippets: usize = clusters
            .iter()
            .filter(|&(&l, _)| l >= 20)
            .map(|(_, v)| v.len())
            .sum();
        assert!(successor_snippets > 0);
    }
}
