//! A blocking client for the pivotd wire protocol.

use std::io::{BufReader, BufWriter, Write as _};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use storypivot_substrate::rng::splitmix64;
use storypivot_types::{DocId, Error, Result, Snippet, SourceId, SourceKind, StoryId};

use crate::proto::{frame, read_frame, Request, Response, StorySummary};
use crate::stats::ServeStats;

/// The outcome of a single-snippet ingest: a story assignment, a BUSY
/// push-back from a full shard queue, or a SHED drop from a write that
/// sat in queue past its deadline budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestReply {
    /// The snippet joined this per-source story.
    Assigned(StoryId),
    /// The shard queue was full; retry after the hinted backoff.
    Busy {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
    /// The write was admitted but expired in queue and was dropped
    /// unapplied; retrying starts a fresh deadline budget.
    Shed {
        /// Suggested backoff in milliseconds.
        retry_after_ms: u32,
    },
}

/// How many push-backs an [`Client::ingest_backoff`] call absorbed
/// before the snippet landed, broken down by kind so overload reports
/// can tell admission-control rejections (BUSY) apart from
/// deadline-expiry drops (SHED).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryStats {
    /// Retries caused by BUSY (queue full at admission).
    pub busy: u32,
    /// Retries caused by SHED (deadline expired in queue).
    pub shed: u32,
}

impl RetryStats {
    /// Total retries of either kind.
    pub fn total(&self) -> u32 {
        self.busy + self.shed
    }
}

/// Jittered exponential backoff for BUSY replies: the first sleep
/// honors the server's retry-after hint, every further BUSY doubles the
/// window, each sleep is drawn uniformly from the upper half of the
/// window (decorrelating synchronized clients), and `cap_ms` bounds any
/// single sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Attempts allowed in total (the initial try plus retries);
    /// exhausting them yields [`Error::Busy`]. Values below 1 behave
    /// as 1.
    pub max_attempts: u32,
    /// Floor for the first backoff window, in milliseconds (raised to
    /// the server's hint when the hint is larger).
    pub base_ms: u64,
    /// Ceiling on any single sleep, in milliseconds.
    pub cap_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 8,
            base_ms: 1,
            cap_ms: 250,
        }
    }
}

/// The sleep before retry number `attempt` (1-based), in milliseconds.
/// Pure so callers and tests can reason about bounds; `jitter_state`
/// threads the deterministic jitter stream.
///
/// Hostile hints are harmless by construction: the result is clamped to
/// `[1, cap_ms.max(1)]`, so a huge `retry-after` cannot overflow the
/// exponential window (the shift is bounded and the multiply saturates)
/// and a zero hint cannot produce a zero-sleep spin loop.
fn backoff_delay_ms(
    policy: BackoffPolicy,
    hint_ms: u32,
    attempt: u32,
    jitter_state: &mut u64,
) -> u64 {
    let hint = hint_ms as u64;
    let cap = policy.cap_ms.max(1);
    let window = policy
        .base_ms
        .max(hint)
        .max(1)
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
        .min(cap);
    let low = window / 2;
    let jittered = low + splitmix64(jitter_state) % (window - low + 1);
    // Never undercut the server's hint (unless the cap itself does),
    // and never return zero — a 0 ms "sleep" would let a zero hint turn
    // the retry loop into a busy spin.
    jittered.max(hint.min(cap)).max(1)
}

/// One delivery from a leader's replication stream (the decoded form
/// of REPL_FRAME / REPL_CHECKPOINT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplDelivery {
    /// Whole WAL records from the subscribed offset onward; empty when
    /// the follower is caught up.
    Frame {
        /// Leader checkpoint generation these records apply on top of.
        generation: u64,
        /// Leader WAL offset just past the shipped records.
        next_offset: u64,
        /// The leader's total WAL length (drives the byte-lag gauge).
        leader_wal_len: u64,
        /// Ops the leader has applied since its generation.
        leader_ops: u64,
        /// Concatenated WAL records, leader framing intact.
        records: Vec<u8>,
    },
    /// The follower's generation is stale: bootstrap from these
    /// verbatim checkpoint bytes (empty = fresh engine) and resubscribe
    /// from offset zero.
    Checkpoint {
        /// The leader's newest checkpoint generation.
        generation: u64,
        /// Raw checkpoint file bytes, shipped unmodified.
        checkpoint: Vec<u8>,
    },
}

/// One connection to a pivotd server. Requests are strictly
/// request/response over the connection, so a `Client` is `!Sync` by
/// design — open one per thread.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Bound every socket read and write; `None` restores blocking
    /// forever. Replica pullers use this so a dead leader surfaces as
    /// an `Io` error instead of a wedged thread.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.writer.get_ref().set_write_timeout(timeout)?;
        Ok(())
    }

    /// Send one request and wait for its response frame.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.writer.write_all(&frame(|b| req.encode(b)))?;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Some(payload) => Response::decode(&payload),
            None => Err(Error::Io("server closed the connection".into())),
        }
    }

    /// Queue one request without waiting for its response (pipelining).
    /// Frames accumulate in the write buffer until [`Client::flush`];
    /// responses arrive in request order via [`Client::recv`].
    pub fn send(&mut self, req: &Request) -> Result<()> {
        self.writer.write_all(&frame(|b| req.encode(b)))?;
        Ok(())
    }

    /// Push every queued frame onto the wire.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Read the next response frame. Responses are strictly in request
    /// order — the server re-sequences pipelined completions — so the
    /// n-th `recv` answers the n-th `send`.
    /// NOT_LEADER redirects surface as [`Error::NotLeader`] (carrying
    /// the leader's address) rather than a raw response, here and in
    /// [`Client::pipelined`], so write loops pointed at a replica fail
    /// with something actionable.
    pub fn recv(&mut self) -> Result<Response> {
        match read_frame(&mut self.reader)? {
            Some(payload) => match Response::decode(&payload)? {
                Response::NotLeader { leader } => Err(Error::NotLeader {
                    leader_addr: leader,
                }),
                resp => Ok(resp),
            },
            None => Err(Error::Io("server closed the connection".into())),
        }
    }

    /// Send a whole window of requests back-to-back, then collect every
    /// response in order: one round trip instead of `reqs.len()`.
    pub fn pipelined(&mut self, reqs: &[Request]) -> Result<Vec<Response>> {
        for req in reqs {
            self.send(req)?;
        }
        self.flush()?;
        reqs.iter().map(|_| self.recv()).collect()
    }

    /// Send a request and fail on an error response.
    fn request_ok(&mut self, req: &Request) -> Result<Response> {
        self.request(req)?.into_result()
    }

    /// Register a source; the server allocates and returns its id.
    pub fn add_source(&mut self, name: &str, kind: SourceKind, lag: i64) -> Result<SourceId> {
        match self.request_ok(&Request::AddSource {
            name: name.to_string(),
            kind,
            lag,
        })? {
            Response::SourceAdded(id) => Ok(id),
            other => Err(unexpected("SourceAdded", &other)),
        }
    }

    /// Ingest one snippet, surfacing BUSY and SHED to the caller.
    pub fn ingest(&mut self, snippet: &Snippet) -> Result<IngestReply> {
        match self.request_ok(&Request::IngestSnippet(snippet.clone()))? {
            Response::Ingested(story) => Ok(IngestReply::Assigned(story)),
            Response::Busy { retry_after_ms } => Ok(IngestReply::Busy { retry_after_ms }),
            Response::Shed { retry_after_ms } => Ok(IngestReply::Shed { retry_after_ms }),
            other => Err(unexpected("Ingested/Busy/Shed", &other)),
        }
    }

    /// Ingest one snippet, sleeping out BUSY replies up to `max_retries`
    /// times. Returns the story id and how many retries were needed.
    pub fn ingest_retry(&mut self, snippet: &Snippet, max_retries: u32) -> Result<(StoryId, u32)> {
        let mut retries = 0;
        loop {
            match self.ingest(snippet)? {
                IngestReply::Assigned(story) => return Ok((story, retries)),
                IngestReply::Busy { retry_after_ms } | IngestReply::Shed { retry_after_ms } => {
                    if retries >= max_retries {
                        return Err(Error::Io(format!(
                            "shard still busy after {max_retries} retries"
                        )));
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
                }
            }
        }
    }

    /// Ingest one snippet with jittered exponential backoff on BUSY and
    /// SHED. Returns the story id and the per-kind retry counts; once
    /// `policy.max_attempts` tries all came back pushed-back the typed
    /// [`Error::Busy`] is returned (with the attempt count) so callers
    /// can tell saturation apart from I/O failure. Jitter is
    /// deterministic per snippet id.
    pub fn ingest_backoff(
        &mut self,
        snippet: &Snippet,
        policy: BackoffPolicy,
    ) -> Result<(StoryId, RetryStats)> {
        let mut jitter_state = 0x9E37_79B9_7F4A_7C15u64 ^ snippet.id.raw() as u64;
        let max_attempts = policy.max_attempts.max(1);
        let mut attempts = 0u32;
        let mut retries = RetryStats::default();
        loop {
            attempts += 1;
            let retry_after_ms = match self.ingest(snippet)? {
                IngestReply::Assigned(story) => return Ok((story, retries)),
                IngestReply::Busy { retry_after_ms } => {
                    retries.busy += 1;
                    retry_after_ms
                }
                IngestReply::Shed { retry_after_ms } => {
                    retries.shed += 1;
                    retry_after_ms
                }
            };
            if attempts >= max_attempts {
                return Err(Error::Busy { attempts });
            }
            let ms = backoff_delay_ms(policy, retry_after_ms, attempts, &mut jitter_state);
            std::thread::sleep(Duration::from_millis(ms));
        }
    }

    /// Ingest a batch (the server blocks on full queues instead of BUSY).
    pub fn ingest_batch(&mut self, batch: Vec<Snippet>) -> Result<u32> {
        match self.request_ok(&Request::IngestBatch(batch))? {
            Response::BatchIngested(n) => Ok(n),
            other => Err(unexpected("BatchIngested", &other)),
        }
    }

    /// The full per-source story partition, ordered by story id.
    pub fn query_stories(&mut self) -> Result<Vec<StorySummary>> {
        match self.request_ok(&Request::QueryStories)? {
            Response::Stories(stories) => Ok(stories),
            other => Err(unexpected("Stories", &other)),
        }
    }

    /// One story's summary.
    pub fn get_story(&mut self, id: StoryId) -> Result<StorySummary> {
        match self.request_ok(&Request::GetStory(id))? {
            Response::Story(story) => Ok(story),
            other => Err(unexpected("Story", &other)),
        }
    }

    /// Remove a document everywhere; returns how many snippets left.
    pub fn remove_doc(&mut self, doc: DocId) -> Result<u32> {
        match self.request_ok(&Request::RemoveDoc(doc))? {
            Response::Removed(n) => Ok(n),
            other => Err(unexpected("Removed", &other)),
        }
    }

    /// The merged Prometheus-style metrics exposition across all
    /// shards (counters summed, histograms merged bucket-wise).
    pub fn metrics(&mut self) -> Result<String> {
        match self.request_ok(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Per-shard serving statistics.
    pub fn stats(&mut self) -> Result<ServeStats> {
        match self.request_ok(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Ask the server to drain, checkpoint, and stop. The ack arrives
    /// only after every shard's state is durable.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request_ok(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected("ShutdownAck", &other)),
        }
    }

    /// One replication poll: ask the leader for shard `shard`'s WAL
    /// records past `wal_offset` on `generation`. Yields either a
    /// frame of records or a checkpoint to re-bootstrap from; sending
    /// this to a replica yields [`Error::NotLeader`].
    pub fn repl_subscribe(
        &mut self,
        shard: u32,
        generation: u64,
        wal_offset: u64,
    ) -> Result<ReplDelivery> {
        match self.request_ok(&Request::ReplSubscribe {
            shard,
            generation,
            wal_offset,
        })? {
            Response::ReplFrame {
                generation,
                next_offset,
                leader_wal_len,
                leader_ops,
                records,
            } => Ok(ReplDelivery::Frame {
                generation,
                next_offset,
                leader_wal_len,
                leader_ops,
                records,
            }),
            Response::ReplCheckpoint {
                generation,
                checkpoint,
            } => Ok(ReplDelivery::Checkpoint {
                generation,
                checkpoint,
            }),
            other => Err(unexpected("ReplFrame or ReplCheckpoint", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Codec(format!("expected a {wanted} response, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_honors_hint_grows_and_caps() {
        let policy = BackoffPolicy {
            max_attempts: 10,
            base_ms: 1,
            cap_ms: 200,
        };
        let mut state = 42u64;
        for attempt in 1..=12u32 {
            let d = backoff_delay_ms(policy, 10, attempt, &mut state);
            assert!(d >= 10, "attempt {attempt}: {d} ms undercuts the hint");
            assert!(d <= 200, "attempt {attempt}: {d} ms exceeds the cap");
            // The window for retry k is hint * 2^(k-1), capped.
            let window = (10u64 << (attempt - 1).min(16)).min(200);
            assert!(d <= window, "attempt {attempt}: {d} ms outside window {window}");
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_spread() {
        let policy = BackoffPolicy::default();
        let run = |seed: u64| {
            let mut state = seed;
            (1..=6u32)
                .map(|a| backoff_delay_ms(policy, 8, a, &mut state))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Different jitter streams must not march in lockstep.
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn backoff_tolerates_degenerate_policies() {
        let mut state = 1u64;
        // Zero everything: still returns a sane (>= 0, <= 1ms) delay.
        let policy = BackoffPolicy {
            max_attempts: 0,
            base_ms: 0,
            cap_ms: 0,
        };
        let d = backoff_delay_ms(policy, 0, 1, &mut state);
        assert_eq!(d, 1);
        // A hint above the cap is clamped to the cap.
        let policy = BackoffPolicy {
            max_attempts: 3,
            base_ms: 1,
            cap_ms: 5,
        };
        let d = backoff_delay_ms(policy, 1000, 1, &mut state);
        assert_eq!(d, 5);
    }

    #[test]
    fn hostile_hints_cannot_overflow_or_spin() {
        let policy = BackoffPolicy::default();
        let mut state = 3u64;
        // A u32::MAX retry-after hint is clamped to the cap at every
        // attempt — no overflow, no multi-hour sleep.
        for attempt in [1u32, 2, 17, u32::MAX] {
            let d = backoff_delay_ms(policy, u32::MAX, attempt, &mut state);
            assert_eq!(d, policy.cap_ms, "attempt {attempt}");
        }
        // A zero hint never yields a zero (spin-loop) delay.
        for attempt in [1u32, 2, 3, u32::MAX] {
            let d = backoff_delay_ms(policy, 0, attempt, &mut state);
            assert!((1..=policy.cap_ms).contains(&d), "attempt {attempt}: {d}");
        }
        // Even an all-zero policy paces retries at >= 1 ms.
        let zero = BackoffPolicy {
            max_attempts: 1,
            base_ms: 0,
            cap_ms: 0,
        };
        for _ in 0..32 {
            assert_eq!(backoff_delay_ms(zero, 0, 1, &mut state), 1);
        }
    }
}
