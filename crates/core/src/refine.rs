//! Story refinement (paper §2.3, Figure 1d).
//!
//! Alignment reveals identification mistakes: in the paper's running
//! example, `v¹₄` was wrongly assigned to story `c¹₁`, and correlating
//! events across sources exposes the irregularity. Refinement moves such
//! snippets to the global story where they are most *cohesive* and
//! propagates the decision back into the per-source story sets.
//!
//! The rule is conservative (hysteresis): a snippet only moves when its
//! cohesion in the best competing global story exceeds cohesion in its
//! current one by a configurable margin.

use std::collections::HashMap;

use storypivot_store::EventStore;
use storypivot_types::{GlobalStoryId, SnippetId, SourceId, StoryId};

use crate::align::AlignOutcome;
use crate::config::RefineConfig;
use crate::identify::{Identifier, STORY_ID_STRIDE};
use crate::sim::SimWeights;

/// One corrective move performed by refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineMove {
    /// The snippet that moved.
    pub snippet: SnippetId,
    /// Its per-source story before the move.
    pub from_story: StoryId,
    /// Its per-source story after the move (possibly freshly created).
    pub to_story: StoryId,
    /// The global story it left.
    pub from_global: GlobalStoryId,
    /// The global story it joined.
    pub to_global: GlobalStoryId,
}

/// Summary of a [`crate::pivot::StoryPivot::refine`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefineReport {
    /// All moves across all rounds, in application order.
    pub moves: Vec<RefineMove>,
    /// Number of rounds executed (each followed by re-alignment).
    pub rounds: usize,
}

impl RefineReport {
    /// Number of snippets moved.
    pub fn move_count(&self) -> usize {
        self.moves.len()
    }
}

/// The source owning a story id (story ids are partitioned by source,
/// see [`STORY_ID_STRIDE`]).
#[inline]
pub fn story_source(story: StoryId) -> SourceId {
    SourceId::new(story.raw() / STORY_ID_STRIDE)
}

/// Cohesion of snippet `v` with a set of member snippets: the maximum
/// content similarity to any *other* member (single-link, mirroring the
/// identification criterion).
fn cohesion(
    v: &storypivot_types::Snippet,
    members: &[SnippetId],
    store: &EventStore,
    weights: &SimWeights,
) -> f64 {
    // Bind the probe once; the loop only pays the per-member merge.
    let scorer = weights.probe(&v.content);
    let mut best = 0.0f64;
    for &m in members {
        if m == v.id {
            continue;
        }
        if let Some(other) = store.get(m) {
            let s = scorer.score(&other.content);
            if s > best {
                best = s;
            }
        }
    }
    best
}

/// One refinement sweep against a fixed alignment outcome. Returns the
/// moves applied to `identifiers` (callers re-align afterwards).
pub fn refine_once(
    store: &EventStore,
    identifiers: &mut HashMap<SourceId, Identifier>,
    outcome: &AlignOutcome,
    cfg: &RefineConfig,
    weights: &SimWeights,
) -> Vec<RefineMove> {
    // Member snippet lists per global story.
    let mut members_of: HashMap<GlobalStoryId, Vec<SnippetId>> = HashMap::new();
    for g in &outcome.global_stories {
        members_of.insert(g.id, g.members.iter().map(|&(id, _)| id).collect());
    }

    // ---- plan moves on the frozen state ---------------------------
    let mut planned: Vec<RefineMove> = Vec::new();
    for g in &outcome.global_stories {
        for &(snippet_id, _) in &g.members {
            let Some(v) = store.get(snippet_id) else { continue };
            let current = cohesion(v, &members_of[&g.id], store, weights);

            // Candidate alternative global stories: wherever snippets
            // sharing entities with v live.
            let mut seen: Vec<GlobalStoryId> = Vec::new();
            let mut best_alt: Option<(GlobalStoryId, f64)> = None;
            for (cand, _overlap) in store.candidates_by_entities(v.entities().keys()) {
                if cand == v.id {
                    continue;
                }
                let Some(&alt_g) = outcome.snippet_to_global.get(&cand) else { continue };
                if alt_g == g.id || seen.contains(&alt_g) {
                    continue;
                }
                seen.push(alt_g);
                if seen.len() > 8 {
                    break; // cap candidate evaluation
                }
                let score = cohesion(v, &members_of[&alt_g], store, weights);
                if best_alt.is_none_or(|(_, s)| score > s) {
                    best_alt = Some((alt_g, score));
                }
            }

            if let Some((to_global, alt_score)) = best_alt {
                if alt_score >= cfg.min_target_cohesion && alt_score - current > cfg.move_margin {
                    let Some(from_story) = identifiers
                        .get(&v.source)
                        .and_then(|i| i.story_of(v.id))
                    else {
                        continue;
                    };
                    planned.push(RefineMove {
                        snippet: v.id,
                        from_story,
                        to_story: from_story, // fixed up at apply time
                        from_global: g.id,
                        to_global,
                    });
                }
            }
        }
    }

    // ---- apply ------------------------------------------------------
    let mut applied = Vec::with_capacity(planned.len());
    for mut mv in planned {
        let Some(v) = store.get(mv.snippet).cloned() else { continue };
        let Some(ident) = identifiers.get_mut(&v.source) else { continue };
        if ident.story_of(v.id) != Some(mv.from_story) {
            continue; // a previous move already touched this story
        }
        // Target per-source story: the target global story's member
        // story in v's source, or a fresh story.
        let target_global = outcome
            .global_stories
            .iter()
            .find(|g| g.id == mv.to_global)
            .expect("global story exists");
        let to_story = target_global
            .member_stories
            .iter()
            .copied()
            .find(|&s| story_source(s) == v.source)
            .unwrap_or_else(|| {
                identifiers
                    .get_mut(&v.source)
                    .expect("identifier exists")
                    .fresh_story_id()
            });
        let ident = identifiers.get_mut(&v.source).expect("identifier exists");
        ident.remove_snippet(&v, store);
        ident.force_assign(&v, to_story);
        mv.to_story = to_story;
        applied.push(mv);
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::Aligner;
    use crate::config::{AlignConfig, IdentifyConfig, MatchMode, SketchConfig};
    use storypivot_types::{
        EntityId, EventType, Snippet, Source, SourceKind, TermId, Timestamp, DAY,
    };

    fn snip(id: u32, source: u32, day: i64, entities: &[u32], terms: &[u32]) -> Snippet {
        let mut b = Snippet::builder(
            SnippetId::new(id),
            SourceId::new(source),
            Timestamp::from_secs(day * DAY),
        )
        .event_type(EventType::Accident);
        for &e in entities {
            b = b.entity(EntityId::new(e), 1.0);
        }
        for &t in terms {
            b = b.term(TermId::new(t), 1.0);
        }
        b.build()
    }

    #[test]
    fn story_source_inverts_partitioning() {
        let mut ident = Identifier::new(
            SourceId::new(3),
            IdentifyConfig::default(),
            SketchConfig::default(),
        );
        let id = ident.fresh_story_id();
        assert_eq!(story_source(id), SourceId::new(3));
    }

    /// Reproduce Figure 1d: a snippet misassigned within its source is
    /// pulled to the right global story by cross-source evidence.
    #[test]
    fn misassigned_snippet_is_corrected() {
        let mut store = EventStore::new();
        let mut identifiers: HashMap<SourceId, Identifier> = HashMap::new();
        for i in 0..2u32 {
            store
                .register_source(Source::new(SourceId::new(i), format!("s{i}"), SourceKind::Newspaper))
                .unwrap();
            identifiers.insert(
                SourceId::new(i),
                Identifier::new(
                    SourceId::new(i),
                    IdentifyConfig {
                        mode: MatchMode::Temporal { omega: 7 * DAY },
                        maintenance_every: 0,
                        ..IdentifyConfig::default()
                    },
                    SketchConfig::default(),
                ),
            );
        }

        let ingest = |s: Snippet, store: &mut EventStore, idents: &mut HashMap<SourceId, Identifier>| {
            store.insert(s.clone()).unwrap();
            idents.get_mut(&s.source).unwrap().assign(&s, store);
        };

        // Source 0: story A (plane crash) and story B (unrelated sports).
        for (i, day) in [(0u32, 0i64), (1, 1), (2, 2)] {
            ingest(snip(i, 0, day, &[1, 2], &[10, 11]), &mut store, &mut identifiers);
        }
        for (i, day) in [(10u32, 0i64), (11, 1), (12, 2)] {
            ingest(snip(i, 0, day, &[7, 8], &[20, 21]), &mut store, &mut identifiers);
        }
        // Source 1 mirrors both stories.
        for (i, day) in [(20u32, 0i64), (21, 1), (22, 2)] {
            ingest(snip(i, 1, day, &[1, 2], &[10, 11]), &mut store, &mut identifiers);
        }
        for (i, day) in [(30u32, 0i64), (31, 1), (32, 2)] {
            ingest(snip(i, 1, day, &[7, 8], &[20, 21]), &mut store, &mut identifiers);
        }

        // Inject the identification error: move snippet 2 (crash story)
        // into source 0's sports story, Figure 1's wrong `v¹₄`.
        let victim = store.get(SnippetId::new(2)).unwrap().clone();
        let wrong_story = identifiers[&SourceId::new(0)]
            .story_of(SnippetId::new(10))
            .unwrap();
        let right_story = identifiers[&SourceId::new(0)]
            .story_of(SnippetId::new(0))
            .unwrap();
        {
            let ident = identifiers.get_mut(&SourceId::new(0)).unwrap();
            ident.remove_snippet(&victim, &store);
            ident.force_assign(&victim, wrong_story);
        }

        let aligner = Aligner::new(AlignConfig::default(), SimWeights::default());
        let states: Vec<&crate::state::StoryState> =
            identifiers.values().flat_map(|i| i.stories()).collect();
        let outcome = aligner.align(&states, &store);

        let moves = refine_once(
            &store,
            &mut identifiers,
            &outcome,
            &RefineConfig::default(),
            &SimWeights::default(),
        );

        assert!(
            moves.iter().any(|m| m.snippet == SnippetId::new(2)),
            "the misassigned snippet must move; moves: {moves:?}"
        );
        assert_eq!(
            identifiers[&SourceId::new(0)].story_of(SnippetId::new(2)),
            Some(right_story),
            "snippet must return to the crash story"
        );
    }

    #[test]
    fn well_assigned_snippets_stay_put() {
        let mut store = EventStore::new();
        let mut identifiers: HashMap<SourceId, Identifier> = HashMap::new();
        store
            .register_source(Source::new(SourceId::new(0), "s0", SourceKind::Newspaper))
            .unwrap();
        identifiers.insert(
            SourceId::new(0),
            Identifier::new(SourceId::new(0), IdentifyConfig::default(), SketchConfig::default()),
        );
        for (i, day) in [(0u32, 0i64), (1, 1), (2, 2)] {
            let s = snip(i, 0, day, &[1, 2], &[10, 11]);
            store.insert(s.clone()).unwrap();
            identifiers.get_mut(&SourceId::new(0)).unwrap().assign(&s, &store);
        }
        let aligner = Aligner::new(AlignConfig::default(), SimWeights::default());
        let states: Vec<&crate::state::StoryState> =
            identifiers.values().flat_map(|i| i.stories()).collect();
        let outcome = aligner.align(&states, &store);
        let moves = refine_once(
            &store,
            &mut identifiers,
            &outcome,
            &RefineConfig::default(),
            &SimWeights::default(),
        );
        assert!(moves.is_empty(), "no spurious moves: {moves:?}");
    }
}
