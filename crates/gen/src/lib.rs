//! Synthetic multi-source news corpus generation.
//!
//! The paper evaluates on GDELT/EventRegistry extractions (50 sources,
//! 500 entities, millions of snippets — Figure 7 inset). Those feeds are
//! not redistributable and carry no ground truth, so this crate builds
//! the closest synthetic equivalent: a *world* of evolving ground-truth
//! stories, observed through *sources* with per-source coverage,
//! reporting lag, and annotation noise. The algorithms under test see
//! exactly what they would see on the real feeds — event tuples
//! `<source, type, {entities}, description, timestamp>` — while the
//! generator retains the true snippet→story labels needed to compute the
//! F-measures of Figure 7.
//!
//! Model summary:
//!
//! * **Entities and terms** are drawn from Zipf distributions (popular
//!   entities recur across unrelated stories, which is what makes
//!   complete-mode identification overfit, §2.2).
//! * **Stories** have a lifespan, an event schedule, and *drift*: their
//!   active entity/term sets mutate as the story evolves (the Ukraine
//!   example: protests → Crimea → plane crash → sanctions).
//! * **Sources** cover a random subset of stories, report events with a
//!   publication lag (which produces out-of-order delivery), jitter the
//!   event timestamp estimate, drop/add entities, and corrupt terms.
//! * Optionally each snippet is rendered as **document text** so the
//!   full extraction pipeline (tokenizer → gazetteer → TF-IDF) can be
//!   exercised end to end.
//! * [`scenario`] reshapes a corpus into phase-based **chaos scripts**
//!   (flash crowds, duplicate floods, source churn, retraction storms,
//!   dormant-story resurgence) whose ground truth stays scoreable
//!   under load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod corpus;
pub mod names;
pub mod render;
pub mod scenario;
pub mod truth;
pub mod zipf;

pub use config::GenConfig;
pub use corpus::{Corpus, CorpusBuilder};
pub use render::render_document;
pub use scenario::{Phase, Scenario, ScenarioOp, Script, Segment};
pub use truth::GroundTruth;
pub use zipf::Zipf;
