//! Composable, phase-based chaos scenarios.
//!
//! A corpus from [`crate::CorpusBuilder`] is a well-behaved stream:
//! sources registered up front, delivery roughly paced by publication
//! lag, nothing ever retracted. Real feeds are not that polite. A
//! [`Scenario`] reshapes a corpus into an adversarial *script* — a
//! sequence of [`Segment`]s, each a stretch of operations driven at
//! its own rate after its own dormancy gap — while keeping the ground
//! truth consistent with exactly the snippets that survive to the end,
//! so clustering quality remains scoreable *under load*.
//!
//! The phase knobs compose:
//!
//! * `weight` — the share of the corpus stream the phase consumes;
//! * `rate` / `gap_ms` — pacing: a burst phase streams unpaced, a
//!   dormancy phase sleeps before its first event;
//! * `duplicates` — wire-service flood: every snippet is re-emitted as
//!   fresh near-identical copies (new snippet and document ids, same
//!   story label);
//! * `retract` — a fraction of the phase's documents is REMOVE_DOC'd
//!   at the end of the phase, and the retracted snippets leave the
//!   ground truth;
//! * `late_sources` — sources whose registration (and any earlier
//!   snippets, held back) only happens when the phase begins;
//! * `focus_top_stories` — Zipf-style skew: the phase keeps only the
//!   snippets of its most-reported stories, the shape of a flash
//!   crowd where every outlet covers the same breaking story.
//!
//! Five adversarial builtins ([`flash_crowd`], [`duplicate_flood`],
//! [`source_churn`], [`retraction_storm`], [`resurgence`]) cover the
//! failure shapes the serving layer degrades under; `loadgen
//! --scenario <name>` replays them against a live server and the
//! bench harness scores F-measure for each (experiment E16).

use std::collections::HashMap;

use storypivot_types::{DocId, Snippet, SnippetId, Source, SourceId};

use crate::config::GenConfig;
use crate::corpus::CorpusBuilder;
use crate::truth::GroundTruth;

/// One phase of a [`Scenario`]: how a contiguous share of the corpus
/// stream is delivered.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Phase name (becomes the compiled segment's name).
    pub name: &'static str,
    /// Relative share of the corpus stream this phase consumes; the
    /// stream is split proportionally to the weights.
    pub weight: u32,
    /// Target events/second while the phase streams (0 = unpaced).
    pub rate: u64,
    /// Idle pause before the phase's first event, in milliseconds.
    pub gap_ms: u64,
    /// Extra near-identical copies emitted per snippet (fresh snippet
    /// and document ids, same source, timestamp, content, and label).
    pub duplicates: u32,
    /// Fraction of this phase's documents retracted (REMOVE_DOC) once
    /// the phase has streamed.
    pub retract: f64,
    /// How many not-yet-registered sources come online when this phase
    /// begins. Late sources are taken from the top of the id space in
    /// phase order, so mid-stream ADD_SOURCE still allocates ids
    /// sequentially; snippets of a late source that the stream emitted
    /// earlier are held back and flushed right after its registration.
    pub late_sources: u32,
    /// Keep only the snippets of the phase's `k` most-reported stories
    /// (the rest of the phase's share is dropped from the script and
    /// the truth).
    pub focus_top_stories: Option<u32>,
}

impl Default for Phase {
    fn default() -> Self {
        Phase {
            name: "phase",
            weight: 1,
            rate: 0,
            gap_ms: 0,
            duplicates: 0,
            retract: 0.0,
            late_sources: 0,
            focus_top_stories: None,
        }
    }
}

/// A scenario before compilation: corpus knobs plus phases.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (carried onto the compiled script).
    pub name: &'static str,
    /// Corpus generator configuration (seed, size, noise — per-phase
    /// noise is expressed by choosing noisier corpus knobs for the
    /// scenario as a whole).
    pub config: GenConfig,
    /// The phases, in delivery order.
    pub phases: Vec<Phase>,
}

/// One operation of a compiled script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOp {
    /// Register a source coming online mid-stream. Must be sent before
    /// any snippet of that source, in ascending id order (the server
    /// allocates source ids sequentially).
    AddSource(Source),
    /// Ingest one snippet.
    Ingest(Snippet),
    /// Retract a document.
    RemoveDoc(DocId),
}

/// A contiguous stretch of a compiled script with one pacing policy.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The originating phase's name.
    pub name: &'static str,
    /// Target events/second (0 = unpaced).
    pub rate: u64,
    /// Idle pause before the segment's first operation.
    pub gap_ms: u64,
    /// The operations, in delivery order.
    pub ops: Vec<ScenarioOp>,
}

/// A compiled, deterministic chaos scenario, ready for the load
/// generator.
#[derive(Debug, Clone)]
pub struct Script {
    /// Scenario name.
    pub name: &'static str,
    /// Sources registered before the stream starts (late sources show
    /// up as [`ScenarioOp::AddSource`] inside segments instead).
    pub sources: Vec<Source>,
    /// The segments, in delivery order.
    pub segments: Vec<Segment>,
    /// Ground truth over the snippets that survive the whole script
    /// (retracted documents excluded), keyed by the script's own
    /// sequential snippet ids.
    pub truth: GroundTruth,
}

impl Script {
    /// Total snippets the script ingests (duplicates included).
    pub fn events(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.ops.iter().filter(|op| matches!(op, ScenarioOp::Ingest(_))).count())
            .sum()
    }

    /// Total documents the script retracts.
    pub fn removed_docs(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.ops.iter().filter(|op| matches!(op, ScenarioOp::RemoveDoc(_))).count())
            .sum()
    }
}

/// One splitmix64 step — the deterministic choice source for
/// retraction sampling.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Scenario {
    /// Compile the scenario: generate the corpus, carve its delivery
    /// stream into phase slices, apply each phase's knobs, and re-key
    /// snippets and documents sequentially over the final operation
    /// stream (ids in arrival order, ground truth rebuilt to match).
    pub fn compile(&self) -> Script {
        let corpus = CorpusBuilder::new(self.config.clone()).build();
        let total_weight: u64 = self.phases.iter().map(|p| u64::from(p.weight.max(1))).sum();
        let total_late: u32 = self.phases.iter().map(|p| p.late_sources).sum();
        assert!(
            (total_late as usize) < corpus.sources.len(),
            "scenario {}: at least one source must be registered up front",
            self.name
        );
        let initial = corpus.sources.len() - total_late as usize;
        let mut late_iter = corpus.sources[initial..].iter().cloned();
        let mut active: Vec<bool> = (0..corpus.sources.len()).map(|i| i < initial).collect();
        let mut holdback: HashMap<SourceId, Vec<Snippet>> = HashMap::new();

        let mut next_snippet = 0u32;
        let mut next_doc = 0u32;
        let mut truth = GroundTruth::new();
        // Re-key one corpus snippet into the script's id space and
        // record its label under the new id.
        let mut emit = |s: &Snippet, truth: &mut GroundTruth, ops: &mut Vec<ScenarioOp>| {
            let id = SnippetId::new(next_snippet);
            let doc = DocId::new(next_doc);
            next_snippet += 1;
            next_doc += 1;
            let label = corpus
                .truth
                .label_of(s.id)
                .expect("corpus snippet carries a label");
            truth.record(id, label, s.source);
            ops.push(ScenarioOp::Ingest(Snippet {
                id,
                source: s.source,
                doc,
                timestamp: s.timestamp,
                content: s.content.clone(),
            }));
            (id, doc)
        };

        let mut rng = self.config.seed ^ 0xC1A0_5CE7;
        let mut segments = Vec::with_capacity(self.phases.len());
        let mut cursor = 0usize;
        let n = corpus.snippets.len();
        let mut consumed_weight = 0u64;
        for phase in &self.phases {
            consumed_weight += u64::from(phase.weight.max(1));
            let end = ((n as u64 * consumed_weight) / total_weight) as usize;
            let slice = &corpus.snippets[cursor..end.max(cursor)];
            cursor = end.max(cursor);

            let mut ops = Vec::new();
            // Sources coming online this phase, in ascending id order,
            // each followed by its held-back backlog.
            for _ in 0..phase.late_sources {
                let source = late_iter.next().expect("late source quota matches the id space");
                active[source.id.raw() as usize] = true;
                let backlog = holdback.remove(&source.id).unwrap_or_default();
                ops.push(ScenarioOp::AddSource(source));
                for s in &backlog {
                    emit(s, &mut truth, &mut ops);
                }
            }

            // The phase's share of the stream, minus inactive-source
            // snippets (held back) and out-of-focus stories (dropped).
            let mut kept: Vec<&Snippet> = Vec::with_capacity(slice.len());
            for s in slice {
                if active[s.source.raw() as usize] {
                    kept.push(s);
                } else {
                    holdback.entry(s.source).or_default().push(s.clone());
                }
            }
            if let Some(k) = phase.focus_top_stories {
                let mut counts: HashMap<u32, usize> = HashMap::new();
                for s in &kept {
                    *counts
                        .entry(corpus.truth.label_of(s.id).expect("labelled"))
                        .or_default() += 1;
                }
                let mut ranked: Vec<(u32, usize)> = counts.into_iter().collect();
                // Count-descending, label-ascending: a total order, so
                // the focus set is deterministic.
                ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                ranked.truncate(k as usize);
                let top: Vec<u32> = ranked.into_iter().map(|(label, _)| label).collect();
                kept.retain(|s| top.contains(&corpus.truth.label_of(s.id).expect("labelled")));
            }

            let mut phase_docs = Vec::new();
            for s in &kept {
                let (_, doc) = emit(s, &mut truth, &mut ops);
                phase_docs.push(doc);
                for _ in 0..phase.duplicates {
                    let (_, dup_doc) = emit(s, &mut truth, &mut ops);
                    phase_docs.push(dup_doc);
                }
            }

            // Retraction storm: pull a deterministic sample of this
            // phase's documents back out, and out of the truth — the
            // reference clustering only ever contains what a correct
            // engine would still be serving.
            if phase.retract > 0.0 && !phase_docs.is_empty() {
                let want = ((phase_docs.len() as f64) * phase.retract.clamp(0.0, 1.0)) as usize;
                let mut pool = phase_docs;
                let mut removed = Vec::with_capacity(want);
                for _ in 0..want {
                    let pick = (splitmix64(&mut rng) as usize) % pool.len();
                    removed.push(pool.swap_remove(pick));
                }
                removed.sort_unstable();
                for doc in removed {
                    // Documents and snippets are 1:1 in the script's id
                    // space: doc j carries snippet j.
                    truth.remove(SnippetId::new(doc.raw()));
                    ops.push(ScenarioOp::RemoveDoc(doc));
                }
            }

            segments.push(Segment {
                name: phase.name,
                rate: phase.rate,
                gap_ms: phase.gap_ms,
                ops,
            });
        }
        debug_assert!(holdback.is_empty(), "every late source was activated");

        Script {
            name: self.name,
            sources: corpus.sources[..initial].to_vec(),
            segments,
            truth,
        }
    }
}

// ---- builtin adversarial scenarios -----------------------------------

/// Names of the builtin scenarios, for CLI dispatch and docs.
pub const BUILTIN: [&str; 5] = [
    "flash_crowd",
    "duplicate_flood",
    "source_churn",
    "retraction_storm",
    "resurgence",
];

/// Look a builtin scenario up by name and compile it for roughly
/// `events` base snippets (duplicates come on top).
pub fn by_name(name: &str, events: usize, seed: u64) -> Option<Script> {
    match name {
        "flash_crowd" => Some(flash_crowd(events, seed)),
        "duplicate_flood" => Some(duplicate_flood(events, seed)),
        "source_churn" => Some(source_churn(events, seed)),
        "retraction_storm" => Some(retraction_storm(events, seed)),
        "resurgence" => Some(resurgence(events, seed)),
        _ => None,
    }
}

fn base_config(events: usize, seed: u64, sources: u32) -> GenConfig {
    GenConfig::default()
        .with_seed(seed)
        .with_sources(sources)
        .with_target_snippets(events)
}

/// Breaking-news flash crowd: a paced steady state, then an unpaced
/// burst where every outlet piles onto the two most-reported stories
/// (with a wire copy each), then a paced recovery.
pub fn flash_crowd(events: usize, seed: u64) -> Script {
    Scenario {
        name: "flash_crowd",
        config: base_config(events, seed, 6),
        phases: vec![
            Phase { name: "steady", weight: 2, rate: 800, ..Phase::default() },
            Phase {
                name: "spike",
                weight: 2,
                rate: 0,
                duplicates: 2,
                focus_top_stories: Some(2),
                ..Phase::default()
            },
            Phase { name: "recovery", weight: 1, rate: 500, ..Phase::default() },
        ],
    }
    .compile()
}

/// Wire-service duplicate flood: the middle of the stream arrives with
/// three near-identical copies per snippet, on a corpus with extra
/// term noise (wire copy gets mangled in transit).
pub fn duplicate_flood(events: usize, seed: u64) -> Script {
    let mut config = base_config(events, seed, 6);
    config.term_noise = 0.4;
    Scenario {
        name: "duplicate_flood",
        config,
        phases: vec![
            Phase { name: "lead-in", weight: 1, rate: 600, ..Phase::default() },
            Phase { name: "flood", weight: 3, duplicates: 3, ..Phase::default() },
            Phase { name: "tail", weight: 1, rate: 600, ..Phase::default() },
        ],
    }
    .compile()
}

/// Source churn mid-stream: half the sources only come online in the
/// middle of the run, each flushing its held-back backlog the moment
/// it registers.
pub fn source_churn(events: usize, seed: u64) -> Script {
    Scenario {
        name: "source_churn",
        config: base_config(events, seed, 8),
        phases: vec![
            Phase { name: "early", weight: 2, rate: 800, ..Phase::default() },
            Phase { name: "churn", weight: 2, late_sources: 4, ..Phase::default() },
            Phase { name: "settle", weight: 1, rate: 800, ..Phase::default() },
        ],
    }
    .compile()
}

/// Retraction storm: after a build-up, half of a whole phase's
/// documents are REMOVE_DOC'd at volume, then a settling phase loses
/// another tenth.
pub fn retraction_storm(events: usize, seed: u64) -> Script {
    Scenario {
        name: "retraction_storm",
        config: base_config(events, seed, 6),
        phases: vec![
            Phase { name: "build", weight: 2, rate: 800, ..Phase::default() },
            Phase { name: "storm", weight: 2, retract: 0.5, ..Phase::default() },
            Phase { name: "settle", weight: 1, rate: 600, retract: 0.1, ..Phase::default() },
        ],
    }
    .compile()
}

/// Long-dormant story resurgence: most of the stream lands, then the
/// feed goes quiet past the server's snapshot freshness window, then
/// the tail of the longest-lived stories floods back in unpaced.
pub fn resurgence(events: usize, seed: u64) -> Script {
    Scenario {
        name: "resurgence",
        config: base_config(events, seed, 6),
        phases: vec![
            Phase { name: "active", weight: 3, rate: 800, ..Phase::default() },
            Phase { name: "resurgence", weight: 1, gap_ms: 400, ..Phase::default() },
        ],
    }
    .compile()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_scripts() -> Vec<Script> {
        BUILTIN.iter().map(|n| by_name(n, 600, 7).expect("builtin")).collect()
    }

    #[test]
    fn unknown_scenario_is_none() {
        assert!(by_name("nope", 100, 1).is_none());
    }

    #[test]
    fn snippet_ids_are_sequential_over_the_whole_script() {
        for script in all_scripts() {
            let mut expect = 0u32;
            for seg in &script.segments {
                for op in &seg.ops {
                    if let ScenarioOp::Ingest(s) = op {
                        assert_eq!(s.id.raw(), expect, "{}: ids in arrival order", script.name);
                        assert_eq!(s.doc.raw(), expect, "{}: docs 1:1 with snippets", script.name);
                        expect += 1;
                    }
                }
            }
            assert!(expect > 0, "{}: script ingests something", script.name);
        }
    }

    #[test]
    fn truth_covers_exactly_the_surviving_snippets() {
        for script in all_scripts() {
            let mut surviving: std::collections::HashSet<u32> = std::collections::HashSet::new();
            for seg in &script.segments {
                for op in &seg.ops {
                    match op {
                        ScenarioOp::Ingest(s) => {
                            surviving.insert(s.id.raw());
                        }
                        ScenarioOp::RemoveDoc(d) => {
                            assert!(
                                surviving.remove(&d.raw()),
                                "{}: retraction targets an ingested doc",
                                script.name
                            );
                        }
                        ScenarioOp::AddSource(_) => {}
                    }
                }
            }
            assert_eq!(script.truth.len(), surviving.len(), "{}", script.name);
            for id in surviving {
                assert!(
                    script.truth.label_of(SnippetId::new(id)).is_some(),
                    "{}: surviving snippet {id} is labelled",
                    script.name
                );
            }
        }
    }

    #[test]
    fn sources_register_before_their_snippets_in_id_order() {
        for script in all_scripts() {
            let mut registered: Vec<u32> = script.sources.iter().map(|s| s.id.raw()).collect();
            for seg in &script.segments {
                for op in &seg.ops {
                    match op {
                        ScenarioOp::AddSource(s) => {
                            assert_eq!(
                                s.id.raw(),
                                registered.len() as u32,
                                "{}: mid-stream registration allocates sequentially",
                                script.name
                            );
                            registered.push(s.id.raw());
                        }
                        ScenarioOp::Ingest(s) => assert!(
                            (s.source.raw() as usize) < registered.len(),
                            "{}: snippet only after its source registered",
                            script.name
                        ),
                        ScenarioOp::RemoveDoc(_) => {}
                    }
                }
            }
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        for name in BUILTIN {
            let a = by_name(name, 500, 13).unwrap();
            let b = by_name(name, 500, 13).unwrap();
            assert_eq!(a.segments.len(), b.segments.len());
            for (sa, sb) in a.segments.iter().zip(&b.segments) {
                assert_eq!(sa.ops, sb.ops, "{name}: identical op streams");
            }
            assert_eq!(a.truth.pairs(), b.truth.pairs(), "{name}: identical truth");
        }
    }

    #[test]
    fn builtins_have_their_advertised_shapes() {
        let flash = flash_crowd(600, 7);
        assert!(flash.segments.iter().any(|s| s.rate == 0), "flash crowd has an unpaced spike");

        let flood = duplicate_flood(400, 7);
        assert!(flood.events() > 400, "duplicates inflate the flood well past the base stream");

        let churn = source_churn(600, 7);
        let mid_stream_adds = churn
            .segments
            .iter()
            .flat_map(|s| &s.ops)
            .filter(|op| matches!(op, ScenarioOp::AddSource(_)))
            .count();
        assert_eq!(mid_stream_adds, 4, "half the churn sources come online mid-stream");

        let storm = retraction_storm(600, 7);
        assert!(storm.removed_docs() > storm.events() / 10, "the storm retracts at volume");
        assert!(storm.truth.len() == storm.events() - storm.removed_docs());

        let quiet = resurgence(600, 7);
        assert!(quiet.segments.last().unwrap().gap_ms > 0, "resurgence follows a dormant gap");
    }
}
