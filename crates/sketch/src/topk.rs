//! Space-Saving heavy hitters.
//!
//! The demo's story digests (Figures 4–6: `{UKR,5}; {NTH,2}; …`) need the
//! most frequent entities/terms of a story without storing every
//! occurrence. The Space-Saving algorithm (Metwally et al.) keeps `k`
//! counters and guarantees that any item with true count `> N/k` is
//! present, with counts overestimated by at most the minimum counter.

use std::collections::HashMap;

/// A Space-Saving top-k frequency tracker over `u64` items.
#[derive(Debug, Clone)]
pub struct TopK {
    capacity: usize,
    /// item → (count, overestimation error at adoption time)
    counters: HashMap<u64, (u64, u64)>,
    total: u64,
}

impl TopK {
    /// Track at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        TopK {
            capacity,
            counters: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Number of tracked items (≤ capacity).
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Total occurrences added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `count` occurrences of `item`.
    pub fn add(&mut self, item: u64, count: u64) {
        self.total += count;
        if let Some(entry) = self.counters.get_mut(&item) {
            entry.0 += count;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(item, (count, 0));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // (potential) overestimation error.
        let (&min_item, &(min_count, _)) = self
            .counters
            .iter()
            .min_by_key(|&(_, &(c, _))| c)
            .expect("capacity > 0");
        self.counters.remove(&min_item);
        self.counters.insert(item, (min_count + count, min_count));
    }

    /// Estimated count for `item` (0 if not tracked).
    pub fn estimate(&self, item: u64) -> u64 {
        self.counters.get(&item).map(|&(c, _)| c).unwrap_or(0)
    }

    /// The tracked items sorted by descending estimated count (ties by
    /// item id for determinism). Each entry is `(item, estimate)`.
    pub fn ranked(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.counters.iter().map(|(&i, &(c, _))| (i, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The top `n` items by estimated count.
    pub fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut v = self.ranked();
        v.truncate(n);
        v
    }

    /// Merge another tracker into this one (approximate: adds the other
    /// tracker's estimates as occurrences).
    pub fn merge(&mut self, other: &TopK) {
        for (&item, &(count, _)) in &other.counters {
            // Keep totals consistent: add() adds to total, so subtract
            // the double-count first.
            self.total = self.total.wrapping_sub(0); // no-op for clarity
            self.add(item, count);
        }
        self.total = self.total - other.counters.values().map(|&(c, _)| c).sum::<u64>() + other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_under_capacity() {
        let mut tk = TopK::new(10);
        tk.add(1, 5);
        tk.add(2, 3);
        tk.add(1, 2);
        assert_eq!(tk.estimate(1), 7);
        assert_eq!(tk.estimate(2), 3);
        assert_eq!(tk.estimate(99), 0);
        assert_eq!(tk.total(), 10);
        assert_eq!(tk.ranked(), vec![(1, 7), (2, 3)]);
    }

    #[test]
    fn heavy_hitters_survive_eviction() {
        let mut tk = TopK::new(4);
        // One dominant item among many one-off items.
        for i in 0..100u64 {
            tk.add(1000, 3); // heavy
            tk.add(i, 1); // noise
        }
        let top = tk.top(1);
        assert_eq!(top[0].0, 1000);
        assert!(top[0].1 >= 300, "heavy hitter count must not be lost");
    }

    #[test]
    fn estimates_never_undercount_tracked_items() {
        let mut tk = TopK::new(3);
        for i in 0..50u64 {
            tk.add(i % 5, 1);
        }
        // Each of items 0..5 has true count 10; tracked ones must
        // estimate >= true count.
        for (item, est) in tk.ranked() {
            assert!(est >= 10, "item {item} undercounted: {est}");
        }
    }

    #[test]
    fn capacity_is_respected() {
        let mut tk = TopK::new(2);
        for i in 0..10u64 {
            tk.add(i, 1);
        }
        assert_eq!(tk.len(), 2);
    }

    #[test]
    fn top_n_truncates_deterministically() {
        let mut tk = TopK::new(8);
        tk.add(5, 2);
        tk.add(3, 2);
        tk.add(9, 1);
        assert_eq!(tk.top(2), vec![(3, 2), (5, 2)]); // tie broken by id
    }

    #[test]
    fn merge_preserves_total() {
        let mut a = TopK::new(4);
        let mut b = TopK::new(4);
        a.add(1, 3);
        b.add(1, 2);
        b.add(2, 4);
        a.merge(&b);
        assert_eq!(a.total(), 9);
        assert_eq!(a.estimate(1), 5);
        assert_eq!(a.estimate(2), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        TopK::new(0);
    }
}
