//! Story evolution end to end (paper §2.1): drifting phases chain into
//! one story, an interweaving report *merges* two stories, and removing
//! it *splits* them again — "political and economic events were
//! interwoven during the height of the Ukraine crisis while they
//! started to separate after the situation had (temporarily)
//! stabilized".
//!
//! ```text
//! cargo run --example story_evolution
//! ```

use storypivot::core::explain::explain_assignment;
use storypivot::demo::evolution::EvolutionDemo;

fn describe(demo: &EvolutionDemo, label: &str) {
    println!("--- {label} ---");
    println!("stories: {}", demo.pivot.story_count());
    for st in demo.pivot.stories_of_source(demo.source) {
        println!(
            "  {}: {} snippets, lifespan {}",
            st.id(),
            st.len(),
            st.lifespan()
        );
    }
    println!();
}

fn main() {
    // Phase chaining: protests (days 0-6) → escalation (9-13) →
    // armed conflict (16-24), plus a concurrent economic thread.
    let mut demo = EvolutionDemo::new();
    describe(&demo, "after ingesting both threads");
    assert_eq!(demo.pivot.story_count(), 2);

    // Why does the last conflict snippet share a story with the first
    // protest snippet, which it barely resembles? The chain explains it.
    let last = *demo.political.last().unwrap();
    let ex = explain_assignment(&demo.pivot, last, 3).unwrap();
    println!("why is {last} in {}?", ex.story.unwrap());
    for n in &ex.supporting {
        println!(
            "  supported by {} (sim {:.2}, mostly {})",
            n.snippet,
            n.sim.combined,
            n.sim.dominant()
        );
    }
    println!();

    // Interweaving: a day-18 report on sanctions over the shelling.
    let merged = demo.add_bridge();
    println!("bridge ingested; merge triggered: {merged}");
    describe(&demo, "after the interweaving report");
    assert_eq!(demo.pivot.story_count(), 1);

    // Stabilization: the report is retracted; maintenance splits the
    // story along its weak seam.
    let split = demo.remove_bridge_and_split();
    println!("bridge removed; split triggered: {split}");
    describe(&demo, "after stabilization");
    assert_eq!(demo.pivot.story_count(), 2);

    println!("politics and economics interwove, then separated — as in the paper.");
}
