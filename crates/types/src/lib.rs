//! Common data model for StoryPivot.
//!
//! This crate defines the vocabulary shared by every other StoryPivot crate:
//! identifiers, timestamps, information [`Snippet`]s, per-source
//! [`Story`]s, cross-source [`GlobalStory`]s, and [`Source`] metadata.
//!
//! The model follows the paper (SIGMOD'15, §2.1): an *information snippet*
//! is the elemental unit of information, extracted from a document. Every
//! snippet carries
//!
//! * a **timestamp** recording when the described real-world event occurred,
//! * a **data source** it originates from, and
//! * a **content**: the entities involved, weighted description terms, an
//!   event type, and a pointer back to the originating document.
//!
//! The canonical example tuple from the paper is
//! `<New York Times, Accident, {Ukraine, Malaysian Airlines}, "Plane Crash",
//! 07/17/2014>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod event_type;
pub mod ids;
pub mod kernel;
pub mod snippet;
pub mod source;
pub mod sparse;
pub mod story;
pub mod time;

pub use error::{Error, Result};
pub use event_type::EventType;
pub use ids::{DocId, EntityId, GlobalStoryId, SnippetId, SourceId, StoryId, TermId};
pub use snippet::{Snippet, SnippetBuilder, SnippetContent};
pub use sparse::SparseVec;
pub use source::{Source, SourceKind};
pub use story::{GlobalStory, SnippetRole, Story};
pub use time::{TimeRange, Timestamp, DAY, HOUR, MINUTE};
