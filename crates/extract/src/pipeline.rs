//! The extraction pipeline: documents in, snippets out.

use std::collections::HashMap;

use storypivot_text::{CorpusStats, TfIdf};
use storypivot_types::ids::IdGen;
use storypivot_types::{DocId, Error, Result, Snippet, SnippetId, TermId};

use crate::annotate::Annotator;
use crate::document::Document;

/// Pipeline behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Emit one snippet per paragraph (`true`) or one per document
    /// (`false`). Paragraph mode mirrors the paper's "breaks their text
    /// down based on paragraphs, title, etc.".
    pub split_paragraphs: bool,
    /// Minimum token count for a paragraph to become its own snippet
    /// (shorter ones fold into the previous snippet's text).
    pub min_tokens: usize,
    /// Keep at most this many top-weighted terms per snippet.
    pub max_terms: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            split_paragraphs: false,
            min_tokens: 5,
            max_terms: 24,
        }
    }
}

/// Stateful extraction pipeline with incremental TF-IDF statistics.
#[derive(Debug, Clone)]
pub struct ExtractionPipeline {
    annotator: Annotator,
    cfg: PipelineConfig,
    stats: CorpusStats,
    weigher: TfIdf,
    ids: IdGen<SnippetId>,
    /// Distinct terms folded into `stats` per document (for retraction).
    doc_terms: HashMap<DocId, Vec<TermId>>,
}

impl ExtractionPipeline {
    /// Build a pipeline around an annotator.
    pub fn new(annotator: Annotator, cfg: PipelineConfig) -> Self {
        ExtractionPipeline {
            annotator,
            cfg,
            stats: CorpusStats::new(),
            weigher: TfIdf::default(),
            ids: IdGen::new(),
            doc_terms: HashMap::new(),
        }
    }

    /// The annotator (for name lookups).
    pub fn annotator(&self) -> &Annotator {
        &self.annotator
    }

    /// Corpus statistics accumulated so far.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Extract snippets from a document. Fails on duplicate document id
    /// (extract the removal first if re-adding).
    pub fn extract(&mut self, doc: &Document) -> Result<Vec<Snippet>> {
        if self.doc_terms.contains_key(&doc.id) {
            return Err(Error::Duplicate(format!("document {}", doc.id)));
        }

        // Assemble excerpts: title is prepended to the first excerpt.
        let paragraphs = doc.paragraphs();
        let excerpts: Vec<String> = if self.cfg.split_paragraphs && paragraphs.len() > 1 {
            let mut out: Vec<String> = Vec::new();
            for p in paragraphs {
                let tokens = storypivot_text::tokenize(p).len();
                match out.last_mut() {
                    Some(last) if tokens < self.cfg.min_tokens => {
                        last.push(' ');
                        last.push_str(p);
                    }
                    _ => out.push(p.to_string()),
                }
            }
            if let Some(first) = out.first_mut() {
                *first = format!("{} {first}", doc.title);
            } else {
                out.push(doc.title.clone());
            }
            out
        } else {
            vec![format!("{} {}", doc.title, doc.body)]
        };

        // Annotate all excerpts, then fold the document's distinct terms
        // into the corpus stats *once*, then weigh.
        let annotations: Vec<_> = excerpts.iter().map(|e| self.annotator.annotate(e)).collect();
        let mut distinct: Vec<TermId> = annotations
            .iter()
            .flat_map(|a| a.term_counts.iter().map(|&(t, _)| t))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        self.stats.add_document(distinct.iter().copied());
        self.doc_terms.insert(doc.id, distinct);

        let snippets = annotations
            .into_iter()
            .map(|ann| {
                let mut terms = self.weigher.weigh(&ann.term_counts, &self.stats);
                if terms.len() > self.cfg.max_terms {
                    terms = storypivot_types::SparseVec::from_pairs(terms.top_k(self.cfg.max_terms));
                }
                let mut b = Snippet::builder(self.ids.next_id(), doc.source, doc.timestamp)
                    .doc(doc.id)
                    .event_type(ann.event_type)
                    .headline(doc.title.clone());
                for (e, c) in ann.entities {
                    b = b.entity(e, c as f32);
                }
                let mut s = b.build();
                s.content.terms = terms;
                s
            })
            .collect();
        Ok(snippets)
    }

    /// Retract a previously extracted document from the corpus
    /// statistics (the demo's remove-document interaction).
    pub fn retract(&mut self, doc: DocId) -> Result<()> {
        let terms = self
            .doc_terms
            .remove(&doc)
            .ok_or(Error::UnknownDocument(doc))?;
        self.stats.remove_document(terms);
        Ok(())
    }

    /// Number of documents currently folded into the statistics.
    pub fn document_count(&self) -> u64 {
        self.stats.doc_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storypivot_text::GazetteerBuilder;
    use storypivot_types::{EntityId, EventType, SourceId, Timestamp};

    fn pipeline(cfg: PipelineConfig) -> ExtractionPipeline {
        let mut g = GazetteerBuilder::new();
        g.add_entity(EntityId::new(0), "Ukraine", &["UKR"]);
        g.add_entity(EntityId::new(1), "Malaysia Airlines", &["MH17"]);
        g.add_entity(EntityId::new(2), "Russia", &["RUS"]);
        ExtractionPipeline::new(Annotator::new(g.build()), cfg)
    }

    fn mh17_doc(id: u32) -> Document {
        Document::new(
            DocId::new(id),
            SourceId::new(0),
            "http://nytimes.com/doc1.html",
            "Jetliner Explodes over Ukraine",
            "A Malaysia Airlines Boeing 777 with 298 people aboard exploded, crashed and burned \
             over eastern Ukraine.\n\nUkraine accused pro-Russia separatists; Russia denied any \
             involvement in the crash.",
            Timestamp::from_ymd(2014, 7, 17),
        )
    }

    #[test]
    fn whole_document_mode_yields_one_snippet() {
        let mut p = pipeline(PipelineConfig::default());
        let snippets = p.extract(&mh17_doc(0)).unwrap();
        assert_eq!(snippets.len(), 1);
        let s = &snippets[0];
        assert_eq!(s.doc, DocId::new(0));
        assert_eq!(s.timestamp, Timestamp::from_ymd(2014, 7, 17));
        assert_eq!(s.content.event_type, EventType::Accident);
        // Ukraine (×3), Malaysia Airlines, Russia (×2) recognized.
        assert_eq!(s.entities().len(), 3);
        assert!(s.entities().get(&EntityId::new(0)).unwrap() >= 2.0);
        assert!(!s.terms().is_empty());
        assert_eq!(s.content.headline, "Jetliner Explodes over Ukraine");
    }

    #[test]
    fn paragraph_mode_yields_snippet_per_paragraph() {
        let mut p = pipeline(PipelineConfig {
            split_paragraphs: true,
            ..PipelineConfig::default()
        });
        let snippets = p.extract(&mh17_doc(0)).unwrap();
        assert_eq!(snippets.len(), 2);
        assert_ne!(snippets[0].id, snippets[1].id);
        assert!(snippets.iter().all(|s| s.doc == DocId::new(0)));
    }

    #[test]
    fn duplicate_document_rejected() {
        let mut p = pipeline(PipelineConfig::default());
        p.extract(&mh17_doc(0)).unwrap();
        assert!(matches!(p.extract(&mh17_doc(0)), Err(Error::Duplicate(_))));
    }

    #[test]
    fn retract_reverses_stats() {
        let mut p = pipeline(PipelineConfig::default());
        p.extract(&mh17_doc(0)).unwrap();
        assert_eq!(p.document_count(), 1);
        let vocab = p.stats().vocabulary_size();
        assert!(vocab > 0);
        p.retract(DocId::new(0)).unwrap();
        assert_eq!(p.document_count(), 0);
        assert_eq!(p.stats().vocabulary_size(), 0);
        assert!(p.retract(DocId::new(0)).is_err());
        // Re-adding after retraction works.
        p.extract(&mh17_doc(0)).unwrap();
        assert_eq!(p.document_count(), 1);
    }

    #[test]
    fn term_cap_is_enforced() {
        let mut p = pipeline(PipelineConfig {
            max_terms: 3,
            ..PipelineConfig::default()
        });
        let snippets = p.extract(&mh17_doc(0)).unwrap();
        assert!(snippets[0].terms().len() <= 3);
    }

    #[test]
    fn snippet_ids_are_unique_across_documents() {
        let mut p = pipeline(PipelineConfig::default());
        let a = p.extract(&mh17_doc(0)).unwrap();
        let b = p.extract(&mh17_doc(1)).unwrap();
        assert_ne!(a[0].id, b[0].id);
    }

    #[test]
    fn similar_documents_produce_similar_snippets() {
        let mut p = pipeline(PipelineConfig::default());
        let a = p.extract(&mh17_doc(0)).unwrap().remove(0);
        let other = Document::new(
            DocId::new(1),
            SourceId::new(1),
            "http://wsj.com/doc3.html",
            "Jet Crashes over Ukraine",
            "The Malaysia Airlines jet crashed over eastern Ukraine, and pro-Russia separatists \
             were blamed for the explosion.",
            Timestamp::from_ymd(2014, 7, 17),
        );
        let b = p.extract(&other).unwrap().remove(0);
        let sim_e = a.entities().jaccard(b.entities());
        assert!(sim_e > 0.5, "entity overlap {sim_e}");
        let sim_t = a.terms().cosine(b.terms());
        assert!(sim_t > 0.2, "term cosine {sim_t}");
    }
}
