//! loadgen — replay a generated corpus against a pivotd server.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7411 --events 5000 --conns 4 --rate 2000
//! loadgen --addr 127.0.0.1:7411 --quick --shutdown   # CI smoke
//! ```
//!
//! Prints achieved throughput and round-trip p50/p95/p99; `--json PATH`
//! additionally writes the report as a JSON artifact, `--metrics`
//! prints the server's merged Prometheus-style exposition, and
//! `--shutdown` sends SHUTDOWN (drain + checkpoint) after the replay.
//!
//! `--partition-file PATH` writes the server's story partition (one
//! canonical line per story) after the replay; with `--query-only` the
//! replay is skipped entirely, so two partition files — one from the
//! loaded server, one from a restarted server — can prove crash
//! recovery byte-for-byte.
//!
//! `--query-only --replicas HOST:PORT,HOST:PORT` instead runs the read
//! fan-out bench: `--queries N` QUERY_STORIES round trips are
//! round-robined across the leader (`--addr`) and every replica, and
//! the report breaks round-trip latency down per target.
//!
//! `--scenario NAME` replays a builtin chaos scenario (flash_crowd,
//! duplicate_flood, source_churn, retraction_storm, resurgence)
//! instead of a plain corpus: phase-structured load with mid-stream
//! source registration, duplicate floods, and retractions.

use std::path::PathBuf;

use storypivot_gen::{scenario, CorpusBuilder, GenConfig};
use storypivot_serve::client::Client;
use storypivot_serve::load::{
    conn_storm, query_fanout, replay, replay_script, LoadOptions, QueryOptions, StormOptions,
};

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--events N] [--sources N] [--conns N] \
         [--rate EV_PER_S] [--seed N] [--scenario NAME] [--json PATH] [--quick] \
         [--stats] [--metrics] \
         [--shutdown] [--partition-file PATH] [--query-only] \
         [--replicas HOST:PORT,HOST:PORT] [--queries N]\n\
         scenarios: {}\n\
         storm mode: loadgen --addr HOST:PORT --storm [--conns N] [--drivers N] \
         [--rounds N] [--interval-ms N] [--json PATH]",
        scenario::BUILTIN.join(", ")
    );
    std::process::exit(2);
}

/// Canonical text rendering of the story partition: one sorted line per
/// story, identical for identical partitions.
fn render_partition(stories: &[storypivot_serve::StorySummary]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for s in stories {
        let mut members: Vec<u32> = s.members.iter().map(|m| m.raw()).collect();
        members.sort_unstable();
        let _ = write!(out, "story {} source {} members", s.id.raw(), s.source.raw());
        for m in members {
            let _ = write!(out, " {m}");
        }
        out.push('\n');
    }
    out
}

fn parse<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let raw = args.next().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        usage();
    });
    raw.parse().unwrap_or_else(|_| {
        eprintln!("invalid value {raw:?} for {flag}");
        usage();
    })
}

fn main() {
    let mut addr: Option<String> = None;
    let mut events: usize = 5_000;
    let mut sources: u32 = 8;
    let mut seed: u64 = 0;
    let mut json: Option<PathBuf> = None;
    let mut want_stats = false;
    let mut want_metrics = false;
    let mut want_shutdown = false;
    let mut query_only = false;
    let mut replicas: Vec<String> = Vec::new();
    let mut query_opts = QueryOptions::default();
    let mut partition_file: Option<PathBuf> = None;
    let mut opts = LoadOptions::default();
    let mut storm = false;
    let mut storm_opts = StormOptions::default();
    let mut scenario_name: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = Some(parse(&mut args, "--addr")),
            "--events" => events = parse(&mut args, "--events"),
            "--sources" => sources = parse(&mut args, "--sources"),
            "--conns" => {
                let n: usize = parse(&mut args, "--conns");
                opts.connections = n;
                storm_opts.connections = n;
            }
            "--storm" => storm = true,
            "--drivers" => storm_opts.drivers = parse(&mut args, "--drivers"),
            "--rounds" => storm_opts.rounds = parse(&mut args, "--rounds"),
            "--interval-ms" => {
                storm_opts.interval =
                    std::time::Duration::from_millis(parse(&mut args, "--interval-ms"))
            }
            "--rate" => opts.rate = parse(&mut args, "--rate"),
            "--seed" => seed = parse(&mut args, "--seed"),
            "--scenario" => scenario_name = Some(parse::<String>(&mut args, "--scenario")),
            "--json" => json = Some(parse::<PathBuf>(&mut args, "--json")),
            "--quick" => {
                events = 600;
                sources = 4;
                opts.connections = 2;
            }
            "--stats" => want_stats = true,
            "--metrics" => want_metrics = true,
            "--shutdown" => want_shutdown = true,
            "--query-only" => query_only = true,
            "--replicas" => {
                let list: String = parse(&mut args, "--replicas");
                replicas = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--queries" => query_opts.requests = parse(&mut args, "--queries"),
            "--partition-file" => {
                partition_file = Some(parse::<PathBuf>(&mut args, "--partition-file"))
            }
            _ => usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("--addr is required");
        usage();
    };

    if storm {
        eprintln!(
            "storming {} connections ({} drivers, {} rounds, {:?} interval)",
            storm_opts.connections, storm_opts.drivers, storm_opts.rounds, storm_opts.interval
        );
        let report = match conn_storm(addr.as_str(), &storm_opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: storm failed: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", report.summary());
        if let Some(path) = &json {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("loadgen: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    } else if let Some(name) = &scenario_name {
        let Some(script) = scenario::by_name(name, events, seed) else {
            eprintln!(
                "loadgen: unknown scenario {name:?} (builtins: {})",
                scenario::BUILTIN.join(", ")
            );
            std::process::exit(2);
        };
        eprintln!(
            "replaying scenario {}: {} snippets, {} retractions, {} segments, \
             {} connections",
            script.name,
            script.events(),
            script.removed_docs(),
            script.segments.len(),
            opts.connections,
        );
        let report = match replay_script(addr.as_str(), &script, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: scenario replay failed: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", report.summary());
        if let Some(path) = &json {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("loadgen: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    } else if !query_only {
        eprintln!("generating corpus: ~{events} events over {sources} sources (seed {seed})");
        let corpus = CorpusBuilder::new(
            GenConfig::default()
                .with_seed(seed)
                .with_sources(sources)
                .with_target_snippets(events),
        )
        .build();
        eprintln!(
            "replaying {} snippets over {} connections (rate: {})",
            corpus.len(),
            opts.connections,
            if opts.rate == 0 { "unlimited".to_string() } else { format!("{} ev/s", opts.rate) }
        );

        let report = match replay(addr.as_str(), &corpus, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", report.summary());
        if let Some(path) = &json {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("loadgen: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }

    if query_only && !replicas.is_empty() {
        // Read fan-out: round-robin QUERY_STORIES across the leader and
        // every replica, reporting per-target round-trip latency.
        let mut targets = vec![addr.clone()];
        targets.extend(replicas.iter().cloned());
        eprintln!(
            "fanning {} queries over {} targets ({} reader threads)",
            query_opts.requests,
            targets.len(),
            query_opts.threads
        );
        let report = match query_fanout(&targets, &query_opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: query fan-out failed: {e}");
                std::process::exit(1);
            }
        };
        println!("{}", report.summary());
        if let Some(path) = &json {
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("loadgen: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("wrote {}", path.display());
        }
    }

    if let Some(path) = &partition_file {
        let mut client = match Client::connect(addr.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("loadgen: connect for partition query failed: {e}");
                std::process::exit(1);
            }
        };
        let stories = match client.query_stories() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("loadgen: partition query failed: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = std::fs::write(path, render_partition(&stories)) {
            eprintln!("loadgen: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote partition ({} stories) to {}", stories.len(), path.display());
    }

    if want_stats || want_metrics || want_shutdown {
        let mut client = match Client::connect(addr.as_str()) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("loadgen: reconnect failed: {e}");
                std::process::exit(1);
            }
        };
        if want_stats {
            match client.stats() {
                Ok(stats) => print!("{}", stats.render()),
                Err(e) => {
                    eprintln!("loadgen: stats failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if want_metrics {
            match client.metrics() {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("loadgen: metrics failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if want_shutdown {
            match client.shutdown() {
                Ok(()) => eprintln!("server drained and checkpointed"),
                Err(e) => {
                    eprintln!("loadgen: shutdown failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}
