//! The shipped sample tuple file must stay parseable and produce the
//! documented story structure (it is the `pivot-tsv` quickstart).

use storypivot::core::config::PivotConfig;
use storypivot::extract::TupleReader;
use storypivot::prelude::*;
use storypivot::types::DAY;

#[test]
fn sample_tuples_file_parses_and_detects_the_documented_stories() {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/sample_tuples.tsv"))
        .expect("sample file ships with the repo");
    let mut reader = TupleReader::new();
    let (sources, snippets) = reader.read_str(&text).expect("sample file parses");
    assert_eq!(sources.len(), 2);
    assert_eq!(snippets.len(), 11);

    let mut pivot = StoryPivot::new(PivotConfig::temporal(60 * DAY));
    for s in &sources {
        pivot.add_source(s.name.clone(), s.kind);
    }
    let crash_id = snippets[0].id;
    let gaza_id = snippets[7].id;
    let google_id = snippets[8].id;
    for s in snippets {
        pivot.ingest(s).unwrap();
    }
    pivot.align();

    // The documented structure: the crash story is cross-source and
    // spans Jul 17 – Sep 12; Gaza and Google/Yelp stay separate.
    let crash_global = pivot.global_of(crash_id).unwrap();
    let g = pivot.alignment().unwrap().global_story(crash_global).unwrap();
    assert!(g.is_cross_source());
    assert_eq!(g.lifespan.start, Timestamp::from_ymd(2014, 7, 17));
    assert_eq!(g.lifespan.end, Timestamp::from_ymd(2014, 9, 12));
    assert_ne!(pivot.global_of(gaza_id), Some(crash_global));
    assert_ne!(pivot.global_of(google_id), Some(crash_global));

    // The catalog interned the headline entities.
    assert!(reader.catalog.entities.get("Ukraine").is_some());
    assert!(reader.catalog.entities.get("yelp").is_some());
}
